"""Integration tests for the cache hierarchy."""

import pytest

from repro.engine.config import SystemConfig
from repro.memory.hierarchy import Hierarchy


@pytest.fixture
def hierarchy():
    return Hierarchy(SystemConfig())


class TestDemandPath:
    def test_cold_miss_goes_to_dram(self, hierarchy):
        result = hierarchy.demand_access(0x1000, now=0)
        assert not result.l1_hit
        assert result.primary_miss
        assert result.hit_level == 4
        assert result.ready_time > 80  # L1+L2+L3 tags + DRAM access

    def test_second_access_hits_l1(self, hierarchy):
        first = hierarchy.demand_access(0x1000, now=0)
        second = hierarchy.demand_access(0x1000, now=first.ready_time + 1)
        assert second.l1_hit
        assert second.hit_level == 1
        l1_latency = hierarchy.l1d.hit_latency
        assert second.ready_time == first.ready_time + 1 + l1_latency

    def test_same_line_different_word_hits(self, hierarchy):
        first = hierarchy.demand_access(0x1000, now=0)
        second = hierarchy.demand_access(0x1008, now=first.ready_time + 1)
        assert second.l1_hit

    def test_secondary_miss_merges(self, hierarchy):
        first = hierarchy.demand_access(0x1000, now=0)
        # Access the same line while the fill is still in flight.
        second = hierarchy.demand_access(0x1000, now=1)
        assert second.l1_hit  # merged, not a new primary miss
        assert second.ready_time >= first.ready_time
        assert hierarchy.l1d.stats.mshr_merges == 1
        assert hierarchy.l1d.stats.demand_misses == 1
        assert hierarchy.dram.stats.reads == 1

    def test_l2_hit_after_l1_eviction(self):
        # Tiny L1 so we can evict deterministically.
        from dataclasses import replace
        config = SystemConfig()
        config = replace(config, l1d=replace(config.l1d, size_bytes=4 * 64,
                                             ways=4))
        hierarchy = Hierarchy(config)
        t = 0
        result = hierarchy.demand_access(0, now=t)
        t = result.ready_time
        # Fill the single set until line 0 is evicted from L1 (ways=4, 1 set
        # ... actually 1 set only if sets=1: 4*64/(4*64)=1 set).
        for i in range(1, 5):
            result = hierarchy.demand_access(i * 64, now=t)
            t = result.ready_time
        assert not hierarchy.l1d.probe(0)
        result = hierarchy.demand_access(0, now=t)
        assert result.hit_level == 2

    def test_miss_footprint_recorded(self, hierarchy):
        hierarchy.demand_access(0x1000, now=0)
        hierarchy.demand_access(0x1000, now=10_000)  # hit, not recorded
        hierarchy.demand_access(0x2000, now=20_000)
        assert hierarchy.miss_lines_l1[0x1000 >> 6] == 1
        assert hierarchy.miss_lines_l1[0x2000 >> 6] == 1

    def test_latency_ordering(self, hierarchy):
        """L1 hit < L2 hit < L3 hit < DRAM."""
        dram_result = hierarchy.demand_access(0x1000, now=0)
        t = dram_result.ready_time + 1
        l1_result = hierarchy.demand_access(0x1000, now=t)
        l1_latency = l1_result.ready_time - t
        dram_latency = dram_result.ready_time
        assert l1_latency < dram_latency


class TestWritebacks:
    def test_dirty_line_written_back_through_hierarchy(self):
        from dataclasses import replace
        config = SystemConfig()
        config = replace(
            config,
            l1d=replace(config.l1d, size_bytes=64, ways=1),
            l2=replace(config.l2, size_bytes=64, ways=1),
            l3=replace(config.l3, size_bytes=64, ways=1),
        )
        hierarchy = Hierarchy(config)
        t = hierarchy.demand_access(0, now=0, is_write=True).ready_time
        # Conflict the dirty line out of L1, then L2, then L3.
        t = hierarchy.demand_access(64 * 1024, now=t).ready_time
        t = hierarchy.demand_access(128 * 1024, now=t).ready_time
        t = hierarchy.demand_access(192 * 1024, now=t).ready_time
        assert hierarchy.dram.stats.writes >= 1


class TestPrefetchPath:
    def test_prefetch_fills_target_level(self, hierarchy):
        assert hierarchy.prefetch(100, now=0, target_level=1, component="T2")
        assert hierarchy.l1d.probe(100)
        assert hierarchy.l2.probe(100)
        assert hierarchy.prefetch_stats.issued == 1
        assert hierarchy.prefetch_stats.by_component["T2"] == 1

    def test_prefetch_to_l2_does_not_fill_l1(self, hierarchy):
        hierarchy.prefetch(100, now=0, target_level=2, component="C1")
        assert not hierarchy.l1d.probe(100)
        assert hierarchy.l2.probe(100)

    def test_duplicate_prefetch_filtered(self, hierarchy):
        hierarchy.prefetch(100, now=0, target_level=1)
        hierarchy.prefetch(100, now=1, target_level=1)
        assert hierarchy.prefetch_stats.issued == 1
        assert hierarchy.prefetch_stats.filtered == 1

    def test_prefetch_of_resident_line_filtered(self, hierarchy):
        result = hierarchy.demand_access(0x4000, now=0)
        hierarchy.prefetch(0x4000 >> 6, now=result.ready_time, target_level=1)
        assert hierarchy.prefetch_stats.filtered == 1

    def test_attempted_footprint_includes_filtered(self, hierarchy):
        hierarchy.prefetch(100, now=0)
        hierarchy.prefetch(100, now=1)
        assert hierarchy.attempted_prefetch_lines == {100}

    def test_useful_prefetch_counted_on_demand_hit(self, hierarchy):
        hierarchy.prefetch(0x4000 >> 6, now=0, target_level=1,
                           component="T2")
        result = hierarchy.demand_access(0x4000, now=10_000)
        assert result.l1_hit
        assert result.served_by_prefetch
        assert result.prefetch_component == "T2"
        assert hierarchy.l1d.stats.useful_prefetches == 1

    def test_late_prefetch_still_hits_but_waits(self, hierarchy):
        hierarchy.prefetch(0x4000 >> 6, now=0, target_level=1)
        result = hierarchy.demand_access(0x4000, now=5)
        assert result.l1_hit
        assert result.served_by_prefetch
        assert result.ready_time > 5 + hierarchy.l1d.hit_latency
        assert hierarchy.l1d.stats.late_prefetch_hits == 1

    def test_prefetch_from_l2_is_fast(self, hierarchy):
        # Demand brings the line into L2+L3; evict from L1 is not needed —
        # prefetch of an L1-absent, L2-present line should not touch DRAM.
        result = hierarchy.demand_access(0x8000, now=0)
        hierarchy.l1d.invalidate(0x8000 >> 6)
        reads_before = hierarchy.dram.stats.reads
        hierarchy.prefetch(0x8000 >> 6, now=result.ready_time, target_level=1)
        assert hierarchy.dram.stats.reads == reads_before

    def test_invalid_target_level_rejected(self, hierarchy):
        with pytest.raises(ValueError):
            hierarchy.prefetch(1, now=0, target_level=3)


class TestPollutionDetection:
    def test_prefetch_induced_miss_detected(self):
        from dataclasses import replace
        config = SystemConfig()
        config = replace(config, l1d=replace(config.l1d, size_bytes=64,
                                             ways=1))
        hierarchy = Hierarchy(config)
        t = hierarchy.demand_access(0, now=0).ready_time
        # A prefetch displaces line 0 from the one-line L1.
        hierarchy.prefetch(4096, now=t, target_level=1, component="C1")
        # Re-access line 0: real miss, shadow hit => pollution.
        hierarchy.demand_access(0, now=t + 1)
        assert hierarchy.pollution_misses_l1 == 1

    def test_no_pollution_without_prefetch(self, hierarchy):
        hierarchy.demand_access(0, now=0)
        hierarchy.demand_access(64, now=1000)
        assert hierarchy.pollution_misses_l1 == 0


class TestTrackerHooks:
    class Recorder:
        def __init__(self):
            self.issued = []
            self.useful = []
            self.pollution = []

        def on_prefetch_issued(self, line, component):
            self.issued.append((line, component))

        def on_useful(self, line, component, level):
            self.useful.append((line, component, level))

        def on_pollution(self, level, victims):
            self.pollution.append((level, victims))

    def test_hooks_fire(self, hierarchy):
        recorder = self.Recorder()
        hierarchy.tracker = recorder
        hierarchy.prefetch(10, now=0, target_level=1, component="P1")
        hierarchy.demand_access(10 << 6, now=10_000)
        assert recorder.issued == [(10, "P1")]
        assert recorder.useful == [(10, "P1", 1)]
