"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.base import AccessEvent
from repro.isa import Assembler, Machine


def make_event(pc=0x1000, addr=0, *, cycle=0, hit=False, primary_miss=None,
               value=0, latency=200, is_load=True, dst=1, mpc=None,
               served_by_prefetch=False, serving_component=None):
    """Build an AccessEvent with sensible defaults for unit tests.

    ``primary_miss`` defaults to ``not hit``.
    """
    if primary_miss is None:
        primary_miss = not hit
    if mpc is None:
        mpc = pc
    return AccessEvent(
        cycle=cycle,
        pc=pc,
        mpc=mpc,
        addr=addr,
        line=addr >> 6,
        is_load=is_load,
        hit=hit,
        primary_miss=primary_miss,
        latency=latency if not hit else 3,
        value=value,
        dst=dst,
        served_by_prefetch=served_by_prefetch,
        serving_component=serving_component,
    )


def feed_stream(prefetcher, addresses, pc=0x1000, values=None,
                start_cycle=0, cycle_step=10, hit_after=None):
    """Feed a sequence of addresses to a prefetcher as misses.

    Returns the list of all requests produced.  ``hit_after`` marks
    accesses after index N as hits (post-warmup behavior).
    """
    requests = []
    for i, addr in enumerate(addresses):
        hit = hit_after is not None and i >= hit_after
        event = make_event(
            pc=pc,
            addr=addr,
            cycle=start_cycle + i * cycle_step,
            hit=hit,
            value=values[i] if values is not None else 0,
        )
        prefetcher.observe_access(event)
        result = prefetcher.on_access(event)
        if result:
            requests.extend(result)
    return requests


def requested_lines(requests):
    return {r.line for r in requests}


# ---------------------------------------------------------------------------
# Small trace fixtures
# ---------------------------------------------------------------------------
def build_strided_trace(elements=5000, stride=8, name="strided"):
    asm = Assembler(name=name)
    base = 0x100000
    asm.movi("r1", base)
    asm.movi("r2", base + elements * stride)
    loop = asm.label()
    asm.load("r4", "r1", 0)
    asm.add("r3", "r3", "r4")
    asm.addi("r1", "r1", stride)
    asm.blt("r1", "r2", loop)
    asm.halt()
    return Machine(max_instructions=200_000).run(asm.assemble())


def build_chain_trace(nodes=4000, node_bytes=128, scattered=True,
                      seed=5, name="chain"):
    asm = Assembler(name=name)
    rng = random.Random(seed)
    addrs = [0x200000 + i * node_bytes for i in range(nodes)]
    if scattered:
        rng.shuffle(addrs)
    for i in range(nodes - 1):
        asm.data(addrs[i], addrs[i + 1])
        asm.data(addrs[i] + 8, i)
    asm.data(addrs[-1], 0)
    asm.movi("r1", addrs[0])
    loop = asm.label()
    asm.load("r3", "r1", 8)
    asm.add("r2", "r2", "r3")
    asm.load("r1", "r1", 0)
    asm.bne("r1", "r0", loop)
    asm.halt()
    return Machine(max_instructions=200_000).run(asm.assemble())


def build_aop_trace(count=4000, object_bytes=256, seed=6, name="aop"):
    asm = Assembler(name=name)
    rng = random.Random(seed)
    objects = [0x800000 + i * object_bytes for i in range(count)]
    rng.shuffle(objects)
    array_base = 0x100000
    asm.data(array_base, objects)
    for address in objects:
        asm.data(address + 16, address & 0xFFFF)
    asm.movi("r1", array_base)
    asm.movi("r2", array_base + count * 8)
    loop = asm.label()
    asm.load("r4", "r1", 0)
    asm.load("r5", "r4", 16)
    asm.add("r3", "r3", "r5")
    asm.addi("r1", "r1", 8)
    asm.blt("r1", "r2", loop)
    asm.halt()
    return Machine(max_instructions=200_000).run(asm.assemble())


@pytest.fixture(scope="session")
def strided_trace():
    return build_strided_trace()


@pytest.fixture(scope="session")
def chain_trace():
    return build_chain_trace()


@pytest.fixture(scope="session")
def aop_trace():
    return build_aop_trace()
