"""Extra experiment-harness tests: ablations, report_all structure,
scatter machinery, drop-policy plumbing."""

import pytest

from repro.experiments import ablations, drop_policy, report_all, scatter
from repro.experiments.runner import ExperimentRunner, spec_key


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestSpecKey:
    def test_string_spec(self):
        assert spec_key("tpc") == "tpc"

    def test_factory_with_cache_key(self):
        def factory():
            return None

        factory.cache_key = "custom"
        assert spec_key(factory) == "custom"

    def test_factory_without_cache_key_uses_name(self):
        def my_factory():
            return None

        assert spec_key(my_factory) == "my_factory"


class TestScatter:
    def test_weight_modes(self, runner):
        apps = ["spec.libquantum"]
        by_mpki = scatter.collect_scatter(["stride"], apps, runner,
                                          weight_by="mpki")
        by_issued = scatter.collect_scatter(["stride"], apps, runner,
                                            weight_by="issued")
        assert by_mpki[0].points[0].weight != by_issued[0].points[0].weight

    def test_unknown_weight_mode(self, runner):
        with pytest.raises(ValueError):
            scatter.collect_scatter(["stride"], ["spec.libquantum"],
                                    runner, weight_by="bogus")

    def test_series_averages(self, runner):
        series = scatter.collect_scatter(
            ["tpc"], ["spec.libquantum", "spec.milc"], runner
        )[0]
        assert 0 <= series.average_scope <= 1
        assert series.average_accuracy > 0.5


class TestAblations:
    def test_variant_factories_buildable(self):
        for variant in ablations.VARIANTS:
            prefetcher = ablations._variant(variant)()
            assert prefetcher is not None
            prefetcher.reset()

    def test_small_run(self, runner):
        rows = ablations.run(runner, apps=["spec.libquantum"],
                             variants=["tpc", "plain-pc"])
        assert len(rows) == 2
        assert all(r.speedup > 0.9 for r in rows)
        assert "variant" in ablations.render(rows)

    def test_no_boost_variant_breaks_wire(self):
        from repro.core.composite import make_tpc
        composite = make_tpc(boost_pointer_triggers=False)
        t2, p1 = composite.components[0], composite.components[1]
        assert t2.boosted_pcs is not p1.pointer_trigger_pcs

    def test_t2_ablation_knobs(self):
        from repro.core.t2 import T2Prefetcher
        t2 = T2Prefetcher(activate_on_miss=False, use_mpc=False,
                          strided_threshold=8)
        from conftest import feed_stream
        # With activation-on-anything, even hit streams get tracked.
        requests = feed_stream(t2, [i * 64 for i in range(10)],
                               hit_after=0)
        assert t2.sit.state_of(0x1000) != 0  # tracked despite hits


class TestDropPolicyPlumbing:
    def test_custom_mixes(self):
        results = drop_policy.run(
            mixes=[["spec.libquantum", "spec.milc", "spec.lbm",
                    "spec.h264ref"]]
        )
        assert len(results) == 1
        assert results[0].random_speedup > 0.9
        assert "gain" in drop_policy.render(results)

    def test_default_mixes_defined(self):
        assert len(drop_policy.DROP_MIXES) >= 3
        for mix in drop_policy.DROP_MIXES:
            assert len(mix) == 4


class TestReportAll:
    def test_sections_cover_all_artifacts(self):
        titles = " ".join(title for title, _ in report_all.SECTIONS)
        for artifact in ["Table I", "Table II", "Fig. 1", "Fig. 8",
                         "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
                         "Fig. 13", "Fig. 14", "Fig. 15", "Fig. 16",
                         "drop policy", "Ablations"]:
            assert artifact in titles, artifact


class TestComponentSwap:
    def test_variants_buildable(self):
        from repro.experiments import component_swap
        for label, factory in component_swap._variants().items():
            prefetcher = factory()
            prefetcher.reset()
            assert prefetcher.components

    def test_small_run_and_render(self, runner):
        from repro.experiments import component_swap
        rows = component_swap.run(runner, apps=["npb.ep"])
        assert {r.variant for r in rows} == {
            "tpc", "spp/P1/C1", "stride/P1/C1", "T2/P1/sms"
        }
        assert "composite" in component_swap.render(rows)
