"""Stress suite + adversarial fuzzer identity properties.

The stress workloads (docs/workloads.md) each pin one engine mechanism;
the fuzzer generates seeded adversarial traces through the same
registry/trace-cache machinery.  The property under test is the same
bit-identity contract ``tests/test_kernels.py`` pins on fixtures,
promoted to generated inputs: every stressor and every fuzzed seed must
produce identical figures across kernel tiers (kernel-vs-generic),
execution modes (fused-vs-singleton), and trace temperatures
(warm-vs-cold).  Degenerate shapes (empty program, single memory op,
ALU-only) get explicit coverage, as do the fuzzer's determinism
contract, the chaos corrupt/resume path through a stress cell, and the
``REPRO_SEGMENT_COVERAGE`` warn-and-clamp fix.
"""

from __future__ import annotations

import pytest

from repro.engine import batch
from repro.engine.batch import SEGMENT_COVERAGE_ENV, SEGMENT_MAX_COVERAGE
from repro.engine.config import EXPERIMENT_CONFIG
from repro.engine.kernel import GENERIC, KERNEL_ENV, SCALAR
from repro.engine.system import simulate
from repro.isa.trace import compile_trace
from repro.prefetcher_registry import make_prefetcher
from repro.workloads import get_suite, get_workload
from repro.workloads.fuzz import (
    DEGENERATE_EVERY,
    build_fuzz_program,
    check_workload,
    fuzz_name,
    fuzz_simpoint,
    fuzz_workload,
    identity_tuple,
    run_fuzz,
)

STRESS_NAMES = (
    "stress.branch_storm", "stress.store_chain", "stress.page_stride",
    "stress.chase_ladder", "stress.shadow_mix", "stress.mshr_burst",
    "stress.hook_storm", "stress.oddgeom",
)

# One hooked (segmented-tier) and one hook-free (batch-tier) prefetcher
# cover both batch planners; "spp" adds a second hook shape.  The CI
# fuzz-identity job sweeps the whole registry — tests keep the matrix
# small enough for the tier-1 suite.
TEST_PREFETCHERS = ("none", "tpc", "spp")


# ----------------------------------------------------------------------
# Stress suite registration and shape
# ----------------------------------------------------------------------
def test_stress_suite_registered():
    suite = get_suite("stress")
    assert sorted(w.name for w in suite) == sorted(STRESS_NAMES)
    for workload in suite:
        assert workload.suite == "stress"
        assert workload.description  # each documents its mechanism


@pytest.mark.parametrize("name", STRESS_NAMES)
def test_stress_traces_nonempty_and_deterministic(name):
    workload = get_workload(name)
    trace = workload.trace()
    assert len(trace) > 0
    rebuilt = compile_trace(workload.object_trace())
    assert len(rebuilt) == len(trace)


def test_stress_hook_storm_is_island_dense():
    """hook_storm must stay *under* the segmented-coverage ceiling (it
    pins the island-dense segmented path, not the scalar degrade)."""
    trace = get_workload("stress.hook_storm").trace()
    coverage = len(trace.segment_events()) / len(trace)
    assert 0.5 < coverage <= SEGMENT_MAX_COVERAGE


# ----------------------------------------------------------------------
# The three invariants, over the stress suite
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", STRESS_NAMES)
def test_stress_identity_invariants(name):
    summary = check_workload(get_workload(name), TEST_PREFETCHERS,
                             scalar=True)
    assert summary["violations"] == [], summary["violations"]
    assert summary["round_tripped"]  # warm leg really used the disk cache


# ----------------------------------------------------------------------
# Fuzzer determinism contract
# ----------------------------------------------------------------------
def test_fuzz_program_deterministic_per_seed():
    for seed in (0, 1, 7, DEGENERATE_EVERY, 42):
        first = build_fuzz_program(seed)
        second = build_fuzz_program(seed)
        assert first.instructions == second.instructions
        assert first.memory == second.memory
        assert fuzz_simpoint(seed) == fuzz_simpoint(seed)


def test_fuzz_seeds_differ():
    programs = {tuple(build_fuzz_program(s).instructions)
                for s in range(8)}
    assert len(programs) > 1


def test_fuzz_workload_idempotent_registration():
    first = fuzz_workload(3)
    second = fuzz_workload(3)
    assert first is second
    assert first.name == fuzz_name(3) == "fuzz.s00003"


@pytest.mark.parametrize("seed", [0, 1, DEGENERATE_EVERY, 2 * DEGENERATE_EVERY])
def test_fuzz_identity_invariants(seed):
    summary = check_workload(fuzz_workload(seed), TEST_PREFETCHERS)
    assert summary["violations"] == [], summary["violations"]


def test_run_fuzz_report_shape():
    report = run_fuzz(seeds=2, stress=False,
                      prefetchers=("none", "tpc"))
    assert report["ok"] is True
    assert report["violations"] == []
    assert report["workloads"] == 2
    assert report["cells"] == 4
    assert report["simulations"] > 0
    assert set(report["invariants"]) == {
        "kernel-vs-generic", "fused-vs-singleton", "warm-vs-cold"}
    assert len(report["per_workload"]) == 2


# ----------------------------------------------------------------------
# Degenerate traces: every tier must survive empty/one-op columns
# ----------------------------------------------------------------------
def _degenerate_traces():
    from repro.isa import Assembler, Machine

    shapes = {}
    for shape in ("empty", "load", "store", "alu"):
        asm = Assembler(name=f"degen-{shape}")
        if shape == "load":
            asm.movi("r1", 0x40000)
            asm.load("r2", "r1", 0)
        elif shape == "store":
            asm.movi("r1", 0x40000)
            asm.store("r1", "r1", 0)
        elif shape == "alu":
            asm.add("r2", "r2", "r2")
        asm.halt()
        machine = Machine(max_instructions=1000, truncate=True)
        shapes[shape] = compile_trace(machine.run(asm.assemble()))
    return shapes


@pytest.mark.parametrize("prefetcher", ["none", "tpc"])
def test_degenerate_traces_identical_on_every_tier(prefetcher,
                                                   monkeypatch):
    for shape, trace in _degenerate_traces().items():
        auto = simulate(trace, make_prefetcher(prefetcher))
        monkeypatch.setenv(KERNEL_ENV, SCALAR)
        scalar = simulate(trace, make_prefetcher(prefetcher))
        monkeypatch.setenv(KERNEL_ENV, GENERIC)
        generic = simulate(trace, make_prefetcher(prefetcher))
        monkeypatch.delenv(KERNEL_ENV)
        assert identity_tuple(auto) == identity_tuple(scalar), shape
        assert identity_tuple(auto) == identity_tuple(generic), shape


def test_degenerate_fuzz_seed_is_degenerate():
    # The every-13th-seed contract: a tiny program, not a fragment mix.
    program = build_fuzz_program(DEGENERATE_EVERY)
    assert len(program.instructions) <= 32


# ----------------------------------------------------------------------
# Chaos-mode resume identity through a stress cell
# ----------------------------------------------------------------------
def test_stress_identity_under_chaos_corrupt_and_resume(tmp_path):
    """A chaos-corrupted cache write under a stress cell is a miss on
    re-read; the resumed runner re-simulates once and reproduces the
    reference figures exactly (the satellite REPRO_CHAOS requirement)."""
    from repro.experiments.runner import ExperimentRunner, simulate_spec
    from repro.faults import chaos, fault_counters, reset_fault_counters

    app = "stress.mshr_burst"
    cache = str(tmp_path / "cache")
    journal = str(tmp_path / "journal")
    reference = simulate_spec(app, "tpc", "", EXPERIMENT_CONFIG)

    reset_fault_counters()
    chaos.set_chaos(chaos.parse_spec(f"corrupt=result:{app}/tpc"))
    try:
        writer = ExperimentRunner(cache_dir=cache, journal_dir=journal)
        first = writer.run(app, "tpc")
    finally:
        chaos.set_chaos(None)
    resumed = ExperimentRunner(cache_dir=cache, journal_dir=journal)
    second = resumed.run(app, "tpc")
    assert identity_tuple(first) == identity_tuple(reference)
    assert identity_tuple(second) == identity_tuple(reference)
    assert resumed.counters["simulated"] == 1
    assert fault_counters()["cache_corrupt"] >= 1


# ----------------------------------------------------------------------
# REPRO_SEGMENT_COVERAGE validation (the satellite bugfix)
# ----------------------------------------------------------------------
def test_segment_coverage_default(monkeypatch):
    monkeypatch.delenv(SEGMENT_COVERAGE_ENV, raising=False)
    assert batch.segment_max_coverage() == SEGMENT_MAX_COVERAGE


def test_segment_coverage_valid_value(monkeypatch):
    monkeypatch.setenv(SEGMENT_COVERAGE_ENV, "0.5")
    assert batch.segment_max_coverage() == 0.5


def test_segment_coverage_rejects_garbage_with_warning(monkeypatch,
                                                       capsys):
    batch._COVERAGE_WARNED.clear()
    monkeypatch.setenv(SEGMENT_COVERAGE_ENV, "ninety-five")
    assert batch.segment_max_coverage() == SEGMENT_MAX_COVERAGE
    assert SEGMENT_COVERAGE_ENV in capsys.readouterr().err
    # Warned once, not once per cell.
    assert batch.segment_max_coverage() == SEGMENT_MAX_COVERAGE
    assert capsys.readouterr().err == ""


@pytest.mark.parametrize("raw,expected", [("9.5", 1.0), ("-0.5", 0.0),
                                          ("1.0", 1.0), ("0.0", 0.0)])
def test_segment_coverage_clamps_out_of_range(raw, expected,
                                              monkeypatch, capsys):
    batch._COVERAGE_WARNED.clear()
    monkeypatch.setenv(SEGMENT_COVERAGE_ENV, raw)
    assert batch.segment_max_coverage() == expected
    err = capsys.readouterr().err
    if float(raw) != expected:
        assert "clamping" in err
    else:
        assert err == ""  # in-range values pass through silently


def test_segment_coverage_quiet_mode_suppresses_warning(monkeypatch,
                                                        capsys):
    batch._COVERAGE_WARNED.clear()
    monkeypatch.setenv("REPRO_LOG", "quiet")
    monkeypatch.setenv(SEGMENT_COVERAGE_ENV, "garbage")
    assert batch.segment_max_coverage() == SEGMENT_MAX_COVERAGE
    assert capsys.readouterr().err == ""


# ----------------------------------------------------------------------
# The 200-seed regression property (satellite: "prove 0 divergences")
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_fuzz_200_seeds_zero_divergences():
    """The acceptance-criteria sweep, rotated so each seed checks one
    hooked + one hook-free prefetcher (full cross product is the CI
    ``repro fuzz`` job's budget, not the tier-1 suite's)."""
    hooked = ("tpc", "bop", "spp", "sms", "vldp")
    violations = []
    for seed in range(200):
        prefetchers = ("none", hooked[seed % len(hooked)])
        summary = check_workload(fuzz_workload(seed), prefetchers)
        violations += summary["violations"]
    assert violations == [], violations
