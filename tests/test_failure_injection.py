"""Failure injection / fuzzing: every prefetcher must survive arbitrary
access streams and only ever emit well-formed requests."""

from hypothesis import given, settings, strategies as st

from conftest import make_event

from repro.prefetcher_registry import available_prefetchers, make_prefetcher

# A stream of (pc choice, address, hit, value) tuples.  Addresses include
# 0, line/page boundaries, and huge values; values include pointer-like
# and garbage numbers.
events = st.tuples(
    st.integers(0, 3),                                   # pc selector
    st.one_of(
        st.integers(0, 1 << 44),
        st.sampled_from([0, 63, 64, 4095, 4096, (1 << 40) - 1]),
    ),
    st.booleans(),
    st.integers(0, 1 << 44),
)


def drive(prefetcher, stream):
    pcs = [0x100, 0x104, 0x2000, 0x2004]
    issued = []
    for i, (pc_index, addr, hit, value) in enumerate(stream):
        event = make_event(
            pc=pcs[pc_index], addr=addr, cycle=i * 3, hit=hit, value=value
        )
        prefetcher.observe_access(event)
        requests = prefetcher.on_access(event)
        if requests:
            issued.extend(requests)
        if i % 7 == 0:
            prefetcher.on_fill(addr >> 6, 1, prefetched=bool(i % 2))
        if i % 11 == 0:
            prefetcher.on_prefetch_hit(addr >> 6, 1)
    return issued


class TestFuzzAllPrefetchers:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(events, max_size=120))
    def test_requests_always_well_formed(self, stream):
        for name in available_prefetchers():
            prefetcher = make_prefetcher(name)
            if prefetcher.wants_memory_image:
                prefetcher.set_memory({})
            for request in drive(prefetcher, stream):
                assert request.line >= 0, name
                assert request.target_level in (1, 2), name
                assert request.component is None or isinstance(
                    request.component, str
                ), name

    @settings(max_examples=10, deadline=None)
    @given(st.lists(events, max_size=80))
    def test_reset_midstream_is_safe(self, stream):
        for name in ["tpc", "spp", "bop", "fdp"]:
            prefetcher = make_prefetcher(name)
            if prefetcher.wants_memory_image:
                prefetcher.set_memory({})
            half = len(stream) // 2
            drive(prefetcher, stream[:half])
            prefetcher.reset()
            if prefetcher.wants_memory_image:
                prefetcher.set_memory({})
            drive(prefetcher, stream[half:])


class TestInstructionStreamFuzz:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(
        st.integers(0, 6),           # opclass
        st.integers(0, 31),          # dst
        st.integers(-1, 31),         # src1
        st.integers(-1, 31),         # src2
        st.booleans(),               # taken
    ), max_size=150))
    def test_tpc_survives_arbitrary_instruction_stream(self, instructions):
        from repro.isa.trace import TraceRecord
        tpc = make_prefetcher("tpc")
        tpc.set_memory({})
        for i, (opc, dst, src1, src2, taken) in enumerate(instructions):
            record = TraceRecord(
                pc=0x1000 + (i % 9) * 4,
                opc=opc,
                addr=(i * 37) % (1 << 20),
                dst=dst,
                src1=src1,
                src2=src2,
                taken=taken,
                target_pc=0x1000 + ((i * 13) % 40),
            )
            tpc.observe_instruction(record, i)


class TestDegenerateWorkloads:
    def test_empty_memory_image_chain(self):
        """P1 chain prefetching with a missing memory image must not
        crash or emit negative lines."""
        from repro.core.p1 import P1Prefetcher, _ChainState
        p1 = P1Prefetcher()
        p1.set_memory({})
        p1._chains[0x10] = _ChainState(offset=0)
        requests = []
        event = make_event(pc=0x10, addr=0x4000, value=0x5000, hit=False)
        p1._chain_prefetch(event, p1._chains[0x10], requests)
        for request in requests:
            assert request.line >= 0

    def test_single_instruction_trace(self):
        from repro.engine.system import simulate
        from repro.isa import Assembler, Machine
        asm = Assembler()
        asm.halt()
        trace = Machine().run(asm.assemble())
        result = simulate(trace, make_prefetcher("tpc"))
        assert result.core.instructions == 0

    def test_store_only_workload(self):
        from repro.engine.system import simulate
        from repro.isa import Assembler, Machine
        asm = Assembler()
        asm.movi("r1", 0x1000)
        asm.movi("r2", 0x1000 + 500 * 64)
        loop = asm.label()
        asm.store("r3", "r1", 0)
        asm.addi("r1", "r1", 64)
        asm.blt("r1", "r2", loop)
        asm.halt()
        trace = Machine().run(asm.assemble())
        result = simulate(trace, make_prefetcher("tpc"))
        assert result.core.stores == 500
