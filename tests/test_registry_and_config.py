"""Tests for the prefetcher registry, system config, and public API."""

import dataclasses

import pytest

import repro
from repro.engine.config import (
    DEFAULT_CONFIG,
    EXPERIMENT_CONFIG,
    CacheConfig,
    SystemConfig,
)
from repro.memory.dram import DropPolicy
from repro.prefetcher_registry import (
    PAPER_MONOLITHIC,
    available_prefetchers,
    make_prefetcher,
)


class TestRegistry:
    def test_all_names_instantiable(self):
        for name in available_prefetchers():
            prefetcher = make_prefetcher(name)
            assert prefetcher is not None
            prefetcher.reset()

    def test_paper_monolithic_subset(self):
        assert set(PAPER_MONOLITHIC) <= set(available_prefetchers())
        assert len(PAPER_MONOLITHIC) == 7

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            make_prefetcher("markov9000")

    def test_kwargs_forwarded(self):
        prefetcher = make_prefetcher("stride", degree=7)
        assert prefetcher.degree == 7

    def test_tpc_names(self):
        assert make_prefetcher("tpc").name == "tpc"
        assert make_prefetcher("t2").name == "t2"

    def test_instances_independent(self):
        a = make_prefetcher("sms")
        b = make_prefetcher("sms")
        assert a is not b
        assert a._pht is not b._pht


class TestSystemConfig:
    def test_default_matches_table1(self):
        assert DEFAULT_CONFIG.core.width == 4
        assert DEFAULT_CONFIG.core.rob_entries == 192
        assert DEFAULT_CONFIG.l1d.size_bytes == 64 * 1024
        assert DEFAULT_CONFIG.l2.size_bytes == 256 * 1024
        assert DEFAULT_CONFIG.l3.size_bytes == 2 * 1024 * 1024
        assert DEFAULT_CONFIG.dram.channels == 2

    def test_scaled_down_preserves_ratios(self):
        scaled = DEFAULT_CONFIG.scaled_down(8)
        assert scaled.l1d.size_bytes == DEFAULT_CONFIG.l1d.size_bytes // 8
        assert scaled.l2.size_bytes == DEFAULT_CONFIG.l2.size_bytes // 8
        assert scaled.l1d.ways == DEFAULT_CONFIG.l1d.ways
        assert scaled.core == DEFAULT_CONFIG.core

    def test_scaled_down_floors_at_one_set(self):
        tiny = SystemConfig(
            l1d=CacheConfig(4 * 64, 4, latency=3)
        ).scaled_down(100)
        assert tiny.l1d.size_bytes >= tiny.l1d.ways * tiny.l1d.line_bytes

    def test_with_drop_policy(self):
        config = DEFAULT_CONFIG.with_drop_policy(
            DropPolicy.LOW_PRIORITY_FIRST
        )
        assert config.dram.drop_policy is DropPolicy.LOW_PRIORITY_FIRST
        assert DEFAULT_CONFIG.dram.drop_policy is DropPolicy.RANDOM

    def test_with_l3_size(self):
        config = DEFAULT_CONFIG.with_l3_size(1024 * 1024)
        assert config.l3.size_bytes == 1024 * 1024

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.core.width = 8

    def test_experiment_config_is_scaled(self):
        assert (
            EXPERIMENT_CONFIG.l1d.size_bytes
            < DEFAULT_CONFIG.l1d.size_bytes
        )


class TestPublicApi:
    def test_lazy_exports(self):
        assert callable(repro.simulate)
        assert callable(repro.make_prefetcher)
        assert repro.SystemConfig is SystemConfig
        assert repro.SimulationResult is not None
        assert "tpc" in repro.available_prefetchers()

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_version(self):
        assert repro.__version__
