"""Tests for the sensitivity-sweep experiment module."""

from repro.experiments import sensitivity


class TestSensitivity:
    def test_l3_sweep_small(self):
        points = sensitivity.run_l3_sweep(
            apps=["spec.libquantum"], prefetchers=["tpc"],
            sizes_kb=[64, 256],
        )
        assert len(points) == 2
        assert all(p.parameter == "l3_kb" for p in points)
        assert all(p.speedup > 0.9 for p in points)

    def test_bigger_l3_reduces_baseline_misses(self):
        from repro.engine.config import EXPERIMENT_CONFIG
        from repro.engine.system import simulate
        from repro.workloads import get_workload

        trace = get_workload("spec.sjeng").trace()
        small = simulate(
            trace, config=EXPERIMENT_CONFIG.with_l3_size(64 * 1024)
        )
        big = simulate(
            trace, config=EXPERIMENT_CONFIG.with_l3_size(1024 * 1024)
        )
        assert big.l3.demand_misses <= small.l3.demand_misses

    def test_mshr_sweep_small(self):
        points = sensitivity.run_mshr_sweep(
            apps=["spec.libquantum"], prefetchers=["tpc"], counts=[4, 32]
        )
        by_count = {p.value: p.speedup for p in points}
        # Starved MSHRs cannot beat plentiful ones for the prefetcher.
        assert by_count[32] >= by_count[4] - 0.05

    def test_render(self):
        points = sensitivity.run_l3_sweep(
            apps=["npb.ep"], prefetchers=["tpc"], sizes_kb=[256]
        )
        assert "l3_kb" in sensitivity.render(points)
