"""Unit/behavioral tests for the T2, P1, and C1 components."""

from conftest import feed_stream, make_event

from repro.core.c1 import C1Prefetcher
from repro.core.p1 import P1Prefetcher
from repro.core.sit import InstructionState
from repro.core.t2 import T2Prefetcher
from repro.engine.system import simulate
from repro.prefetcher_registry import make_prefetcher


class TestT2Unit:
    def test_activation_requires_primary_miss(self):
        t2 = T2Prefetcher()
        event = make_event(pc=0x10, addr=0, hit=True, primary_miss=False)
        t2.on_access(event)
        assert t2.sit.state_of(0x10) is InstructionState.UNKNOWN
        miss = make_event(pc=0x10, addr=64, hit=False)
        t2.on_access(miss)
        assert t2.sit.state_of(0x10) is InstructionState.OBSERVATION

    def test_strided_after_sixteen_deltas(self):
        t2 = T2Prefetcher()
        feed_stream(t2, [i * 8 for i in range(20)], pc=0x10)
        assert t2.sit.state_of(0x10) is InstructionState.STRIDED
        assert t2.claims(0x10)

    def test_non_strided_after_changing_deltas(self):
        import random
        rng = random.Random(9)
        t2 = T2Prefetcher()
        feed_stream(t2, [rng.randrange(1 << 20) * 8 for _ in range(10)],
                    pc=0x10)
        assert t2.sit.state_of(0x10) is InstructionState.NON_STRIDED
        assert not t2.claims(0x10)

    def test_early_issue_in_observation(self):
        t2 = T2Prefetcher()
        # After 4 stable deltas (< 16), prefetching already starts.
        requests = feed_stream(t2, [i * 64 for i in range(8)], pc=0x10)
        assert requests

    def test_mpc_distinguishes_call_sites(self):
        t2 = T2Prefetcher()
        # Same PC, different RAS tops -> different SIT entries.
        for i in range(6):
            t2.on_access(make_event(pc=0x10, mpc=0x10 ^ 0xAAA,
                                    addr=i * 8, hit=False))
            t2.on_access(make_event(pc=0x10, mpc=0x10 ^ 0xBBB,
                                    addr=0x100000 + i * 16, hit=False))
        entry_a = t2.sit.get(0x10 ^ 0xAAA)
        entry_b = t2.sit.get(0x10 ^ 0xBBB)
        assert entry_a is not None and entry_b is not None
        assert entry_a.delta == 8 and entry_b.delta == 16

    def test_boosted_pcs_double_distance(self):
        t2 = T2Prefetcher()
        t2.loops._iteration_time = 10.0
        t2.loops.loop_pc = 0x99
        t2._amat = 100.0
        base = t2.prefetch_distance(0x10)
        t2.boosted_pcs.add(0x10)
        assert t2.prefetch_distance(0x10) == min(2 * base, t2.max_distance)

    def test_distance_capped_by_proven_length(self):
        t2 = T2Prefetcher()
        t2.loops._iteration_time = 1.0
        t2.loops.loop_pc = 0x99
        t2._amat = 300.0
        assert t2.prefetch_distance(0x10, proven_length=5) <= 5

    def test_storage_close_to_table2(self):
        kb = T2Prefetcher().storage_bits / 8 / 1024
        assert 1.5 < kb < 3.5  # paper: 2.3 KB


class TestT2EndToEnd:
    def test_covers_strided_stream(self, strided_trace):
        base = simulate(strided_trace)
        result = simulate(strided_trace, T2Prefetcher())
        assert result.l1d.demand_misses < base.l1d.demand_misses / 10
        assert result.cycles < base.cycles

    def test_high_accuracy_on_strided(self, strided_trace):
        base = simulate(strided_trace)
        result = simulate(strided_trace, T2Prefetcher())
        issued = result.prefetch.issued
        useful = result.l1d.useful_prefetches
        assert issued > 0
        assert useful / issued > 0.9


class TestP1Unit:
    def test_aop_detection_via_events(self):
        # Trigger load at 0x10 (strided values), dependent at 0x14.
        p1 = P1Prefetcher()
        memory = {}
        objects = [0x50000 + 4096 * i for i in range(64)]
        for i, obj in enumerate(objects):
            memory[0x1000 + 8 * i] = obj
        p1.set_memory(memory)
        from repro.isa.instructions import OpClass
        from repro.isa.trace import TraceRecord
        for i in range(40):
            addr_i = 0x1000 + 8 * i
            value_i = objects[i]
            trigger = make_event(pc=0x10, addr=addr_i, value=value_i,
                                 hit=False, dst=4)
            p1.observe_instruction(
                TraceRecord(0x10, OpClass.LOAD, addr=addr_i, value=value_i,
                            dst=4, src1=1), i * 10)
            p1.on_access(trigger)
            dep_addr = value_i + 16
            dependent = make_event(pc=0x14, addr=dep_addr, hit=False, dst=5)
            p1.observe_instruction(
                TraceRecord(0x14, OpClass.LOAD, addr=dep_addr, dst=5,
                            src1=4), i * 10 + 1)
            p1.on_access(dependent)
        assert 0x10 in p1._aop_pairs
        assert p1.claims(0x14)
        assert 0x10 in p1.pointer_trigger_pcs

    def test_chain_detected_end_to_end(self, chain_trace):
        result = simulate(chain_trace, P1Prefetcher())
        p1_issued = result.prefetch.by_component.get("P1", 0)
        assert p1_issued > 0

    def test_chain_accuracy_is_high(self, chain_trace):
        result = simulate(chain_trace, P1Prefetcher())
        issued = result.prefetch.issued
        useful = result.l1d.useful_prefetches
        assert issued > 0
        assert useful / issued > 0.8

    def test_aop_end_to_end_reduces_misses(self, aop_trace):
        base = simulate(aop_trace)
        result = simulate(aop_trace, P1Prefetcher())
        assert result.l1d.demand_misses < base.l1d.demand_misses

    def test_storage_close_to_table2(self):
        kb = P1Prefetcher().storage_bits / 8 / 1024
        assert 0.8 < kb < 1.6  # paper: 1.07 KB


class TestC1Unit:
    def test_dense_instruction_marked(self):
        c1 = C1Prefetcher()
        # One PC missing all over dense regions.
        for region in range(6):
            base = region * 1024 + 0x40000
            for line in range(10):   # 10 of 16 lines: dense
                event = make_event(pc=0x30, addr=base + line * 64, hit=False)
                c1.observe_access(event)
                c1.on_access(event)
        # Force RM evictions by touching many other regions.
        for region in range(40):
            event = make_event(pc=0x99, addr=0x900000 + region * 1024,
                               hit=True, primary_miss=False)
            c1.observe_access(event)
            c1.on_access(event)
        assert c1.claims(0x30)

    def test_sparse_instruction_rejected(self):
        c1 = C1Prefetcher()
        for region in range(8):
            base = region * 1024 + 0x40000
            event = make_event(pc=0x30, addr=base, hit=False)  # 1 line only
            c1.observe_access(event)
            c1.on_access(event)
        for region in range(40):
            event = make_event(pc=0x99, addr=0x900000 + region * 1024,
                               hit=True, primary_miss=False)
            c1.observe_access(event)
            c1.on_access(event)
        assert not c1.claims(0x30)
        assert 0x30 in c1._decided_sparse

    def test_dense_pc_triggers_region_prefetch(self):
        c1 = C1Prefetcher()
        c1._decided_dense.add(0x30)
        event = make_event(pc=0x30, addr=0x80000, hit=False)
        c1.observe_access(event)
        requests = c1.on_access(event)
        assert requests is not None
        assert len(requests) == 15  # whole region minus the accessed line
        assert all(r.target_level == 2 for r in requests)
        assert all(r.component == "C1" for r in requests)

    def test_region_prefetched_once(self):
        c1 = C1Prefetcher()
        c1._decided_dense.add(0x30)
        for _ in range(3):
            event = make_event(pc=0x30, addr=0x80000, hit=False)
            c1.observe_access(event)
            requests = c1.on_access(event)
        assert requests is None  # deduped by the recent-regions window

    def test_im_capacity_respected(self):
        c1 = C1Prefetcher(im_entries=2)
        for pc in range(10):
            event = make_event(pc=pc, addr=pc * 4096, hit=False)
            c1.observe_access(event)
            c1.on_access(event)
        monitored = [e for e in c1._im if e is not None]
        assert len(monitored) <= 2

    def test_storage_close_to_table2(self):
        kb = C1Prefetcher().storage_bits / 8 / 1024
        assert 0.8 < kb < 1.8  # paper: 1.2 KB


class TestComponentTargets:
    def test_t2_and_p1_target_l1_c1_targets_l2(self):
        tpc = make_prefetcher("tpc")
        t2, p1, c1 = tpc.components
        assert t2.target_level == 1
        assert p1.target_level == 1
        assert c1.target_level == 2
