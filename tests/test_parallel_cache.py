"""Parallel fan-out and on-disk result cache (docs/performance.md).

The contract under test is bit-identity: ``--jobs N`` must change
nothing but wall-clock time, and a warm cache must reproduce cold
results exactly while performing zero fresh simulations.
"""

import pickle

import pytest

from repro.engine.config import EXPERIMENT_CONFIG
from repro.experiments import fig09, fig12
from repro.experiments.runner import (
    ExperimentRunner,
    SpecFactory,
    resolve_spec,
    spec_key,
)
from repro.core.base import Prefetcher
from repro.core.composite import make_tpc
from repro import parallel
from repro.parallel import (
    _pack_result,
    _unpack_result,
    normalize_job,
    run_jobs,
    shutdown_pool,
)
from repro.resultcache import ResultCache, code_version, config_digest

APPS = ["spec.libquantum", "spec.astar"]


class _CountingFactory:
    """Factory with a stable key that counts how often it builds."""

    cache_key = "counting-tpc"

    def __init__(self):
        self.builds = 0

    def __call__(self) -> Prefetcher:
        self.builds += 1
        return make_tpc()


# ----------------------------------------------------------------------
# Spec resolution
# ----------------------------------------------------------------------
def test_runner_builds_spec_exactly_once_per_simulation():
    factory = _CountingFactory()
    runner = ExperimentRunner()
    runner.run(APPS[0], factory)
    assert factory.builds == 1
    runner.run(APPS[0], factory)  # memoized: no rebuild
    assert factory.builds == 1
    assert runner.counters["simulated"] == 1
    assert runner.counters["memory_hits"] == 1


def test_resolve_spec_anonymous_factory_builds_at_most_once():
    built = []

    def factory():
        built.append(1)
        return make_tpc()

    factory.__name__ = "<lambda>"  # force the descriptor fallback
    key, instance = resolve_spec(factory)
    assert instance is not None, "keying built it, so the caller reuses it"
    assert len(built) == 1
    assert key.startswith(instance.name + "@")
    assert spec_key(factory) == key  # stable across resolutions


def test_spec_factory_pickles_with_same_key():
    factory = SpecFactory("tpc:tp", make_tpc, components="tp")
    clone = pickle.loads(pickle.dumps(factory))
    assert clone.cache_key == factory.cache_key
    assert clone().name == factory().name
    assert normalize_job(("spec.mcf", factory))[1] is factory


# ----------------------------------------------------------------------
# Parallel fan-out
# ----------------------------------------------------------------------
def test_run_jobs_results_in_submission_order():
    jobs = [(app, "none") for app in APPS]
    results = run_jobs(jobs, EXPERIMENT_CONFIG, 2)
    assert [r.workload for r in results] == APPS


@pytest.mark.parametrize("figure,kwargs", [
    (fig09, {"prefetchers": ["bop"]}),
    (fig12, {"monolithic": []}),
])
def test_figures_identical_at_jobs_1_and_4(figure, kwargs):
    serial = figure.run(runner=ExperimentRunner(jobs=1), apps=APPS, **kwargs)
    fanned = figure.run(runner=ExperimentRunner(jobs=4), apps=APPS, **kwargs)
    assert figure.render(serial) == figure.render(fanned)
    assert serial == fanned


def test_single_job_runs_in_process(monkeypatch):
    """One pool-eligible cell must never pay process-pool overhead."""
    def fail(workers):
        raise AssertionError("pool created for a single job")

    monkeypatch.setattr(parallel, "_get_executor", fail)
    results = run_jobs([(APPS[0], "none")], EXPERIMENT_CONFIG, 8)
    assert results[0].workload == APPS[0]


def test_pool_persists_across_run_jobs_calls():
    jobs = [(app, spec) for app in APPS for spec in ("none", "bop")]
    shutdown_pool()
    try:
        run_jobs(jobs, EXPERIMENT_CONFIG, 2)
        first = parallel._EXECUTOR
        assert first is not None and parallel.pool_workers() == 2
        run_jobs(jobs, EXPERIMENT_CONFIG, 2)
        assert parallel._EXECUTOR is first  # reused, not respawned
        run_jobs(jobs, EXPERIMENT_CONFIG, 3)
        assert parallel._EXECUTOR is not first  # size change recreates
        assert parallel.pool_workers() == 3
    finally:
        shutdown_pool()
    assert parallel.pool_workers() == 0


def test_packed_result_roundtrip():
    from repro.experiments.runner import simulate_spec

    reference = simulate_spec(APPS[0], "tpc", "", EXPERIMENT_CONFIG)
    packed = _pack_result(
        simulate_spec(APPS[0], "tpc", "", EXPERIMENT_CONFIG))
    # The wire payload really is slim: the bulky collections are blobs.
    stripped = packed[0]
    assert stripped.miss_lines_l1 == {} == stripped.attempted_by_component
    restored = _unpack_result(packed)
    assert restored.miss_lines_l1 == reference.miss_lines_l1
    assert restored.miss_lines_l2 == reference.miss_lines_l2
    assert restored.core.miss_pcs == reference.core.miss_pcs
    assert restored.core.miss_latency_by_pc \
        == reference.core.miss_latency_by_pc
    assert restored.attempted_prefetch_lines \
        == reference.attempted_prefetch_lines
    assert restored.attempted_by_component \
        == reference.attempted_by_component
    assert restored.core.cycles == reference.core.cycles


def test_run_jobs_reports_phase_timings():
    jobs = [(app, "none") for app in APPS]
    timings: dict = {}
    try:
        run_jobs(jobs, EXPERIMENT_CONFIG, 2, timings=timings)
    finally:
        shutdown_pool()
    assert set(timings) == {"trace_warm_seconds", "simulate_seconds",
                            "merge_seconds"}
    assert all(v >= 0 for v in timings.values())


def test_prefill_matches_on_demand_results():
    serial = ExperimentRunner()
    fanned = ExperimentRunner(jobs=4)
    jobs = [(app, spec) for app in APPS for spec in ("none", "bop")]
    assert fanned.prefill(jobs) == len(jobs)
    for app, spec in jobs:
        a = serial.run(app, spec)
        b = fanned.run(app, spec)
        assert (a.core.cycles, a.core.instructions, a.l1d.demand_misses) \
            == (b.core.cycles, b.core.instructions, b.l1d.demand_misses)
    # Every post-prefill run() must be a memory hit.
    assert fanned.counters["memory_hits"] == len(jobs)


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
def test_warm_cache_is_identical_and_simulates_nothing(tmp_path):
    cells = [(app, spec) for app in APPS for spec in ("none", "tpc")]

    cold = ExperimentRunner(cache_dir=str(tmp_path))
    cold_results = {cell: cold.run(*cell) for cell in cells}
    assert cold.counters["simulated"] == len(cells)

    warm = ExperimentRunner(cache_dir=str(tmp_path))
    for cell in cells:
        a, b = cold_results[cell], warm.run(*cell)
        assert (a.core.cycles, a.core.ipc, a.dram.reads) \
            == (b.core.cycles, b.core.ipc, b.dram.reads)
    assert warm.counters["simulated"] == 0
    assert warm.counters["disk_hits"] == len(cells)


def test_cache_key_separates_configs_and_code_versions(tmp_path):
    cache = ResultCache(str(tmp_path))
    digest = config_digest(EXPERIMENT_CONFIG)
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    result = runner.run(APPS[0], "none")
    assert cache.get(APPS[0], "none", "", digest) is not None
    # A different config digest or tag misses.
    assert cache.get(APPS[0], "none", "", "0" * 16) is None
    assert cache.get(APPS[0], "none", "other-tag", digest) is None
    # Entries live under the current code-version directory, so editing
    # simulator sources orphans (invalidates) them wholesale.
    assert (tmp_path / code_version()).is_dir()
    assert result.core.instructions > 0


def test_cache_stats_and_clear(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    runner.run(APPS[0], "none")
    cache = ResultCache(str(tmp_path))
    stats = cache.stats()
    assert stats["entries"] == 1 and stats["bytes"] > 0
    removed = cache.clear()
    assert removed == 1
    assert cache.stats()["entries"] == 0
