"""Specialized replay kernels (docs/performance.md, "Replay kernels").

The contract under test is bit-identity: a specialized kernel is a
partial evaluation of the generic step loop, so it may change wall
clock but never a number.  These tests pin that registry-wide against
the ``REPRO_KERNEL=generic`` escape hatch, pin workload-affine cell
fusion against its own escape hatch (``REPRO_FUSION=0``) at ``--jobs
4``, check the derived trace columns against fresh derivation, and
follow the kernel-variant attribution through results, manifests, and
the fault journal.  The batch replay tier gets its own section: tier
selection, scalar/generic escape hatches, degenerate segmentations, and
identity under injected cache corruption.  The segmented tier (hooked
cells) mirrors it: hook islands at the trace boundaries, back-to-back
islands, the all-event degrade to scalar, and chaos corrupt/resume.
"""

from __future__ import annotations

import json

import pytest

from conftest import build_chain_trace, build_strided_trace
from repro.engine.batch import BATCH_VARIANT, segment_max_coverage
from repro.engine.config import EXPERIMENT_CONFIG
from repro.engine.kernel import (GENERIC, KERNEL_ENV, SCALAR, kernel_flags,
                                 variant_name)
from repro.engine.system import simulate
from repro.isa import Assembler, Machine
from repro.isa.trace import (
    DERIVED_FIELDS,
    LINE_SHIFT,
    CompiledTrace,
    compile_trace,
    derived_counters,
)
from repro.parallel import FUSION_ENV, _fusion_units, run_jobs, shutdown_pool
from repro.parallel.stealing import STEAL_ENV
from repro.prefetcher_registry import available_prefetchers, make_prefetcher
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def strided():
    return compile_trace(build_strided_trace(elements=1500, name="k-strided"))


@pytest.fixture(scope="module")
def chain():
    return compile_trace(build_chain_trace(nodes=1200, name="k-chain"))


def _identity(result) -> tuple:
    """Everything a simulation reports, for exact comparison."""
    return (
        result.core,
        result.l1d,
        result.l2,
        result.l3,
        result.dram,
        result.prefetch,
        result.miss_lines_l1,
        result.miss_lines_l2,
        result.attempted_prefetch_lines,
        result.attempted_by_component,
        result.pollution_misses_l1,
        result.pollution_misses_l2,
    )


# ----------------------------------------------------------------------
# Registry-wide bit identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", available_prefetchers())
def test_specialized_matches_generic_registry_wide(name, strided, chain,
                                                   monkeypatch):
    for trace in (strided, chain):
        fast = simulate(trace, make_prefetcher(name))
        monkeypatch.setenv(KERNEL_ENV, GENERIC)
        slow = simulate(trace, make_prefetcher(name))
        monkeypatch.delenv(KERNEL_ENV)
        # Hook-free cells may climb to the batch kernel; hooked
        # leanmem cells to the segmented kernel.
        assert fast.kernel.startswith(("fast", "batch", "segmented")), name
        assert slow.kernel == GENERIC
        assert _identity(fast) == _identity(slow), (name, trace.name)


def test_specialized_matches_generic_with_telemetry(strided, monkeypatch):
    """Telemetry disables the lean memory path but not specialization."""
    fast = simulate(strided, make_prefetcher("tpc"), telemetry=Telemetry())
    monkeypatch.setenv(KERNEL_ENV, GENERIC)
    slow = simulate(strided, make_prefetcher("tpc"), telemetry=Telemetry())
    monkeypatch.delenv(KERNEL_ENV)
    assert fast.kernel.startswith("fast")
    assert "leanmem" not in fast.kernel
    assert _identity(fast) == _identity(slow)


def test_lean_flag_set_without_telemetry(strided):
    result = simulate(strided, make_prefetcher("none"))
    assert "leanmem" in result.kernel


# ----------------------------------------------------------------------
# Kernel selection and the escape hatch
# ----------------------------------------------------------------------
def test_object_trace_falls_back_to_generic():
    trace = build_strided_trace(elements=300, name="k-object")
    result = simulate(trace)
    assert result.kernel == GENERIC


def test_env_escape_hatch_disables_specialization(strided, monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, GENERIC)
    result = simulate(strided)
    assert result.kernel == GENERIC


def test_kernel_flags_none_under_escape_hatch(strided, monkeypatch):
    class _Probe:
        trace = strided
        _observe_instruction = None
        _observe_access = None
        _on_access = None
        _on_fill = None
        _sampler = None
        _branch_predictor = object()

        class hierarchy:
            tracker = None
            telemetry = None

    assert kernel_flags(_Probe()) is not None
    monkeypatch.setenv(KERNEL_ENV, GENERIC)
    assert kernel_flags(_Probe()) is None


def test_variant_name_encodes_flags():
    assert variant_name((False,) * 5 + (True, False)) == "fast+staticbp"
    name = variant_name((True, True, True, True, True, False, True))
    assert name == "fast+instr+observe+issue+fill+sample+leanmem+dynbp"


# ----------------------------------------------------------------------
# Derived columns
# ----------------------------------------------------------------------
def test_derived_columns_match_primary_columns(strided):
    line, mpc, disp, bp_miss = strided.derived_columns()
    assert list(line) == [a >> LINE_SHIFT for a in strided.addr]
    assert list(mpc) == [p ^ r for p, r in zip(strided.pc, strided.ras_top)]
    assert len(disp) == len(bp_miss) == len(strided)


def test_derived_columns_round_trip(chain):
    original = chain.derived_columns()
    blobs = chain.column_bytes()
    derived = chain.derived_bytes()
    before = derived_counters()

    restored = CompiledTrace.from_column_bytes(chain.name, blobs,
                                               chain.memory, derived=derived)
    after = derived_counters()
    assert after["derived_hits"] == before["derived_hits"] + 1
    # Restored from the cache blobs: no derivation pass happened — the
    # arrays arrive pre-built — yet the list views materialized from
    # them are exactly what a fresh derivation produces.
    assert restored._derived_arrays is not None
    assert restored.derived_columns() == original
    assert after["derived_builds"] == derived_counters()["derived_builds"]

    rebuilt = CompiledTrace.from_column_bytes(chain.name, blobs, chain.memory)
    assert rebuilt._derived is None and rebuilt._derived_arrays is None
    assert rebuilt.derived_columns() == original
    assert set(DERIVED_FIELDS) == set(derived)


# ----------------------------------------------------------------------
# Workload-affine cell fusion
# ----------------------------------------------------------------------
def test_fusion_units_group_by_workload(monkeypatch):
    normalized = [("a", "s1", ""), ("b", "s1", ""), ("a", "s2", ""),
                  ("b", "s2", "")]
    # Default (stealing): fine-grained workload-affine units —
    # ceil(4 / (1 * 4)) = 1 cell each, grouped by workload.
    units = _fusion_units([0, 1, 2, 3], normalized, 1)
    assert units == [(0,), (2,), (1,), (3,)]
    # Legacy static discipline: coarse ceil(4 / (1 * 2)) = 2 chunks.
    monkeypatch.setenv(STEAL_ENV, "0")
    assert _fusion_units([0, 1, 2, 3], normalized, 1) == [(0, 2), (1, 3)]
    monkeypatch.delenv(STEAL_ENV)
    monkeypatch.setenv(FUSION_ENV, "0")
    assert _fusion_units([0, 1, 2, 3], normalized, 1) == [
        (0,), (1,), (2,), (3,)]


def test_fusion_identity_at_jobs_4(monkeypatch):
    matrix = [(w, s) for w in ("spec.libquantum", "spec.astar")
              for s in ("none", "bop")]
    try:
        fused = run_jobs(matrix, EXPERIMENT_CONFIG, 4)
        shutdown_pool()
        monkeypatch.setenv(FUSION_ENV, "0")
        singleton = run_jobs(matrix, EXPERIMENT_CONFIG, 4)
    finally:
        shutdown_pool()
    assert len(fused) == len(singleton) == len(matrix)
    for cell, a, b in zip(matrix, fused, singleton):
        assert _identity(a) == _identity(b), cell
        assert a.kernel == b.kernel, cell
        assert a.kernel.startswith(("fast", "batch", "segmented")), cell


# ----------------------------------------------------------------------
# Batch replay tier (docs/performance.md, "Batch replay tier")
# ----------------------------------------------------------------------
def test_batch_matches_scalar_and_generic(strided, chain, monkeypatch):
    """Hook-free cells climb to the batch tier; ``REPRO_KERNEL=scalar``
    pins the exec-specialized kernel; all three tiers are bit-identical."""
    for trace in (strided, chain):
        batch = simulate(trace, make_prefetcher("none"))
        monkeypatch.setenv(KERNEL_ENV, SCALAR)
        scalar = simulate(trace, make_prefetcher("none"))
        monkeypatch.setenv(KERNEL_ENV, GENERIC)
        generic = simulate(trace, make_prefetcher("none"))
        monkeypatch.delenv(KERNEL_ENV)
        assert batch.kernel == BATCH_VARIANT, trace.name
        assert scalar.kernel == "fast+leanmem+staticbp"
        assert generic.kernel == GENERIC
        assert _identity(batch) == _identity(scalar), trace.name
        assert _identity(batch) == _identity(generic), trace.name


def test_batch_steps_aside_for_sampler_with_identical_windows(strided,
                                                              monkeypatch):
    """A TimeSeriesSampler is a live hook: the batch tier must yield to
    the scalar kernels, and the sampled windows must match the generic
    loop sample for sample."""
    from repro.telemetry.sampler import TimeSeriesSampler

    fast_sampler = TimeSeriesSampler(interval=256)
    fast = simulate(strided, make_prefetcher("none"),
                    telemetry=Telemetry(sampler=fast_sampler))
    monkeypatch.setenv(KERNEL_ENV, GENERIC)
    slow_sampler = TimeSeriesSampler(interval=256)
    slow = simulate(strided, make_prefetcher("none"),
                    telemetry=Telemetry(sampler=slow_sampler))
    monkeypatch.delenv(KERNEL_ENV)
    assert not fast.kernel.startswith("batch")
    assert "sample" in fast.kernel
    assert _identity(fast) == _identity(slow)
    assert len(fast_sampler.samples) > 0
    assert fast_sampler.samples == slow_sampler.samples


def _compile_program(name, build, max_instructions=50_000):
    asm = Assembler(name=name)
    build(asm)
    asm.halt()
    return compile_trace(Machine(max_instructions=max_instructions)
                         .run(asm.assemble()))


def _all_alu(asm):
    asm.movi("r1", 7)
    for _ in range(40):
        asm.add("r2", "r2", "r1")


def _all_memory(asm):
    asm.movi("r1", 0x40000)
    for i in range(64):
        asm.load("r2", "r1", 8 * i)


def _tiny(asm):
    asm.movi("r1", 0x40000)
    asm.load("r2", "r1", 0)


@pytest.mark.parametrize("case,build", [
    ("alu-only", _all_alu),        # no events at all: one long stretch
    ("mem-only", _all_memory),     # every instruction an event
    ("tiny", _tiny),               # trace shorter than any stretch
])
def test_batch_segment_edge_cases(case, build, monkeypatch):
    """Degenerate segmentations — an event-free trace (empty event
    column), back-to-back events (empty stretches), and a trace shorter
    than one stretch — replay bit-identically on every tier."""
    trace = _compile_program(f"k-seg-{case}", build)
    events = trace.segment_events()
    if case == "alu-only":
        assert len(events) == 0
    elif case == "mem-only":
        assert len(events) == 64  # one per load, none for movi/halt
    batch = simulate(trace, make_prefetcher("none"))
    monkeypatch.setenv(KERNEL_ENV, SCALAR)
    scalar = simulate(trace, make_prefetcher("none"))
    monkeypatch.setenv(KERNEL_ENV, GENERIC)
    generic = simulate(trace, make_prefetcher("none"))
    monkeypatch.delenv(KERNEL_ENV)
    assert batch.kernel == BATCH_VARIANT, case
    assert _identity(batch) == _identity(scalar) == _identity(generic), case


def test_batch_identity_under_chaos_corrupt_and_resume(tmp_path):
    """A chaos-corrupted cache write under the batch tier is a miss on
    re-read; the resumed runner re-simulates once and reproduces the
    reference figures exactly."""
    from repro.experiments.runner import ExperimentRunner, simulate_spec
    from repro.faults import chaos, fault_counters, reset_fault_counters

    app = "spec.libquantum"
    cache = str(tmp_path / "cache")
    journal = str(tmp_path / "journal")
    reference = simulate_spec(app, "none", "", EXPERIMENT_CONFIG)
    assert reference.kernel == BATCH_VARIANT

    reset_fault_counters()
    chaos.set_chaos(chaos.parse_spec(f"corrupt=result:{app}/none"))
    try:
        writer = ExperimentRunner(cache_dir=cache, journal_dir=journal)
        first = writer.run(app, "none")
    finally:
        chaos.set_chaos(None)
    resumed = ExperimentRunner(cache_dir=cache, journal_dir=journal)
    second = resumed.run(app, "none")
    assert _identity(first) == _identity(reference)
    assert _identity(second) == _identity(reference)
    assert resumed.counters["simulated"] == 1  # the bad entry was a miss
    assert fault_counters()["cache_corrupt"] >= 1


# ----------------------------------------------------------------------
# Segmented replay tier (hooked cells; docs/performance.md)
# ----------------------------------------------------------------------
def _event_first(asm):
    asm.load("r2", "r1", 0)          # hook event at position 0
    for _ in range(40):
        asm.add("r3", "r3", "r2")


def _event_burst(asm):
    asm.movi("r1", 0x40000)
    for _ in range(10):
        asm.add("r3", "r3", "r1")
    for i in range(8):               # back-to-back hook events
        asm.load("r2", "r1", 8 * i)
    for _ in range(30):
        asm.add("r3", "r3", "r1")


def _event_last(asm):
    asm.movi("r1", 0x40000)
    for _ in range(40):
        asm.add("r3", "r3", "r1")
    asm.load("r2", "r1", 0)          # hook event on the final load


@pytest.mark.parametrize("spec", ["bop", "tpc"])
@pytest.mark.parametrize("case,build", [
    ("event-first", _event_first),   # island before any stretch
    ("event-burst", _event_burst),   # empty stretches between islands
    ("event-last", _event_last),     # island closes the trace
])
def test_segmented_hook_position_edge_cases(case, build, spec, monkeypatch):
    """Hook islands at the trace boundaries and back-to-back replay
    bit-identically against both escape hatches, with live hooks."""
    trace = _compile_program(f"k-seghook-{case}", build)
    events = trace.segment_events().tolist()
    if case == "event-first":
        assert events[0] == 0
    elif case == "event-burst":
        assert any(b - a == 1 for a, b in zip(events, events[1:]))
    else:
        assert events[-1] == len(trace) - 1
    seg = simulate(trace, make_prefetcher(spec))
    monkeypatch.setenv(KERNEL_ENV, SCALAR)
    scalar = simulate(trace, make_prefetcher(spec))
    monkeypatch.setenv(KERNEL_ENV, GENERIC)
    generic = simulate(trace, make_prefetcher(spec))
    monkeypatch.delenv(KERNEL_ENV)
    assert seg.kernel.startswith("segmented+"), (case, spec)
    assert scalar.kernel.startswith("fast+"), (case, spec)
    assert _identity(seg) == _identity(scalar), (case, spec)
    assert _identity(seg) == _identity(generic), (case, spec)


def test_segmented_all_event_trace_degrades_to_scalar(monkeypatch):
    """A trace whose every instruction is a hook event exceeds the
    coverage ceiling: the cell must degrade to the scalar specialized
    kernel (no segmented attempt), bit-identically."""
    trace = _compile_program("k-seg-dense", _all_memory)
    assert (len(trace.segment_events()) / len(trace)
            > segment_max_coverage())
    fast = simulate(trace, make_prefetcher("bop"))
    monkeypatch.setenv(KERNEL_ENV, GENERIC)
    generic = simulate(trace, make_prefetcher("bop"))
    monkeypatch.delenv(KERNEL_ENV)
    assert fast.kernel.startswith("fast+")
    assert _identity(fast) == _identity(generic)


def test_segmented_identity_under_chaos_corrupt_and_resume(tmp_path):
    """A chaos-corrupted cache write under the segmented tier is a miss
    on re-read; the resumed runner re-simulates once and reproduces the
    reference figures exactly."""
    from repro.experiments.runner import ExperimentRunner, simulate_spec
    from repro.faults import chaos, fault_counters, reset_fault_counters

    app = "spec.libquantum"
    cache = str(tmp_path / "cache")
    journal = str(tmp_path / "journal")
    reference = simulate_spec(app, "bop", "", EXPERIMENT_CONFIG)
    assert reference.kernel.startswith("segmented+")

    reset_fault_counters()
    chaos.set_chaos(chaos.parse_spec(f"corrupt=result:{app}/bop"))
    try:
        writer = ExperimentRunner(cache_dir=cache, journal_dir=journal)
        first = writer.run(app, "bop")
    finally:
        chaos.set_chaos(None)
    resumed = ExperimentRunner(cache_dir=cache, journal_dir=journal)
    second = resumed.run(app, "bop")
    assert _identity(first) == _identity(reference)
    assert _identity(second) == _identity(reference)
    assert resumed.counters["simulated"] == 1  # the bad entry was a miss
    assert fault_counters()["cache_corrupt"] >= 1


# ----------------------------------------------------------------------
# Attribution
# ----------------------------------------------------------------------
def test_manifest_carries_kernel_but_run_id_ignores_it(strided, monkeypatch):
    fast = simulate(strided, make_prefetcher("bop"), spec="bop")
    monkeypatch.setenv(KERNEL_ENV, GENERIC)
    slow = simulate(strided, make_prefetcher("bop"), spec="bop")
    monkeypatch.delenv(KERNEL_ENV)
    assert fast.manifest.kernel == fast.kernel != GENERIC
    assert slow.manifest.kernel == GENERIC
    # Bit-identical by contract, so both land in the same run directory.
    assert fast.manifest.run_id == slow.manifest.run_id
    assert fast.manifest.as_dict()["kernel"] == fast.kernel


def test_parallel_phases_reads_both_schemas():
    """The parallel phase breakdown is serialized once (parallel.phases);
    the reader must still understand pre-dedupe logs (phases.parallel)."""
    from repro.bench import parallel_phases

    current = {"parallel": {"phases": {"simulate_seconds": 1.0}},
               "phases": {"trace_build_seconds": 2.0}}
    old = {"parallel": {"jobs": 4},
           "phases": {"parallel": {"simulate_seconds": 3.0}}}
    assert parallel_phases(current) == {"simulate_seconds": 1.0}
    assert parallel_phases(old) == {"simulate_seconds": 3.0}
    assert parallel_phases({}) == {}


def test_journal_records_kernel(tmp_path):
    from repro.faults.journal import MatrixJournal

    journal = MatrixJournal(tmp_path, "cfgdigest", code_version="v-test")
    journal.record_ok("spec.astar", "bop", "", seconds=1.0,
                      kernel="fast+issue+fill+leanmem+staticbp")
    records = [json.loads(line)
               for line in journal.path.read_text().splitlines()]
    assert records[-1]["kernel"] == "fast+issue+fill+leanmem+staticbp"


def test_events_verb_reads_journal_with_kernel(tmp_path):
    """``repro events`` on a journal file attributes cells to kernels."""
    from repro.faults.journal import MatrixJournal
    from repro.telemetry import (filter_events, normalize_record,
                                 read_jsonl, summarize)

    journal = MatrixJournal(tmp_path, "cfgdigest", code_version="v-test")
    journal.record_ok("spec.mcf", "tpc", "", attempts=2, seconds=2.5,
                      kernel="fast+instr+observe+issue+leanmem+staticbp")
    events = [normalize_record(r) for r in read_jsonl(journal.path)]
    assert events[0]["kind"] == "cell_ok"
    assert events[0]["component"] == "tpc"
    assert events[0]["level"] == 2
    assert events[0]["dur"] == 2.5
    assert list(filter_events(events, kind="cell_ok")) == events
    summary = summarize(events)
    assert summary["by_kernel"] == {
        "fast+instr+observe+issue+leanmem+staticbp": 1}
    # Lifecycle records pass through normalization untouched, and their
    # summaries stay kernel-free.
    lifecycle = {"kind": "issued", "cycle": 7, "line": 1, "component": "T2",
                 "level": 1, "pc": 4, "dur": 0}
    assert normalize_record(lifecycle) is lifecycle
    assert "by_kernel" not in summarize([lifecycle])
