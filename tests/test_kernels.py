"""Specialized replay kernels (docs/performance.md, "Replay kernels").

The contract under test is bit-identity: a specialized kernel is a
partial evaluation of the generic step loop, so it may change wall
clock but never a number.  These tests pin that registry-wide against
the ``REPRO_KERNEL=generic`` escape hatch, pin workload-affine cell
fusion against its own escape hatch (``REPRO_FUSION=0``) at ``--jobs
4``, check the derived trace columns against fresh derivation, and
follow the kernel-variant attribution through results, manifests, and
the fault journal.
"""

from __future__ import annotations

import json

import pytest

from conftest import build_chain_trace, build_strided_trace
from repro.engine.config import EXPERIMENT_CONFIG
from repro.engine.kernel import GENERIC, KERNEL_ENV, kernel_flags, variant_name
from repro.engine.system import simulate
from repro.isa.trace import (
    DERIVED_FIELDS,
    LINE_SHIFT,
    CompiledTrace,
    compile_trace,
    derived_counters,
)
from repro.parallel import FUSION_ENV, _fusion_units, run_jobs, shutdown_pool
from repro.prefetcher_registry import available_prefetchers, make_prefetcher
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def strided():
    return compile_trace(build_strided_trace(elements=1500, name="k-strided"))


@pytest.fixture(scope="module")
def chain():
    return compile_trace(build_chain_trace(nodes=1200, name="k-chain"))


def _identity(result) -> tuple:
    """Everything a simulation reports, for exact comparison."""
    return (
        result.core,
        result.l1d,
        result.l2,
        result.l3,
        result.dram,
        result.prefetch,
        result.miss_lines_l1,
        result.miss_lines_l2,
        result.attempted_prefetch_lines,
        result.attempted_by_component,
        result.pollution_misses_l1,
        result.pollution_misses_l2,
    )


# ----------------------------------------------------------------------
# Registry-wide bit identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", available_prefetchers())
def test_specialized_matches_generic_registry_wide(name, strided, chain,
                                                   monkeypatch):
    for trace in (strided, chain):
        fast = simulate(trace, make_prefetcher(name))
        monkeypatch.setenv(KERNEL_ENV, GENERIC)
        slow = simulate(trace, make_prefetcher(name))
        monkeypatch.delenv(KERNEL_ENV)
        assert fast.kernel.startswith("fast"), name
        assert slow.kernel == GENERIC
        assert _identity(fast) == _identity(slow), (name, trace.name)


def test_specialized_matches_generic_with_telemetry(strided, monkeypatch):
    """Telemetry disables the lean memory path but not specialization."""
    fast = simulate(strided, make_prefetcher("tpc"), telemetry=Telemetry())
    monkeypatch.setenv(KERNEL_ENV, GENERIC)
    slow = simulate(strided, make_prefetcher("tpc"), telemetry=Telemetry())
    monkeypatch.delenv(KERNEL_ENV)
    assert fast.kernel.startswith("fast")
    assert "leanmem" not in fast.kernel
    assert _identity(fast) == _identity(slow)


def test_lean_flag_set_without_telemetry(strided):
    result = simulate(strided, make_prefetcher("none"))
    assert "leanmem" in result.kernel


# ----------------------------------------------------------------------
# Kernel selection and the escape hatch
# ----------------------------------------------------------------------
def test_object_trace_falls_back_to_generic():
    trace = build_strided_trace(elements=300, name="k-object")
    result = simulate(trace)
    assert result.kernel == GENERIC


def test_env_escape_hatch_disables_specialization(strided, monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, GENERIC)
    result = simulate(strided)
    assert result.kernel == GENERIC


def test_kernel_flags_none_under_escape_hatch(strided, monkeypatch):
    class _Probe:
        trace = strided
        _observe_instruction = None
        _observe_access = None
        _on_access = None
        _on_fill = None
        _sampler = None
        _branch_predictor = object()

        class hierarchy:
            tracker = None
            telemetry = None

    assert kernel_flags(_Probe()) is not None
    monkeypatch.setenv(KERNEL_ENV, GENERIC)
    assert kernel_flags(_Probe()) is None


def test_variant_name_encodes_flags():
    assert variant_name((False,) * 5 + (True, False)) == "fast+staticbp"
    name = variant_name((True, True, True, True, True, False, True))
    assert name == "fast+instr+observe+issue+fill+sample+leanmem+dynbp"


# ----------------------------------------------------------------------
# Derived columns
# ----------------------------------------------------------------------
def test_derived_columns_match_primary_columns(strided):
    line, mpc, disp, bp_miss = strided.derived_columns()
    assert list(line) == [a >> LINE_SHIFT for a in strided.addr]
    assert list(mpc) == [p ^ r for p, r in zip(strided.pc, strided.ras_top)]
    assert len(disp) == len(bp_miss) == len(strided)


def test_derived_columns_round_trip(chain):
    original = chain.derived_columns()
    blobs = chain.column_bytes()
    derived = chain.derived_bytes()
    before = derived_counters()

    restored = CompiledTrace.from_column_bytes(chain.name, blobs,
                                               chain.memory, derived=derived)
    after = derived_counters()
    assert after["derived_hits"] == before["derived_hits"] + 1
    # Restored from the cache blobs: no derivation pass happened, yet the
    # columns are exactly what a fresh derivation produces.
    assert restored._derived is not None
    assert restored.derived_columns() == original
    assert after["derived_builds"] == derived_counters()["derived_builds"]

    rebuilt = CompiledTrace.from_column_bytes(chain.name, blobs, chain.memory)
    assert rebuilt._derived is None
    assert rebuilt.derived_columns() == original
    assert set(DERIVED_FIELDS) == set(derived)


# ----------------------------------------------------------------------
# Workload-affine cell fusion
# ----------------------------------------------------------------------
def test_fusion_units_group_by_workload(monkeypatch):
    normalized = [("a", "s1", ""), ("b", "s1", ""), ("a", "s2", ""),
                  ("b", "s2", "")]
    units = _fusion_units([0, 1, 2, 3], normalized, 1)
    assert units == [(0, 2), (1, 3)]
    monkeypatch.setenv(FUSION_ENV, "0")
    assert _fusion_units([0, 1, 2, 3], normalized, 1) == [
        (0,), (1,), (2,), (3,)]


def test_fusion_identity_at_jobs_4(monkeypatch):
    matrix = [(w, s) for w in ("spec.libquantum", "spec.astar")
              for s in ("none", "bop")]
    try:
        fused = run_jobs(matrix, EXPERIMENT_CONFIG, 4)
        shutdown_pool()
        monkeypatch.setenv(FUSION_ENV, "0")
        singleton = run_jobs(matrix, EXPERIMENT_CONFIG, 4)
    finally:
        shutdown_pool()
    assert len(fused) == len(singleton) == len(matrix)
    for cell, a, b in zip(matrix, fused, singleton):
        assert _identity(a) == _identity(b), cell
        assert a.kernel == b.kernel and a.kernel.startswith("fast"), cell


# ----------------------------------------------------------------------
# Attribution
# ----------------------------------------------------------------------
def test_manifest_carries_kernel_but_run_id_ignores_it(strided, monkeypatch):
    fast = simulate(strided, make_prefetcher("bop"), spec="bop")
    monkeypatch.setenv(KERNEL_ENV, GENERIC)
    slow = simulate(strided, make_prefetcher("bop"), spec="bop")
    monkeypatch.delenv(KERNEL_ENV)
    assert fast.manifest.kernel == fast.kernel != GENERIC
    assert slow.manifest.kernel == GENERIC
    # Bit-identical by contract, so both land in the same run directory.
    assert fast.manifest.run_id == slow.manifest.run_id
    assert fast.manifest.as_dict()["kernel"] == fast.kernel


def test_parallel_phases_reads_both_schemas():
    """The parallel phase breakdown is serialized once (parallel.phases);
    the reader must still understand pre-dedupe logs (phases.parallel)."""
    from repro.bench import parallel_phases

    current = {"parallel": {"phases": {"simulate_seconds": 1.0}},
               "phases": {"trace_build_seconds": 2.0}}
    old = {"parallel": {"jobs": 4},
           "phases": {"parallel": {"simulate_seconds": 3.0}}}
    assert parallel_phases(current) == {"simulate_seconds": 1.0}
    assert parallel_phases(old) == {"simulate_seconds": 3.0}
    assert parallel_phases({}) == {}


def test_journal_records_kernel(tmp_path):
    from repro.faults.journal import MatrixJournal

    journal = MatrixJournal(tmp_path, "cfgdigest", code_version="v-test")
    journal.record_ok("spec.astar", "bop", "", seconds=1.0,
                      kernel="fast+issue+fill+leanmem+staticbp")
    records = [json.loads(line)
               for line in journal.path.read_text().splitlines()]
    assert records[-1]["kernel"] == "fast+issue+fill+leanmem+staticbp"


def test_events_verb_reads_journal_with_kernel(tmp_path):
    """``repro events`` on a journal file attributes cells to kernels."""
    from repro.faults.journal import MatrixJournal
    from repro.telemetry import (filter_events, normalize_record,
                                 read_jsonl, summarize)

    journal = MatrixJournal(tmp_path, "cfgdigest", code_version="v-test")
    journal.record_ok("spec.mcf", "tpc", "", attempts=2, seconds=2.5,
                      kernel="fast+instr+observe+issue+leanmem+staticbp")
    events = [normalize_record(r) for r in read_jsonl(journal.path)]
    assert events[0]["kind"] == "cell_ok"
    assert events[0]["component"] == "tpc"
    assert events[0]["level"] == 2
    assert events[0]["dur"] == 2.5
    assert list(filter_events(events, kind="cell_ok")) == events
    summary = summarize(events)
    assert summary["by_kernel"] == {
        "fast+instr+observe+issue+leanmem+staticbp": 1}
    # Lifecycle records pass through normalization untouched, and their
    # summaries stay kernel-free.
    lifecycle = {"kind": "issued", "cycle": 7, "line": 1, "component": "T2",
                 "level": 1, "pc": 4, "dur": 0}
    assert normalize_record(lifecycle) is lifecycle
    assert "by_kernel" not in summarize([lifecycle])
