"""Smoke tests: every example script imports and its main() runs on a
reduced scale (monkeypatched where the full scale would be slow)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesImport:
    @pytest.mark.parametrize("name", [
        "quickstart",
        "graph_analytics",
        "pointer_chasing",
        "custom_component",
        "multicore_mix",
        "render_figures",
    ])
    def test_importable(self, name):
        module = load_example(name)
        assert hasattr(module, "main")


class TestExampleLogicSmallScale:
    def test_custom_component_prefetcher_behaves(self):
        module = load_example("custom_component")
        from conftest import make_event

        prefetcher = module.ReverseSweepPrefetcher(degree=2)
        requests = None
        for i in range(5):
            requests = prefetcher.on_access(
                make_event(addr=(100 - i) * 64, hit=False)
            )
        assert requests
        assert all(r.line < 96 for r in requests)

    def test_custom_component_workload_builds(self):
        module = load_example("custom_component")
        trace = module.reverse_sweep_workload()
        assert len(trace) > 1000

    def test_quickstart_main_runs(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "tpc" in out and "speedup" in out

    def test_pointer_chasing_build_helper(self):
        module = load_example("pointer_chasing")
        from repro.workloads import builders

        trace = module.build(
            "tiny",
            lambda asm, alloc: builders.linked_list(asm, alloc, nodes=200),
        )
        assert trace.stats().loads == 400
