"""Integration tests asserting the paper's qualitative result *shapes* on
small workload subsets (the full sweeps live in benchmarks/)."""

import pytest

from repro.analysis.metrics import (
    effective_accuracy,
    scope,
    traffic_overhead,
)
from repro.experiments.runner import ExperimentRunner

APPS = [
    "spec.libquantum",   # streaming (LHF)
    "spec.mcf",          # pointer chasing (HHF)
    "spec.h264ref",      # dense regions (MHF)
    "spec.omnetpp",      # array of pointers
]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestHeadlineShapes:
    def test_tpc_speeds_up_every_pattern_app(self, runner):
        for app in APPS:
            baseline = runner.baseline(app)
            tpc = runner.run(app, "tpc")
            assert tpc.cycles <= baseline.cycles * 1.01, app

    def test_tpc_beats_bop_on_average(self, runner):
        from repro.analysis.metrics import geometric_mean
        tpc = geometric_mean([
            runner.baseline(a).cycles / runner.run(a, "tpc").cycles
            for a in APPS
        ])
        bop = geometric_mean([
            runner.baseline(a).cycles / runner.run(a, "bop").cycles
            for a in APPS
        ])
        assert tpc > bop

    def test_tpc_traffic_overhead_small(self, runner):
        for app in APPS:
            baseline = runner.baseline(app)
            tpc = runner.run(app, "tpc")
            assert traffic_overhead(tpc, baseline) < 1.15, app

    def test_tpc_accuracy_high_on_streaming(self, runner):
        app = "spec.libquantum"
        result = runner.run(app, "tpc")
        baseline = runner.baseline(app)
        assert effective_accuracy(result, baseline) > 0.8

    def test_t2_dominates_on_streaming(self, runner):
        app = "spec.libquantum"
        baseline = runner.baseline(app)
        t2 = runner.run(app, "t2")
        stride = runner.run(app, "stride")
        assert t2.cycles <= stride.cycles

    def test_component_division_of_labor(self, runner):
        """On the region app, C1 issues the bulk to L2; on the streaming
        app, T2 issues everything to L1."""
        region = runner.run("spec.h264ref", "tpc")
        assert region.prefetch.by_component.get("C1", 0) > 0
        streaming = runner.run("spec.libquantum", "tpc")
        components = streaming.prefetch.by_component
        assert components.get("T2", 0) > 0
        assert components.get("T2", 0) > components.get("C1", 0)

    def test_tpc_scope_smaller_than_sms_accuracy_higher(self, runner):
        """The paper's core tradeoff: TPC trades scope for accuracy."""
        from repro.analysis.metrics import weighted_average
        sms_points, tpc_points = [], []
        for app in APPS:
            baseline = runner.baseline(app)
            weight = baseline.l1_mpki
            sms = runner.run(app, "sms")
            tpc = runner.run(app, "tpc")
            sms_points.append((scope(sms, baseline),
                               effective_accuracy(sms, baseline), weight))
            tpc_points.append((scope(tpc, baseline),
                               effective_accuracy(tpc, baseline), weight))
        sms_accuracy = weighted_average((a, w) for _, a, w in sms_points)
        tpc_accuracy = weighted_average((a, w) for _, a, w in tpc_points)
        assert tpc_accuracy > sms_accuracy


class TestMulticoreShape:
    def test_tpc_helps_in_shared_environment(self):
        from repro.engine.multicore import simulate_multicore
        from repro.prefetcher_registry import make_prefetcher
        from repro.workloads import get_workload

        traces = [get_workload(a).trace() for a in APPS]
        without = simulate_multicore(traces)
        with_tpc = simulate_multicore(
            traces, [make_prefetcher("tpc") for _ in APPS]
        )
        gains = [
            a.ipc / b.ipc
            for a, b in zip(with_tpc.per_core, without.per_core)
        ]
        assert sum(gains) / len(gains) > 1.05


class TestExperimentRunner:
    def test_caching(self, runner):
        before = runner.cache_size()
        runner.run("spec.libquantum", "tpc")
        mid = runner.cache_size()
        runner.run("spec.libquantum", "tpc")
        assert runner.cache_size() == mid >= before

    def test_tracked_runs_not_cached(self, runner):
        from repro.analysis.credit import CreditTracker
        tracker_a = CreditTracker()
        tracker_b = CreditTracker()
        runner.run_tracked("spec.libquantum", "t2", tracker_a)
        runner.run_tracked("spec.libquantum", "t2", tracker_b)
        assert tracker_a.bucket().issued == tracker_b.bucket().issued > 0

    def test_factory_spec_with_cache_key(self, runner):
        from repro.core.composite import make_tpc

        def factory():
            return make_tpc(components="t")

        factory.cache_key = "tpc:t"
        result = runner.run("spec.libquantum", factory)
        assert result.prefetch.issued > 0
