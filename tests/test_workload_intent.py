"""Ground-truth cross-checks: each suite workload exhibits the access
pattern its family is supposed to (validated through the offline
classifier, the same lens Fig. 13 uses)."""

import pytest

from repro.analysis.classify import Category, OfflineClassifier
from repro.workloads import get_workload

_classifiers = {}


def classify(name):
    if name not in _classifiers:
        trace = get_workload(name).trace()
        classifier = OfflineClassifier(trace)
        counts = classifier.category_counts(trace.memory_footprint())
        total = sum(counts.values()) or 1
        _classifiers[name] = (
            classifier,
            {c: counts[c] / total for c in Category},
        )
    return _classifiers[name]


class TestStreamingWorkloads:
    @pytest.mark.parametrize("name", [
        "spec.libquantum", "spec.milc", "spec.lbm", "spec.bwaves",
        "npb.mg", "starbench.rgbyuv",
    ])
    def test_mostly_lhf(self, name):
        _, fractions = classify(name)
        assert fractions[Category.LHF] > 0.8, (name, fractions)


class TestPointerWorkloads:
    @pytest.mark.parametrize("name", [
        "spec.mcf", "spec.sjeng", "npb.is",
    ])
    def test_substantial_hhf(self, name):
        _, fractions = classify(name)
        assert fractions[Category.HHF] > 0.3, (name, fractions)


class TestRegionWorkloads:
    @pytest.mark.parametrize("name", [
        "spec.h264ref", "starbench.rotate",
    ])
    def test_substantial_spatial_locality(self, name):
        # Region sweeps are strided *within* regions, so the classifier
        # may label them LHF or MHF — but not HHF.
        _, fractions = classify(name)
        assert fractions[Category.HHF] < 0.3, (name, fractions)


class TestGraphWorkloads:
    @pytest.mark.parametrize("name", [
        "crono.bfs_google", "crono.sssp_twitter",
    ])
    def test_mixed_pattern(self, name):
        """Graph traversals are the paper's mixed case: a strided
        offsets walk plus irregular gathers — neither category should
        take everything."""
        _, fractions = classify(name)
        assert fractions[Category.LHF] < 0.95, (name, fractions)
        assert fractions[Category.LHF] + fractions[Category.MHF] > 0.05

    def test_road_network_more_local_than_social(self):
        _, road = classify("crono.cc_california")
        _, social = classify("crono.sssp_twitter")
        assert road[Category.HHF] <= social[Category.HHF] + 0.05


class TestComputeWorkloads:
    @pytest.mark.parametrize("name", ["npb.ep", "starbench.md5",
                                      "spec.gamess"])
    def test_small_footprint(self, name):
        trace = get_workload(name).trace()
        footprint_kb = len(trace.memory_footprint()) * 64 / 1024
        assert footprint_kb < 64, (name, footprint_kb)


class TestStridedPcDetection:
    def test_strided_pcs_found_in_stream_apps(self):
        classifier, _ = classify("spec.libquantum")
        assert classifier.strided_pcs

    def test_chain_load_not_strided(self):
        classifier, _ = classify("spec.mcf")
        trace = get_workload("spec.mcf").trace()
        # The pointer loads dominate; most load PCs must be non-strided.
        load_pcs = {r.pc for r in trace.records if r.is_load}
        strided = load_pcs & classifier.strided_pcs
        assert len(strided) < len(load_pcs)
