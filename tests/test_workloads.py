"""Tests for the workload builders, suites, graphs, and mixes."""

import pytest

from repro.isa import Assembler, Machine
from repro.isa.instructions import OpClass
from repro.workloads import all_suites, get_suite, get_workload
from repro.workloads import builders, graphs
from repro.workloads.builders import Allocator
from repro.workloads.mixes import MIX_WIDTH, mix_names, mix_workloads
from repro.workloads.registry import Workload


def run_kernel(emit, max_instructions=100_000):
    asm = Assembler()
    alloc = Allocator()
    emit(asm, alloc)
    asm.halt()
    return Machine(max_instructions=max_instructions).run(asm.assemble())


class TestAllocator:
    def test_non_overlapping(self):
        alloc = Allocator()
        a = alloc.alloc(100)
        b = alloc.alloc(100)
        assert b >= a + 100

    def test_alignment(self):
        alloc = Allocator(align=4096)
        alloc.alloc(1)
        assert alloc.alloc(1) % 4096 == 0


class TestBuilders:
    def test_strided_loop_addresses(self):
        trace = run_kernel(lambda asm, alloc: builders.strided_loop(
            asm, alloc, elements=100, stride=8))
        loads = [r.addr for r in trace.records if r.opc == OpClass.LOAD]
        assert len(loads) == 100
        deltas = {b - a for a, b in zip(loads, loads[1:])}
        assert deltas == {8}

    def test_strided_loop_passes(self):
        trace = run_kernel(lambda asm, alloc: builders.strided_loop(
            asm, alloc, elements=50, passes=3))
        loads = [r for r in trace.records if r.opc == OpClass.LOAD]
        assert len(loads) == 150

    def test_multi_stream_counts(self):
        trace = run_kernel(lambda asm, alloc: builders.multi_stream(
            asm, alloc, elements=100, streams=3))
        stats = trace.stats()
        assert stats.loads == 200      # streams-1 loads
        assert stats.stores == 100     # last stream stored

    def test_multi_stream_bounds(self):
        with pytest.raises(ValueError):
            run_kernel(lambda asm, alloc: builders.multi_stream(
                asm, alloc, elements=10, streams=7))

    def test_stencil_rows_streams_one_row_apart(self):
        trace = run_kernel(lambda asm, alloc: builders.stencil_rows(
            asm, alloc, rows=4, cols=32))
        stats = trace.stats()
        assert stats.loads == 3 * 4 * 32
        assert stats.stores == 4 * 32

    def test_linked_list_terminates(self):
        trace = run_kernel(lambda asm, alloc: builders.linked_list(
            asm, alloc, nodes=500))
        loads = [r for r in trace.records if r.opc == OpClass.LOAD]
        assert len(loads) == 2 * 500   # payload + next per node

    def test_linked_list_layouts_differ(self):
        sequential = run_kernel(lambda asm, alloc: builders.linked_list(
            asm, alloc, nodes=200, layout="sequential"))
        scattered = run_kernel(lambda asm, alloc: builders.linked_list(
            asm, alloc, nodes=200, layout="scattered"))
        # Next-pointer loads carry address-like values; payload loads
        # carry small counters.
        seq_next = [r.value for r in sequential.records
                    if r.opc == OpClass.LOAD and r.value >= 0x100000]
        sca_next = [r.value for r in scattered.records
                    if r.opc == OpClass.LOAD and r.value >= 0x100000]
        seq_sorted = all(a < b for a, b in zip(seq_next, seq_next[1:]))
        sca_sorted = all(a < b for a, b in zip(sca_next, sca_next[1:]))
        assert seq_sorted and not sca_sorted

    def test_linked_list_bad_layout(self):
        with pytest.raises(ValueError):
            run_kernel(lambda asm, alloc: builders.linked_list(
                asm, alloc, nodes=10, layout="bogus"))

    def test_array_of_pointers_dependence(self):
        trace = run_kernel(lambda asm, alloc: builders.array_of_pointers(
            asm, alloc, count=100, field_offset=16))
        loads = [r for r in trace.records if r.opc == OpClass.LOAD]
        # Alternating pointer load / field load; field addr = ptr value+16.
        for pointer, field in zip(loads[::2], loads[1::2]):
            assert field.addr == pointer.value + 16

    def test_region_sweep_covers_regions(self):
        trace = run_kernel(lambda asm, alloc: builders.region_sweep(
            asm, alloc, regions=10, region_bytes=1024, step=64))
        loads = [r for r in trace.records if r.opc == OpClass.LOAD]
        # 1 index load + 16 sweeps per region
        assert len(loads) == 10 * 17

    def test_random_gather_stays_in_table(self):
        trace = run_kernel(lambda asm, alloc: builders.random_gather(
            asm, alloc, lookups=50, table_bytes=4096))
        gathers = [r for r in trace.records
                   if r.opc == OpClass.LOAD][1::2]
        span = max(r.addr for r in gathers) - min(r.addr for r in gathers)
        assert span < 4096 + 64

    def test_index_gather_locality_window(self):
        trace = run_kernel(lambda asm, alloc: builders.index_gather(
            asm, alloc, elements=200, table_elements=10000,
            locality_window=4))
        gathers = [r for r in trace.records if r.opc == OpClass.LOAD][1::2]
        addrs = [r.addr for r in gathers]
        # Window-local indices advance roughly monotonically.
        assert addrs[-1] > addrs[0]

    def test_csr_traversal_runs(self):
        offsets, neighbors = graphs.road_graph(side=6)
        trace = run_kernel(lambda asm, alloc: builders.csr_traversal(
            asm, alloc, offsets=offsets, neighbors=neighbors))
        stats = trace.stats()
        # 2 offset loads per node + 2 loads per edge endpoint.
        assert stats.loads >= 2 * (len(offsets) - 1)


class TestGraphs:
    def test_csr_shape(self):
        offsets, neighbors = graphs.web_graph(nodes=100, edges_per_node=3)
        assert offsets[0] == 0
        assert offsets[-1] == len(neighbors)
        assert all(a <= b for a, b in zip(offsets, offsets[1:]))
        assert all(0 <= n < 100 for n in neighbors)

    def test_road_graph_grid(self):
        offsets, neighbors = graphs.road_graph(side=5)
        assert len(offsets) == 26
        degrees = [b - a for a, b in zip(offsets, offsets[1:])]
        assert max(degrees) <= 4

    def test_deterministic(self):
        a = graphs.social_graph(nodes=50, edges_per_node=4, seed=1)
        b = graphs.social_graph(nodes=50, edges_per_node=4, seed=1)
        assert a == b


class TestRegistry:
    def test_all_suites_present(self):
        suites = all_suites()
        static = {"spec", "crono", "starbench", "npb", "stress"}
        # The fuzz suite registers per-seed on demand, so it appears
        # exactly when an earlier test (or a repro fuzz run in-process)
        # has built a fuzzed workload.
        assert static <= set(suites) <= static | {"fuzz"}
        assert len(suites["spec"]) >= 20

    def test_lookup_by_name(self):
        workload = get_workload("spec.mcf")
        assert workload.suite == "spec"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_workload("spec.nonexistent")

    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError):
            get_suite("parsec")

    def test_trace_cached(self):
        workload = get_workload("npb.ep")
        assert workload.trace() is workload.trace()

    def test_traces_within_simpoint(self):
        for name in ["spec.libquantum", "crono.bfs_google"]:
            workload = get_workload(name)
            assert len(workload.trace()) <= workload.simpoint

    def test_duplicate_registration_rejected(self):
        from repro.workloads.registry import register
        workload = get_workload("npb.ep")
        with pytest.raises(ValueError):
            register(Workload(name="npb.ep", suite="npb",
                              build=workload.build))

    def test_every_workload_has_memory_traffic(self):
        # Each registered workload must actually exercise the memory
        # system (a prefetching study needs memory accesses).  The fuzz
        # suite is exempt: its degenerate seeds (empty/single-op traces)
        # exist precisely to stress the no-traffic edge cases.
        for suite, workloads in all_suites().items():
            if suite == "fuzz":
                continue
            for workload in workloads:
                stats = workload.trace().stats()
                assert stats.loads > 1000, workload.name


class TestMixes:
    def test_mix_shape(self):
        mixes = mix_names(count=5)
        assert len(mixes) == 5
        assert all(len(m) == MIX_WIDTH for m in mixes)
        assert all(len(set(m)) == MIX_WIDTH for m in mixes)

    def test_mixes_deterministic(self):
        assert mix_names(count=3) == mix_names(count=3)

    def test_mix_workloads_resolve(self):
        for mix in mix_workloads(count=2):
            assert all(w.trace() for w in mix)
