"""Unit tests for the micro-ISA functional machine."""

import pytest

from repro.isa import Assembler, Machine, MachineError, OpClass
from repro.isa.program import AssemblyError


def run(asm: Assembler, **kwargs):
    machine = Machine(**kwargs)
    return machine.run(asm.assemble())


class TestArithmetic:
    def test_movi_and_add(self):
        asm = Assembler()
        asm.movi("r1", 5)
        asm.movi("r2", 7)
        asm.add("r3", "r1", "r2")
        asm.store("r3", "r0", 0x100)
        asm.halt()
        trace = run(asm)
        assert trace.memory[0x100] == 12

    def test_sub_mul(self):
        asm = Assembler()
        asm.movi("r1", 10)
        asm.movi("r2", 3)
        asm.sub("r3", "r1", "r2")
        asm.mul("r4", "r3", "r2")
        asm.store("r4", "r0", 0x100)
        asm.halt()
        trace = run(asm)
        assert trace.memory[0x100] == 21

    def test_signed_wraparound(self):
        asm = Assembler()
        asm.movi("r1", (1 << 63) - 1)
        asm.addi("r1", "r1", 1)
        asm.store("r1", "r0", 0x100)
        asm.halt()
        trace = run(asm)
        assert trace.memory[0x100] == -(1 << 63)

    def test_shifts_and_logic(self):
        asm = Assembler()
        asm.movi("r1", 0b1100)
        asm.shli("r2", "r1", 2)
        asm.shri("r3", "r1", 2)
        asm.andi("r4", "r1", 0b0100)
        asm.store("r2", "r0", 0x100)
        asm.store("r3", "r0", 0x108)
        asm.store("r4", "r0", 0x110)
        asm.halt()
        trace = run(asm)
        assert trace.memory[0x100] == 0b110000
        assert trace.memory[0x108] == 0b11
        assert trace.memory[0x110] == 0b0100

    def test_xor_mov(self):
        asm = Assembler()
        asm.movi("r1", 0xFF)
        asm.movi("r2", 0x0F)
        asm.xor("r3", "r1", "r2")
        asm.mov("r4", "r3")
        asm.store("r4", "r0", 0x100)
        asm.halt()
        trace = run(asm)
        assert trace.memory[0x100] == 0xF0


class TestMemory:
    def test_load_returns_initialized_data(self):
        asm = Assembler()
        asm.data(0x200, [11, 22, 33])
        asm.movi("r1", 0x200)
        asm.load("r2", "r1", 8)
        asm.store("r2", "r0", 0x100)
        asm.halt()
        trace = run(asm)
        assert trace.memory[0x100] == 22

    def test_uninitialized_load_is_zero(self):
        asm = Assembler()
        asm.movi("r1", 0x9000)
        asm.load("r2", "r1", 0)
        asm.store("r2", "r0", 0x100)
        asm.halt()
        trace = run(asm)
        assert trace.memory[0x100] == 0

    def test_load_records_value_and_address(self):
        asm = Assembler()
        asm.data(0x300, 42)
        asm.movi("r1", 0x300)
        asm.load("r2", "r1", 0)
        asm.halt()
        trace = run(asm)
        loads = [r for r in trace.records if r.is_load]
        assert len(loads) == 1
        assert loads[0].addr == 0x300
        assert loads[0].value == 42

    def test_negative_address_raises(self):
        asm = Assembler()
        asm.movi("r1", -8)
        asm.load("r2", "r1", 0)
        asm.halt()
        with pytest.raises(MachineError):
            run(asm)

    def test_data_misaligned_rejected(self):
        asm = Assembler()
        with pytest.raises(AssemblyError):
            asm.data(0x101, 5)


class TestControlFlow:
    def test_counted_loop(self):
        asm = Assembler()
        asm.movi("r1", 0)     # i
        asm.movi("r2", 10)    # n
        asm.movi("r3", 0)     # sum
        loop = asm.label("loop")
        asm.add("r3", "r3", "r1")
        asm.addi("r1", "r1", 1)
        asm.blt("r1", "r2", loop)
        asm.store("r3", "r0", 0x100)
        asm.halt()
        trace = run(asm)
        assert trace.memory[0x100] == 45

    def test_backward_branch_recorded(self):
        asm = Assembler()
        asm.movi("r1", 0)
        asm.movi("r2", 3)
        loop = asm.label()
        asm.addi("r1", "r1", 1)
        asm.blt("r1", "r2", loop)
        asm.halt()
        trace = run(asm)
        backward = [r for r in trace.records if r.is_backward_branch]
        assert len(backward) == 2  # taken twice, falls through once

    def test_forward_branch(self):
        asm = Assembler()
        skip = asm.future_label("skip")
        asm.movi("r1", 1)
        asm.movi("r2", 1)
        asm.beq("r1", "r2", skip)
        asm.movi("r3", 99)  # skipped
        asm.place(skip)
        asm.store("r3", "r0", 0x100)
        asm.halt()
        trace = run(asm)
        assert trace.memory[0x100] == 0

    def test_jmp(self):
        asm = Assembler()
        end = asm.future_label("end")
        asm.jmp(end)
        asm.movi("r1", 99)
        asm.place(end)
        asm.store("r1", "r0", 0x100)
        asm.halt()
        trace = run(asm)
        assert trace.memory[0x100] == 0

    def test_unplaced_label_raises(self):
        asm = Assembler()
        ghost = asm.future_label("ghost")
        asm.jmp(ghost)
        asm.halt()
        with pytest.raises(AssemblyError):
            asm.assemble()

    def test_duplicate_label_raises(self):
        asm = Assembler()
        asm.label("dup")
        with pytest.raises(AssemblyError):
            asm.label("dup")


class TestCallReturn:
    def test_call_ret_roundtrip(self):
        asm = Assembler()
        func = asm.future_label("func")
        done = asm.future_label("done")
        asm.movi("r1", 5)
        asm.call(func)
        asm.store("r2", "r0", 0x100)
        asm.jmp(done)
        asm.place(func)
        asm.muli("r2", "r1", 2)
        asm.ret()
        asm.place(done)
        asm.halt()
        trace = run(asm)
        assert trace.memory[0x100] == 10

    def test_ras_top_recorded_inside_call(self):
        asm = Assembler()
        func = asm.future_label("func")
        asm.call(func)
        asm.halt()
        asm.place(func)
        asm.movi("r1", 1)
        asm.ret()
        trace = run(asm)
        inside = [r for r in trace.records if r.opc == OpClass.ALU]
        assert len(inside) == 1
        assert inside[0].ras_top != 0  # return PC pushed by the call

    def test_ret_without_call_raises(self):
        asm = Assembler()
        asm.ret()
        with pytest.raises(MachineError):
            run(asm)

    def test_nested_calls(self):
        asm = Assembler()
        outer = asm.future_label("outer")
        inner = asm.future_label("inner")
        asm.call(outer)
        asm.store("r1", "r0", 0x100)
        asm.halt()
        asm.place(outer)
        asm.call(inner)
        asm.addi("r1", "r1", 1)
        asm.ret()
        asm.place(inner)
        asm.movi("r1", 10)
        asm.ret()
        trace = run(asm)
        assert trace.memory[0x100] == 11


class TestLimitsAndStats:
    def test_truncation_at_limit(self):
        asm = Assembler()
        loop = asm.label()
        asm.addi("r1", "r1", 1)
        asm.jmp(loop)
        trace = run(asm, max_instructions=100, truncate=True)
        assert len(trace) == 100

    def test_no_truncate_raises(self):
        asm = Assembler()
        loop = asm.label()
        asm.addi("r1", "r1", 1)
        asm.jmp(loop)
        with pytest.raises(MachineError):
            run(asm, max_instructions=100, truncate=False)

    def test_empty_program_raises(self):
        asm = Assembler()
        with pytest.raises(MachineError):
            run(asm)

    def test_stats(self):
        asm = Assembler()
        asm.data(0x200, [1, 2, 3, 4])
        asm.movi("r1", 0x200)
        asm.movi("r2", 0x220)
        loop = asm.label()
        asm.load("r3", "r1", 0)
        asm.store("r3", "r1", 0x100)
        asm.addi("r1", "r1", 8)
        asm.blt("r1", "r2", loop)
        asm.halt()
        trace = run(asm)
        stats = trace.stats()
        assert stats.loads == 4
        assert stats.stores == 4
        assert stats.branches == 4
        assert stats.taken_branches == 3
        assert stats.memory_accesses == 8

    def test_memory_footprint(self):
        asm = Assembler()
        asm.movi("r1", 0)
        asm.load("r2", "r1", 0)
        asm.load("r2", "r1", 32)   # same 64B line
        asm.load("r2", "r1", 64)   # next line
        asm.halt()
        trace = run(asm)
        assert trace.memory_footprint(64) == {0, 1}
