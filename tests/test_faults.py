"""Fault tolerance: isolation, retry, chaos, journal (docs/robustness.md).

The contract under test is *recoverable degradation*: injected faults —
worker kills, hung cells, torn and corrupted cache writes, interrupted
matrices — must never abort a sweep or change a single reproduced
number.  Chaos directives fire on a cell's first attempt only, so every
injected fault is recoverable by construction and the assertions here
can demand bit-identical figures.
"""

import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.engine.config import EXPERIMENT_CONFIG
from repro.experiments import report_all
from repro.experiments.runner import ExperimentRunner, simulate_spec
from repro.faults import (
    CellFailure,
    RetryPolicy,
    atomic_write_pickle,
    failures_in,
    fault_counters,
    reset_fault_counters,
)
from repro.faults import chaos
from repro.faults.atomic import tmp_path_for
from repro.faults.journal import MatrixJournal
from repro.parallel import run_jobs, shutdown_pool
from repro.resultcache import digest_sources

APP = "spec.libquantum"
APP2 = "spec.astar"


@pytest.fixture(autouse=True)
def _fault_isolation(monkeypatch):
    """Every test starts with chaos off, counters zeroed, log disabled."""
    monkeypatch.setenv("REPRO_FAULT_LOG", "")
    chaos.reset_chaos()
    reset_fault_counters()
    yield
    chaos.reset_chaos()
    reset_fault_counters()
    shutdown_pool()


def _figures(result):
    return (result.core.cycles, result.core.instructions,
            result.l1d.demand_misses, result.dram_traffic)


class _BoomFactory:
    """Picklable spec whose build always raises (a genuinely bad cell)."""

    cache_key = "boom"

    def __call__(self):
        raise RuntimeError("boom cell")


# ----------------------------------------------------------------------
# Retry policy and chaos grammar
# ----------------------------------------------------------------------
def test_retry_policy_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_MAX", "5")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.5")
    monkeypatch.setenv("REPRO_CELL_TIMEOUT", "7.5")
    policy = RetryPolicy.from_env()
    assert policy.max_attempts == 5
    assert policy.backoff_seconds == 0.5
    assert policy.timeout_seconds == 7.5
    # Deterministic exponential backoff, 1-based retries.
    assert [policy.delay(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]
    monkeypatch.setenv("REPRO_RETRY_MAX", "not-a-number")
    assert RetryPolicy.from_env().max_attempts == 3  # malformed -> default


def test_chaos_spec_parse_and_roundtrip(monkeypatch):
    text = ("kill=spec.mcf/tpc;slow=spec.libquantum/bop:6.0;"
            "torn=trace:gemm;corrupt=result:spec.mcf;"
            "garbage;slow=bad:notafloat;=empty")
    config = chaos.parse_spec(text)
    assert config.kill == ("spec.mcf/tpc",)
    assert config.slow == (("spec.libquantum/bop", 6.0),)
    assert config.torn == ("trace:gemm",)
    assert config.corrupt == ("result:spec.mcf",)
    assert config.enabled
    # spec() serializes back to the same grammar.
    assert chaos.parse_spec(config.spec()) == config
    # The env variable is the canonical channel and re-parses on change.
    monkeypatch.setenv(chaos.CHAOS_ENV, "kill=a/b")
    assert chaos.get_chaos().kill == ("a/b",)
    monkeypatch.setenv(chaos.CHAOS_ENV, "kill=c/d")
    assert chaos.get_chaos().kill == ("c/d",)
    monkeypatch.delenv(chaos.CHAOS_ENV)
    assert not chaos.get_chaos().enabled


# ----------------------------------------------------------------------
# Per-cell isolation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_jobs", [1, 2])
def test_failing_cell_is_isolated_not_fatal(n_jobs):
    """One bad cell yields a CellFailure slot; its siblings complete and
    the phase timings fill even though the matrix degraded."""
    jobs = [(APP, "none"), (APP, _BoomFactory()), (APP2, "none")]
    policy = RetryPolicy(max_attempts=2, backoff_seconds=0.001)
    timings: dict = {}
    results = run_jobs(jobs, EXPERIMENT_CONFIG, n_jobs,
                       timings=timings, policy=policy)
    assert results[0].workload == APP
    assert results[2].workload == APP2
    failure = results[1]
    assert isinstance(failure, CellFailure)
    assert failures_in(results) == [failure]
    assert failure.kind == "error"
    assert failure.attempts == 2
    assert "boom cell" in failure.error
    assert failure.spec == "boom"
    assert "boom" in failure.describe()
    assert set(timings) == {"trace_warm_seconds", "simulate_seconds",
                            "merge_seconds"}
    counters = fault_counters()
    assert counters["cell_retry"] >= 1
    assert counters["cell_failed"] == 1


def test_prefill_skips_failed_cells_and_counts_them(tmp_path):
    runner = ExperimentRunner(jobs=2, journal_dir=str(tmp_path),
                              retry=RetryPolicy(max_attempts=2,
                                                backoff_seconds=0.001))
    stored = runner.prefill([(APP, "none"), (APP, _BoomFactory())])
    assert stored == 1
    assert runner.counters["failed_cells"] == 1
    # The failure is journaled for post-mortems.
    assert runner.journal.stats()["failed"] == 1
    # The good cell is a memory hit; the bad one raises *in context*.
    assert runner.run(APP, "none").workload == APP
    with pytest.raises(RuntimeError, match="boom cell"):
        runner.run(APP, _BoomFactory())


# ----------------------------------------------------------------------
# Chaos: worker kill and hung-cell timeout
# ----------------------------------------------------------------------
def test_chaos_kill_recovers_bit_identical(monkeypatch):
    reference = [_figures(simulate_spec(app, "none", "", EXPERIMENT_CONFIG))
                 for app in (APP, APP2)]
    shutdown_pool()  # fresh pool must fork with the chaos env below
    monkeypatch.setenv(chaos.CHAOS_ENV, f"kill={APP}/none")
    chaos.reset_chaos()
    results = run_jobs([(APP, "none"), (APP2, "none")], EXPERIMENT_CONFIG, 2,
                       policy=RetryPolicy(max_attempts=3,
                                          backoff_seconds=0.01))
    assert not failures_in(results)
    assert [_figures(r) for r in results] == reference
    counters = fault_counters()
    assert counters["worker_lost"] >= 1
    assert counters["pool_degraded"] >= 1


def test_chaos_slow_cell_hits_timeout_and_retries(monkeypatch):
    reference = [_figures(simulate_spec(app, "none", "", EXPERIMENT_CONFIG))
                 for app in (APP, APP2)]
    shutdown_pool()
    monkeypatch.setenv(chaos.CHAOS_ENV, f"slow={APP}/none:30")
    chaos.reset_chaos()
    policy = RetryPolicy(max_attempts=3, backoff_seconds=0.01,
                         timeout_seconds=4.0)
    results = run_jobs([(APP, "none"), (APP2, "none")], EXPERIMENT_CONFIG, 2,
                       policy=policy)
    assert not failures_in(results)
    assert [_figures(r) for r in results] == reference
    counters = fault_counters()
    assert counters["cell_timeout"] >= 1
    assert counters["pool_degraded"] >= 1


def test_chaos_kill_never_fires_in_parent(monkeypatch):
    """The serial path must be immune to kill directives — only pool
    workers (marked by the initializer) may chaos-exit."""
    monkeypatch.setenv(chaos.CHAOS_ENV, f"kill={APP}/none")
    chaos.reset_chaos()
    result = simulate_spec(APP, "none", "", EXPERIMENT_CONFIG)
    results = run_jobs([(APP, "none")], EXPERIMENT_CONFIG, 1)
    assert _figures(results[0]) == _figures(result)


# ----------------------------------------------------------------------
# Chaos: torn and corrupted cache writes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("verb", ["torn", "corrupt"])
def test_bad_cache_entry_is_miss_with_single_resimulation(tmp_path, verb):
    chaos.set_chaos(chaos.parse_spec(f"{verb}=result:{APP}/none"))
    writer = ExperimentRunner(cache_dir=str(tmp_path))
    reference = _figures(writer.run(APP, "none"))
    chaos.set_chaos(None)

    reader = ExperimentRunner(cache_dir=str(tmp_path))
    assert _figures(reader.run(APP, "none")) == reference
    assert reader.counters["simulated"] == 1  # the bad entry was a miss
    assert reader.counters["disk_hits"] == 0
    assert fault_counters()["cache_corrupt"] == 1

    # The re-simulation rewrote a good entry: third reader hits disk.
    warm = ExperimentRunner(cache_dir=str(tmp_path))
    assert _figures(warm.run(APP, "none")) == reference
    assert warm.counters["simulated"] == 0
    assert warm.counters["disk_hits"] == 1


# ----------------------------------------------------------------------
# Resumable-matrix journal
# ----------------------------------------------------------------------
def test_interrupted_matrix_resumes_with_zero_resimulations(tmp_path):
    cache = str(tmp_path / "cache")
    journal = str(tmp_path / "journal")
    cells = [(APP, "none"), (APP, "bop"), (APP2, "none")]

    interrupted = ExperimentRunner(cache_dir=cache, journal_dir=journal)
    reference = {cell: _figures(interrupted.run(*cell))
                 for cell in cells[:2]}  # "interrupt" after two cells

    resumed = ExperimentRunner(cache_dir=cache, journal_dir=journal)
    for cell in cells:
        figures = _figures(resumed.run(*cell))
        if cell in reference:
            assert figures == reference[cell]
    assert resumed.counters["resume_hits"] == 2  # settled cells: no sims
    assert resumed.counters["disk_hits"] == 2
    assert resumed.counters["simulated"] == 1  # only the new cell
    assert fault_counters()["resume_hit"] == 2


def test_journal_scoping_load_and_torn_lines(tmp_path):
    journal = MatrixJournal(tmp_path, "cfg1", code_version="deadbeef")
    journal.record_ok(APP, "none", "")
    journal.record_ok(APP, "none", "")  # dedup: one line, not two
    journal.record_ok(APP2, "tpc", "l1")
    journal.record_failure(CellFailure(
        workload=APP, spec="bop", tag="", kind="timeout",
        error="", traceback="", attempts=3))
    # The torn final line an interrupted writer leaves behind.
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"status": "ok", "workl')

    reloaded = MatrixJournal(tmp_path, "cfg1", code_version="deadbeef")
    assert reloaded.has((APP, "none", ""))
    assert reloaded.has((APP2, "tpc", "l1"))
    assert not reloaded.has((APP2, "none", ""))
    assert reloaded.stats()["completed"] == 2
    assert reloaded.stats()["failed"] == 1
    assert len(journal.path.read_text().splitlines()) == 4

    # Another config digest or code version is a different journal file.
    other = MatrixJournal(tmp_path, "cfg2", code_version="deadbeef")
    assert not other.has((APP, "none", ""))
    assert other.path != journal.path

    journal.clear()
    assert not journal.path.exists()
    assert MatrixJournal(tmp_path, "cfg1",
                         code_version="deadbeef").stats()["completed"] == 0


# ----------------------------------------------------------------------
# Atomic writes (the id(result) temp-name collision regression)
# ----------------------------------------------------------------------
def test_atomic_write_temp_name_is_pid_unique(tmp_path):
    target = tmp_path / "entry.pkl"
    tmp = tmp_path_for(target)
    assert tmp.name == f"entry.pkl.tmp.{os.getpid():x}"
    # A concurrent writer in another process can never share the name.
    src = Path(repro.__file__).resolve().parent.parent
    other = subprocess.run(
        [sys.executable, "-c",
         "from pathlib import Path;"
         "from repro.faults.atomic import tmp_path_for;"
         f"print(tmp_path_for(Path({str(target)!r})))"],
        env={**os.environ, "PYTHONPATH": str(src)},
        capture_output=True, text=True, check=True,
    ).stdout.strip()
    assert other != str(tmp)
    assert other.startswith(str(target) + ".tmp.")


def test_atomic_write_leaves_no_temp_files(tmp_path):
    target = tmp_path / "deep" / "entry.pkl"
    atomic_write_pickle(target, {"value": 42})
    with open(target, "rb") as fh:
        assert pickle.load(fh) == {"value": 42}
    atomic_write_pickle(target, {"value": 43})  # overwrite is atomic too
    with open(target, "rb") as fh:
        assert pickle.load(fh) == {"value": 43}
    assert [p.name for p in target.parent.iterdir()] == ["entry.pkl"]


# ----------------------------------------------------------------------
# Code-version digests (the moved-file staleness regression)
# ----------------------------------------------------------------------
def test_digest_sources_uses_package_relative_paths(tmp_path):
    inside = Path(repro.__file__).resolve().parent / "faults" / "chaos.py"
    copy = tmp_path / "chaos.py"
    copy.write_bytes(inside.read_bytes())
    # Same file name, same bytes, different location within (vs outside)
    # the package: the digest must differ, else a moved source file
    # would leave stale cache entries live.
    assert digest_sources([inside], "s") != digest_sources([copy], "s")
    # Equivalent spellings of the same path agree.
    dotted = inside.parent / ".." / "faults" / "chaos.py"
    assert digest_sources([inside], "s") == digest_sources([dotted], "s")


# ----------------------------------------------------------------------
# Fault telemetry
# ----------------------------------------------------------------------
def test_fault_log_records_share_the_event_schema(tmp_path, monkeypatch):
    log = tmp_path / "faults.jsonl"
    monkeypatch.setenv("REPRO_FAULT_LOG", str(log))
    from repro.faults import CELL_RETRY, log_fault

    log_fault(CELL_RETRY, workload=APP, spec="tpc", tag="l1",
              attempt=2, seconds=1.5, detail="RuntimeError('x')")
    record = json.loads(log.read_text().splitlines()[0])
    # The fixed key set every repro event carries, so `repro events`
    # filters and summarizes fault records unchanged.
    assert {"kind", "cycle", "line", "component", "level",
            "pc", "dur"} <= set(record)
    assert record["kind"] == "cell_retry"
    assert record["component"] == "tpc"
    assert record["level"] == 2
    assert record["dur"] == 1500
    assert record["workload"] == APP
    assert fault_counters()["cell_retry"] == 1


# ----------------------------------------------------------------------
# report_all section isolation
# ----------------------------------------------------------------------
def test_report_all_isolates_failing_sections(monkeypatch):
    fake = [
        ("good section", lambda runner: "rendered fine"),
        ("bad section", lambda runner: 1 / 0),
        ("later section", lambda runner: "still rendered"),
    ]
    monkeypatch.setattr(report_all, "SECTIONS", fake)
    errors: list = []
    text = report_all.generate(runner=object(), section_errors=errors)
    assert "rendered fine" in text
    assert "still rendered" in text
    assert "SECTION FAILED" in text
    assert "ZeroDivisionError" in text
    assert errors == ["bad section"]
    assert fault_counters()["section_failed"] == 1
    with pytest.raises(ZeroDivisionError):
        report_all.generate(runner=object(), fail_fast=True)
