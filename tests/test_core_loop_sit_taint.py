"""Unit tests for T2's loop detector, the SIT, and P1's taint unit."""

from repro.core.loop_detector import LoopDetector
from repro.core.sit import (
    EARLY_ISSUE_THRESHOLD,
    InstructionState,
    SitEntry,
    StrideIdentifierTable,
)
from repro.core.taint import TaintUnit
from repro.isa.instructions import OpClass
from repro.isa.trace import TraceRecord


def alu(pc, dst, src1=-1, src2=-1):
    return TraceRecord(pc, OpClass.ALU, dst=dst, src1=src1, src2=src2)


def load(pc, dst, base):
    return TraceRecord(pc, OpClass.LOAD, addr=0x1000, dst=dst, src1=base)


class TestLoopDetector:
    def test_identifies_back_to_back_loop_branch(self):
        detector = LoopDetector()
        assert not detector.observe_backward_branch(0x100, 0x80, cycle=0)
        assert detector.observe_backward_branch(0x100, 0x80, cycle=10)
        assert detector.in_loop
        assert detector.loop_pc == 0x100

    def test_iteration_time_tracked(self):
        detector = LoopDetector()
        for i in range(10):
            detector.observe_backward_branch(0x100, 0x80, cycle=i * 20)
        assert abs(detector.iteration_time - 20.0) < 1.0

    def test_non_loop_branch_learned_and_skipped(self):
        detector = LoopDetector(nlpct_strike_limit=2)
        # Branch A never repeats back-to-back: A B A B A B ...
        for i in range(8):
            detector.observe_backward_branch(0xA, 0x1, cycle=2 * i)
            detector.observe_backward_branch(0xB, 0x2, cycle=2 * i + 1)
        assert detector.is_non_loop(0xA) or detector.is_non_loop(0xB)

    def test_nested_loops_inner_wins(self):
        detector = LoopDetector()
        # Inner loop 4 iterations, outer repeats; outer branch should end
        # up in the NLPCT, letting the inner re-confirm immediately.
        cycle = 0
        for _ in range(6):
            for _ in range(4):
                detector.observe_backward_branch(0x100, 0x80, cycle)
                cycle += 5
            detector.observe_backward_branch(0x200, 0x40, cycle)
            cycle += 5
        assert detector.is_non_loop(0x200)
        assert detector.loop_pc == 0x100

    def test_nlpct_bounded(self):
        detector = LoopDetector(nlpct_entries=2, nlpct_strike_limit=1)
        for pc in range(10):
            detector.observe_backward_branch(pc, 0, cycle=pc)
            detector.observe_backward_branch(100 + pc, 0, cycle=pc)
        assert len(detector._nlpct) <= 2

    def test_reset(self):
        detector = LoopDetector()
        detector.observe_backward_branch(0x100, 0x80, 0)
        detector.observe_backward_branch(0x100, 0x80, 5)
        detector.reset()
        assert not detector.in_loop
        assert detector.iterations == 0


class TestSitEntry:
    def test_stable_after_threshold(self):
        entry = SitEntry(0x10, 0, lru=0)
        for i in range(1, EARLY_ISSUE_THRESHOLD + 1):
            entry.observe(i * 8)
        assert entry.stable
        assert entry.delta == 8

    def test_delta_change_resets_same_count(self):
        entry = SitEntry(0x10, 0, lru=0)
        for i in range(1, 6):
            entry.observe(i * 8)
        entry.observe(1000)
        assert entry.same_count == 1
        assert entry.diff_count == 1

    def test_run_length_learned_on_break(self):
        entry = SitEntry(0x10, 0, lru=0)
        addr = 0
        for i in range(1, 11):
            addr = i * 8
            entry.observe(addr)
        entry.observe(100000)  # break after a 10-long run
        assert entry.run_estimate >= 9

    def test_zero_delta_not_stable(self):
        entry = SitEntry(0x10, 0x50, lru=0)
        for _ in range(10):
            entry.observe(0x50)
        assert not entry.stable


class TestStrideIdentifierTable:
    def test_state_defaults_to_unknown(self):
        sit = StrideIdentifierTable()
        assert sit.state_of(0x99) is InstructionState.UNKNOWN

    def test_state_transitions_persist(self):
        sit = StrideIdentifierTable()
        sit.set_state(0x10, InstructionState.STRIDED)
        assert sit.state_of(0x10) is InstructionState.STRIDED

    def test_capacity_lru(self):
        sit = StrideIdentifierTable(entries=2)
        sit.allocate(1, 0)
        sit.allocate(2, 0)
        sit.get(1)            # touch 1; 2 is LRU
        sit.allocate(3, 0)
        assert sit.get(2) is None
        assert sit.get(1) is not None

    def test_allocate_idempotent(self):
        sit = StrideIdentifierTable()
        a = sit.allocate(1, 100)
        b = sit.allocate(1, 999)
        assert a is b
        assert a.last_addr == 100  # not clobbered

    def test_drop(self):
        sit = StrideIdentifierTable()
        sit.allocate(1, 0)
        sit.drop(1)
        assert sit.get(1) is None
        sit.drop(1)  # idempotent


class TestTaintUnit:
    def test_direct_dependent_load_found(self):
        unit = TaintUnit()
        unit.arm(0x10)
        # trigger: load r4 <- ...; dependent: load r5 <- [r4]
        assert not unit.observe(load(0x10, dst=4, base=1))
        assert not unit.observe(load(0x14, dst=5, base=4))
        assert unit.observe(load(0x10, dst=4, base=1))  # walk complete
        assert unit.completed_loads == [0x14]

    def test_transitive_dependence(self):
        unit = TaintUnit()
        unit.arm(0x10)
        unit.observe(load(0x10, dst=4, base=1))
        unit.observe(alu(0x14, dst=6, src1=4))       # r6 <- f(r4)
        unit.observe(load(0x18, dst=5, base=6))      # load [r6]
        assert unit.observe(load(0x10, dst=4, base=1))
        assert unit.completed_loads == [0x18]

    def test_taint_cleared_by_overwrite(self):
        unit = TaintUnit()
        unit.arm(0x10)
        unit.observe(load(0x10, dst=4, base=1))
        unit.observe(alu(0x14, dst=4, src1=2))       # r4 overwritten clean
        unit.observe(load(0x18, dst=5, base=4))      # not tainted anymore
        assert unit.observe(load(0x10, dst=4, base=1))
        assert unit.completed_loads == []

    def test_self_dependence_detected(self):
        unit = TaintUnit()
        unit.arm(0x10)
        unit.observe(load(0x10, dst=1, base=1))      # r1 <- M[r1]
        unit.observe(load(0x10, dst=1, base=1))
        assert unit.trigger_self_dependent

    def test_no_self_dependence_for_plain_stride(self):
        unit = TaintUnit()
        unit.arm(0x10)
        unit.observe(load(0x10, dst=4, base=1))
        unit.observe(alu(0x14, dst=1, src1=1))       # r1 += const (clean:
        # src r1 is not tainted, so dst r1 stays clean)
        unit.observe(load(0x10, dst=4, base=1))
        assert not unit.trigger_self_dependent

    def test_untainted_load_ignored(self):
        unit = TaintUnit()
        unit.arm(0x10)
        unit.observe(load(0x10, dst=4, base=1))
        unit.observe(load(0x20, dst=5, base=2))      # independent load
        assert unit.observe(load(0x10, dst=4, base=1))
        assert unit.completed_loads == []

    def test_unarmed_unit_inert(self):
        unit = TaintUnit()
        assert not unit.observe(load(0x10, dst=4, base=1))
