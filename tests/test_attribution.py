"""Tests for per-instruction miss attribution."""

from repro.analysis.attribution import attribute, render
from repro.engine.system import simulate
from repro.prefetcher_registry import make_prefetcher


class TestAttribution:
    def test_strided_load_attributed_to_t2(self, strided_trace):
        baseline = simulate(strided_trace)
        tpc = make_prefetcher("tpc")
        result = simulate(strided_trace, tpc)
        rows = attribute(strided_trace, baseline, result, tpc)
        assert rows
        hottest = rows[0]
        assert hottest.pattern == "strided"
        assert hottest.covered_by == "t2"
        assert hottest.coverage > 0.9

    def test_miss_pcs_tracked(self, strided_trace):
        baseline = simulate(strided_trace)
        assert baseline.core.miss_pcs
        assert sum(baseline.core.miss_pcs.values()) == \
            baseline.l1d.demand_misses

    def test_render(self, strided_trace):
        baseline = simulate(strided_trace)
        tpc = make_prefetcher("tpc")
        result = simulate(strided_trace, tpc)
        out = render(attribute(strided_trace, baseline, result, tpc))
        assert "owner" in out and "t2" in out

    def test_uncovered_pc_marked(self, chain_trace):
        baseline = simulate(chain_trace)
        stride = make_prefetcher("stride")
        result = simulate(chain_trace, stride)
        rows = attribute(chain_trace, baseline, result, stride)
        # A scattered chain is not covered by a stride prefetcher.
        assert any(r.covered_by == "-" and r.coverage < 0.5 for r in rows)

    def test_top_limits_rows(self, strided_trace):
        baseline = simulate(strided_trace)
        tpc = make_prefetcher("tpc")
        result = simulate(strided_trace, tpc)
        rows = attribute(strided_trace, baseline, result, tpc, top=1)
        assert len(rows) == 1
