"""Compiled columnar traces and the on-disk trace cache.

Two contracts are pinned here:

1. **Representation identity** — replaying a :class:`CompiledTrace`
   (columnar fast path) produces byte-for-byte the same simulation
   statistics as replaying the retained object-trace reference path,
   across workloads and prefetcher families (no instruction stream,
   instruction-stream consumer, composite).  The cache serialization
   round-trip is held to the same standard.
2. **Cache behavior** — the trace cache is read-through (build once,
   disk-hit afterwards, memoize in-process), keyed by builder-code
   version so editing any trace-affecting source orphans stale entries,
   and robust to corrupt files.
"""

import pickle

import pytest

from repro.engine.config import EXPERIMENT_CONFIG
from repro.engine.system import simulate
from repro.isa.trace import CompiledTrace, compile_trace
from repro.prefetcher_registry import make_prefetcher
from repro.resultcache import ResultCache, digest_sources
from repro.workloads import get_workload
from repro.workloads.registry import Workload
from repro.workloads import tracecache
from repro.workloads.tracecache import (
    TRACE_CACHE_ENV,
    TRACE_CACHE_VERSION,
    TraceCache,
    trace_code_version,
    trace_counters,
)

WORKLOADS = ["spec.libquantum", "spec.mcf", "spec.astar"]
PREFETCHERS = ["none", "tpc", "bop"]


def _fingerprint(result):
    """Every externally observable statistic of a simulation."""
    return (
        result.core.cycles,
        result.core.instructions,
        result.core.miss_pcs,
        result.core.miss_latency_by_pc,
        result.l1d.demand_misses,
        result.l1d.useful_prefetches,
        result.l2.demand_misses,
        result.l2.useful_prefetches,
        result.prefetch.issued,
        dict(result.prefetch.by_component),
        result.dram.reads,
        result.dram_traffic,
        result.miss_lines_l1,
        result.miss_lines_l2,
        result.attempted_prefetch_lines,
        {name: frozenset(lines)
         for name, lines in result.attempted_by_component.items()},
    )


@pytest.fixture(scope="module")
def reference_traces():
    """One object trace per workload plus its compiled form."""
    traces = {}
    for name in WORKLOADS:
        obj = get_workload(name).object_trace()
        traces[name] = (obj, CompiledTrace.from_trace(obj))
    return traces


# ----------------------------------------------------------------------
# Representation identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("prefetcher", PREFETCHERS)
def test_compiled_replay_matches_object_replay(reference_traces,
                                               workload, prefetcher):
    obj, compiled = reference_traces[workload]
    a = simulate(obj, make_prefetcher(prefetcher), EXPERIMENT_CONFIG,
                 spec=prefetcher)
    b = simulate(compiled, make_prefetcher(prefetcher), EXPERIMENT_CONFIG,
                 spec=prefetcher)
    assert _fingerprint(a) == _fingerprint(b)


def test_column_roundtrip_preserves_replay(reference_traces):
    """Serialize to per-column blobs and back: the cache wire format must
    be as bit-identical as the in-memory compile."""
    obj, compiled = reference_traces[WORKLOADS[0]]
    restored = CompiledTrace.from_column_bytes(
        compiled.name, compiled.column_bytes(), dict(compiled.memory)
    )
    assert restored.columns == compiled.columns
    a = simulate(compiled, make_prefetcher("tpc"), EXPERIMENT_CONFIG,
                 spec="tpc")
    b = simulate(restored, make_prefetcher("tpc"), EXPERIMENT_CONFIG,
                 spec="tpc")
    assert _fingerprint(a) == _fingerprint(b)


def test_compiled_trace_views_match_columns(reference_traces):
    from repro.isa.trace import TRACE_FIELDS

    obj, compiled = reference_traces[WORKLOADS[0]]
    assert len(compiled) == len(obj.records)

    def fields(record):
        return tuple(getattr(record, name) for name in TRACE_FIELDS)

    # Lazily materialized views carry the same data as the originals
    # (TraceRecord compares by identity, so compare field-wise).
    assert [fields(r) for r in compiled.records] \
        == [fields(r) for r in obj.records]
    assert fields(compiled.record(0)) == fields(obj.records[0])
    assert compile_trace(compiled) is compiled
    assert compiled.stats() == obj.stats()
    assert compiled.memory_footprint() == obj.memory_footprint()


def test_trace_stats_cached(reference_traces):
    obj, compiled = reference_traces[WORKLOADS[0]]
    assert obj.stats() is obj.stats()
    assert compiled.stats() is compiled.stats()


# ----------------------------------------------------------------------
# Read-through cache behavior
# ----------------------------------------------------------------------
def _tiny_workload(name="test.tiny"):
    """Unregistered workload with a small simpoint for cheap builds."""
    base = get_workload("spec.libquantum")
    return Workload(name=name, suite="test", build=base.build,
                    simpoint=2_000)


def test_trace_cache_read_through(tmp_path, monkeypatch):
    monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))

    before = trace_counters()
    first = _tiny_workload()
    t1 = first.trace()  # cold: build + put
    t2 = first.trace()  # warm in-process: memo
    second = _tiny_workload()
    t3 = second.trace()  # warm on-disk: loaded, no build

    after = trace_counters()
    assert after["builds"] - before["builds"] == 1
    assert after["memory_hits"] - before["memory_hits"] == 1
    assert after["disk_hits"] - before["disk_hits"] == 1
    assert t2 is t1
    assert t3.columns == t1.columns
    assert t3.memory == t1.memory

    cache = TraceCache()
    assert cache.entry_path("test.tiny", 2_000).is_file()
    stats = cache.stats()
    assert stats["entries"] == 1 and stats["bytes"] > 0


def test_trace_cache_invalidated_by_builder_source_change(
        tmp_path, monkeypatch):
    monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
    workload = _tiny_workload()
    workload.trace()
    assert TraceCache().get("test.tiny", 2_000) is not None

    # Simulate an edit to a trace-affecting source file: the code
    # version changes, so the existing entry is never read again.
    monkeypatch.setattr(tracecache, "_trace_code_version_cache",
                        "f" * 16)
    assert TraceCache().get("test.tiny", 2_000) is None
    stats = TraceCache().stats()
    assert stats["entries"] == 0
    assert stats["stale_entries"] == 1
    assert TraceCache().clear(stale_only=True) == 1
    assert TraceCache().stats()["stale_entries"] == 0


def test_trace_cache_stale_format_entry_dropped_and_counted(
        tmp_path, monkeypatch):
    """A pre-bump payload inside the current version directory is
    dropped once, attributed to ``cache_stale_format``, and rebuilt as a
    current-format entry on the next read-through."""
    monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
    _tiny_workload().trace()
    cache = TraceCache()
    path = cache.entry_path("test.tiny", 2_000)
    payload = pickle.loads(path.read_bytes())
    payload["format"] = TRACE_CACHE_VERSION - 1
    path.write_bytes(pickle.dumps(payload))

    before = trace_counters()
    assert cache.get("test.tiny", 2_000) is None
    after = trace_counters()
    assert after["cache_stale_format"] - before["cache_stale_format"] == 1
    assert not path.exists()  # dropped, not silently rebuilt over forever

    rebuilt = _tiny_workload().trace()
    entry = cache.get("test.tiny", 2_000)
    assert entry is not None and entry.columns == rebuilt.columns
    assert trace_counters()["cache_stale_format"] == \
        after["cache_stale_format"]


def test_trace_cache_corrupt_entry_is_a_miss(tmp_path, monkeypatch):
    monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
    workload = _tiny_workload()
    workload.trace()
    cache = TraceCache()
    path = cache.entry_path("test.tiny", 2_000)
    path.write_bytes(b"not a pickle")
    assert cache.get("test.tiny", 2_000) is None
    assert not path.exists()  # dropped so the next put() rewrites it


def test_trace_cache_disabled_by_empty_env(tmp_path, monkeypatch):
    monkeypatch.setenv(TRACE_CACHE_ENV, "")
    cache = TraceCache()
    assert not cache.enabled
    assert cache.get("test.tiny", 2_000) is None
    assert cache.put(_tiny_workload().trace(), 2_000) is None
    assert list(tmp_path.iterdir()) == []


def test_trace_code_version_covers_isa_and_workloads():
    version = trace_code_version()
    assert len(version) == 16
    assert version == trace_code_version()  # cached, stable


# ----------------------------------------------------------------------
# Shared code-version digest scheme
# ----------------------------------------------------------------------
def test_digest_sources_tracks_content(tmp_path):
    a = tmp_path / "a.py"
    b = tmp_path / "b.py"
    a.write_text("x = 1\n")
    b.write_text("y = 2\n")
    original = digest_sources([a, b], "salt")
    assert digest_sources([b, a], "salt") == original  # order-insensitive
    assert digest_sources([a, b], "other-salt") != original
    b.write_text("y = 3\n")
    assert digest_sources([a, b], "salt") != original
    b.write_text("y = 2\n")
    assert digest_sources([a, b], "salt") == original  # content-addressed


def test_result_cache_invalidated_by_code_version_change(
        tmp_path, monkeypatch):
    from repro import resultcache
    from repro.experiments.runner import ExperimentRunner

    cold = ExperimentRunner(cache_dir=str(tmp_path))
    cold.run("spec.libquantum", "none")
    assert cold.counters["simulated"] == 1

    monkeypatch.setattr(resultcache, "_code_version_cache", "0" * 16)
    stale = ExperimentRunner(cache_dir=str(tmp_path))
    stale.run("spec.libquantum", "none")
    assert stale.counters["disk_hits"] == 0  # old entry never read
    assert stale.counters["simulated"] == 1
    stats = ResultCache(str(tmp_path)).stats()
    assert stats["stale_entries"] == 1
    assert stats["entries"] == 1  # the re-simulated entry


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cache_cli_covers_both_stores(tmp_path, monkeypatch, capsys):
    from repro.__main__ import main

    trace_dir = tmp_path / "traces"
    result_dir = tmp_path / "results"
    monkeypatch.setenv(TRACE_CACHE_ENV, str(trace_dir))
    _tiny_workload().trace()

    main(["cache", "stats", "--cache-dir", str(result_dir),
          "--trace-dir", str(trace_dir)])
    out = capsys.readouterr().out
    assert "results: root" in out
    assert "traces: root" in out
    assert "traces: entries (current)" in out

    main(["cache", "clear", "--traces", "--trace-dir", str(trace_dir)])
    out = capsys.readouterr().out
    assert "removed 1 trace entries" in out
    assert "result entries" not in out
    assert TraceCache(str(trace_dir)).stats()["entries"] == 0


def test_tiny_workload_roundtrips_through_pickle_cache(tmp_path,
                                                       monkeypatch):
    """End-to-end cold/warm equivalence at the simulation level."""
    monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
    cold = _tiny_workload().trace()
    warm = _tiny_workload().trace()  # fresh instance: disk load
    a = simulate(cold, make_prefetcher("bop"), EXPERIMENT_CONFIG,
                 spec="bop")
    b = simulate(warm, make_prefetcher("bop"), EXPERIMENT_CONFIG,
                 spec="bop")
    assert _fingerprint(a) == _fingerprint(b)
    # The cached payload is a plain dict of blobs, not arbitrary objects.
    path = TraceCache().entry_path("test.tiny", 2_000)
    payload = pickle.loads(path.read_bytes())
    assert sorted(payload) == ["columns", "derived", "format",
                               "memory_addr", "memory_val", "name",
                               "segments", "simpoint"]
