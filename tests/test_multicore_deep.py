"""Deeper multicore tests: scheduling fairness, shared-resource stats,
heterogeneous prefetchers, and drop-policy plumbing."""

import pytest

from conftest import build_chain_trace, build_strided_trace

from repro.engine.config import EXPERIMENT_CONFIG
from repro.engine.multicore import simulate_multicore
from repro.engine.system import simulate
from repro.prefetcher_registry import make_prefetcher


@pytest.fixture(scope="module")
def small_traces():
    return [
        build_strided_trace(elements=3000, name="s0"),
        build_chain_trace(nodes=1500, name="c0"),
    ]


class TestScheduling:
    def test_all_cores_finish(self, small_traces):
        result = simulate_multicore(small_traces)
        for trace, core in zip(small_traces, result.per_core):
            assert core.core.instructions == len(trace)

    def test_core_results_labeled(self, small_traces):
        result = simulate_multicore(small_traces)
        assert [r.workload for r in result.per_core] == ["s0", "c0"]

    def test_deterministic(self, small_traces):
        a = simulate_multicore(small_traces)
        b = simulate_multicore(small_traces)
        assert [r.cycles for r in a.per_core] == \
            [r.cycles for r in b.per_core]


class TestSharedResources:
    def test_dram_traffic_is_shared_total(self, small_traces):
        result = simulate_multicore(small_traces)
        # Every per-core view exposes the same shared DRAM stats object.
        assert result.per_core[0].dram is result.per_core[1].dram
        assert result.dram_traffic == result.per_core[0].dram.total_traffic

    def test_shared_l3_sized_per_core(self, small_traces):
        result = simulate_multicore(small_traces, config=EXPERIMENT_CONFIG)
        # Table I: 2 MB/core — the shared L3 stats are per-run shared.
        assert result.per_core[0].l3 is result.per_core[1].l3

    def test_private_l1_stats_independent(self, small_traces):
        result = simulate_multicore(small_traces)
        assert result.per_core[0].l1d is not result.per_core[1].l1d


class TestHeterogeneousPrefetchers:
    def test_mixed_prefetchers_per_core(self, small_traces):
        prefetchers = [make_prefetcher("tpc"), make_prefetcher("none")]
        result = simulate_multicore(small_traces, prefetchers)
        assert result.per_core[0].prefetch.issued > 0
        assert result.per_core[1].prefetch.issued == 0

    def test_prefetching_core_improves_itself(self, small_traces):
        without = simulate_multicore(small_traces)
        with_tpc = simulate_multicore(
            small_traces,
            [make_prefetcher("tpc"), make_prefetcher("none")],
        )
        assert with_tpc.per_core[0].cycles <= without.per_core[0].cycles

    def test_alone_vs_shared_ipc(self, small_traces):
        shared = simulate_multicore(small_traces)
        for trace, shared_core in zip(small_traces, shared.per_core):
            alone = simulate(trace)
            assert shared_core.ipc <= alone.ipc * 1.01


class TestWeightedSpeedup:
    def test_weighted_speedup_bounds(self, small_traces):
        shared = simulate_multicore(small_traces)
        alone = [simulate(t) for t in small_traces]
        ws = shared.weighted_speedup(alone)
        assert 0 < ws <= len(small_traces) + 1e-9

    def test_total_instructions(self, small_traces):
        result = simulate_multicore(small_traces)
        assert result.total_instructions == sum(
            len(t) for t in small_traces
        )
