"""Tests for the experiment harness modules (small app subsets)."""

import pytest

from repro.experiments import fig01, fig08, fig09, fig10, fig12, fig13
from repro.experiments import fig14, fig15, fig16, tables
from repro.experiments.runner import ExperimentRunner

APPS = ["spec.libquantum", "spec.mcf", "spec.h264ref"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestTables:
    def test_table1_renders(self):
        out = tables.render_table1()
        assert "ROB entries" in out and "192" in out

    def test_table2_renders(self):
        out = tables.render_table2()
        assert "tpc" in out


class TestFig01:
    def test_run_and_render(self, runner):
        series = fig01.run(runner, apps=APPS)
        assert [s.prefetcher for s in series] == ["ampm", "bop", "sms"]
        out = fig01.render(series)
        assert "== average ==" in out

    def test_averages_within_bounds(self, runner):
        for s in fig01.run(runner, apps=APPS):
            assert 0.0 <= s.average_scope <= 1.0
            assert -1.0 <= s.average_accuracy <= 1.0


class TestFig08:
    def test_grid_shape_and_sorting(self, runner):
        grid = fig08.run(runner, apps=APPS, prefetchers=["bop", "tpc"])
        assert set(grid.apps) == set(APPS)
        assert grid.geomean("tpc") > 0
        out = fig08.render(grid)
        assert "== geomean ==" in out

    def test_best_counts_sum_to_apps(self, runner):
        grid = fig08.run(runner, apps=APPS, prefetchers=["bop", "tpc"])
        assert sum(grid.best_count(p) for p in grid.prefetchers) == len(APPS)


class TestFig09:
    def test_rows(self, runner):
        rows = fig09.run(runner, apps=APPS, prefetchers=["bop", "tpc"])
        assert len(rows) == 2
        for row in rows:
            assert row.low <= row.geomean <= row.high
        assert "traffic" in fig09.render(rows)


class TestFig10:
    def test_weighting_by_issued(self, runner):
        series = fig10.run(runner, apps=APPS, prefetchers=["tpc"])
        out = fig10.render(series)
        assert "tpc" in out
        assert fig10.render_points(series)


class TestFig12:
    def test_incremental_rows_present(self, runner):
        rows = fig12.run(runner, apps=APPS, monolithic=["bop"])
        labels = {r.label for r in rows}
        assert {"bop", "T2", "T2+P1", "TPC"} <= labels
        levels = {r.level for r in rows}
        assert levels == {1, 2}
        assert "eff_coverage" in fig12.render(rows)

    def test_scope_grows_with_components(self, runner):
        rows = fig12.run(runner, apps=APPS, monolithic=[])
        at_l1 = {r.label: r for r in rows if r.level == 1}
        assert at_l1["TPC"].scope >= at_l1["T2"].scope - 0.02


class TestFig13:
    def test_categories_covered(self, runner):
        rows = fig13.run(runner, apps=APPS, prefetchers=["tpc"])
        assert len(rows) == 3
        assert {r.category.value for r in rows} == {"LHF", "MHF", "HHF"}
        assert "LHF" in fig13.render(rows)

    def test_lhf_gets_most_prefetches_for_tpc(self, runner):
        rows = fig13.run(runner, apps=["spec.libquantum"],
                         prefetchers=["tpc"])
        by_category = {r.category.value: r for r in rows}
        assert by_category["LHF"].issued >= by_category["HHF"].issued


class TestFig14:
    def test_alone_vs_component(self, runner):
        rows = fig14.run(runner, apps=["spec.mcf", "spec.h264ref"],
                         extras=["sms"])
        modes = {(r.prefetcher, r.mode) for r in rows}
        assert modes == {("sms", "alone"), ("sms", "component")}
        assert "uncovered" in fig14.render(rows)


class TestFig15:
    def test_composite_and_shunt_rows(self, runner):
        rows = fig15.run(runner, apps=APPS, extras=["sms"])
        modes = {r.mode for r in rows}
        assert modes == {"composite", "shunt"}
        for row in rows:
            assert row.low <= row.average <= row.high


class TestFig16:
    def test_modes_present(self, runner):
        rows = fig16.run(runner, apps=["spec.libquantum"],
                         prefetchers=["bop"])
        assert {r.mode for r in rows} == {"L1", "L2", "stratified"}
        assert "destination" in fig16.render(rows)

    def test_oracle_wrapper_rewrites_levels(self, runner):
        from repro.analysis.classify import Category
        from repro.baselines.nextline import NextLinePrefetcher
        from repro.experiments.fig16 import OracleDestinationPrefetcher
        from conftest import make_event

        wrapped = OracleDestinationPrefetcher(
            NextLinePrefetcher(degree=1),
            lambda line: Category.LHF if line % 2 == 0 else Category.HHF,
        )
        requests = wrapped.on_access(make_event(addr=63, hit=False))
        assert requests[0].line == 1
        assert requests[0].target_level == 2
        requests = wrapped.on_access(make_event(addr=64 + 63, hit=False))
        assert requests[0].target_level == 1
