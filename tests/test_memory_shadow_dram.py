"""Unit tests for the shadow tag store and the DRAM model."""

import pytest

from repro.memory.dram import Dram, DramConfig, DropPolicy
from repro.memory.shadow import ShadowTagStore


class TestShadowTags:
    def test_miss_then_hit(self):
        shadow = ShadowTagStore(4, 2)
        assert not shadow.access(0x10)
        assert shadow.access(0x10)

    def test_lru_eviction(self):
        shadow = ShadowTagStore(1, 2)
        shadow.access(1)
        shadow.access(2)
        shadow.access(1)     # 1 becomes MRU
        shadow.access(3)     # evicts 2
        assert shadow.probe(1) and shadow.probe(3)
        assert not shadow.probe(2)

    def test_probe_no_state_change(self):
        shadow = ShadowTagStore(1, 1)
        shadow.access(1)
        shadow.probe(2)
        assert shadow.probe(1)

    def test_sets_independent(self):
        shadow = ShadowTagStore(2, 1)
        shadow.access(0)   # set 0
        shadow.access(1)   # set 1
        assert shadow.probe(0) and shadow.probe(1)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            ShadowTagStore(3, 2)

    def test_occupancy_bounded(self):
        shadow = ShadowTagStore(2, 2)
        for line in range(100):
            shadow.access(line)
        assert shadow.occupancy() <= 4


class TestDramTiming:
    def test_row_hit_faster_than_conflict(self):
        dram = Dram(DramConfig(channels=1, ranks_per_channel=1,
                               banks_per_rank=1, lines_per_row=4))
        first = dram.read(0, now=0)
        # Same row: row hit.
        second = dram.read(1, now=first)
        hit_latency = second - first
        # Different row on the same bank: conflict.
        third = dram.read(100, now=second)
        conflict_latency = third - second
        assert conflict_latency > hit_latency
        assert dram.stats.row_hits >= 1
        assert dram.stats.row_conflicts >= 1

    def test_first_access_opens_row(self):
        dram = Dram()
        dram.read(0, now=0)
        assert dram.stats.row_empty == 1

    def test_bank_parallelism(self):
        config = DramConfig(channels=1, ranks_per_channel=1, banks_per_rank=8)
        dram = Dram(config)
        # Two requests to different banks overlap except for bus transfer.
        t1 = dram.read(0, now=0)
        t2 = dram.read(1, now=0)
        serialized = 2 * t1
        assert t2 < serialized

    def test_reads_counted_as_traffic(self):
        dram = Dram()
        dram.read(0, now=0)
        dram.read(64, now=0)
        dram.write(128, now=0)
        assert dram.stats.reads == 2
        assert dram.stats.writes == 1
        assert dram.stats.total_traffic == 3


class TestDramQueue:
    def small_queue(self, policy):
        return Dram(DramConfig(channels=1, queue_capacity=2,
                               drop_policy=policy))

    def test_demand_never_dropped(self):
        dram = self.small_queue(DropPolicy.RANDOM)
        for i in range(10):
            assert dram.read(i * 2, now=0) is not None
        assert dram.stats.demand_queue_stalls > 0

    def test_prefetch_dropped_when_full(self):
        dram = self.small_queue(DropPolicy.RANDOM)
        results = [
            dram.read(i * 2, now=0, is_prefetch=True, component="T2")
            for i in range(10)
        ]
        assert dram.stats.dropped_prefetches > 0
        # Some prefetch must have been dropped (returned None) or a queued
        # one cancelled; either way the count is positive.
        assert results.count(None) + dram.stats.dropped_prefetches > 0

    def test_low_priority_policy_prefers_dropping_c1(self):
        dram = self.small_queue(DropPolicy.LOW_PRIORITY_FIRST)
        # Fill the queue with C1 prefetches.
        dram.read(0, now=0, is_prefetch=True, component="C1")
        dram.read(2, now=0, is_prefetch=True, component="C1")
        # Incoming high-priority prefetch displaces a queued C1.
        result = dram.read(4, now=0, is_prefetch=True, component="T2")
        assert result is not None
        assert dram.stats.dropped_prefetches == 1

    def test_low_priority_incoming_c1_dropped(self):
        dram = self.small_queue(DropPolicy.LOW_PRIORITY_FIRST)
        dram.read(0, now=0, is_prefetch=True, component="T2")
        dram.read(2, now=0, is_prefetch=True, component="T2")
        result = dram.read(4, now=0, is_prefetch=True, component="C1")
        assert result is None

    def test_queue_drains_over_time(self):
        dram = self.small_queue(DropPolicy.RANDOM)
        completion = dram.read(0, now=0)
        assert dram.queue_occupancy(0, now=0) == 1
        assert dram.queue_occupancy(0, now=completion + 1) == 0


class TestAddressMapping:
    def test_adjacent_lines_interleave_channels(self):
        dram = Dram(DramConfig(channels=2))
        assert dram._map(0)[0] != dram._map(1)[0]

    def test_same_line_same_bank(self):
        dram = Dram()
        assert dram._map(12345) == dram._map(12345)
