"""Unit tests for SPP, VLDP, BOP, FDP, SMS, and AMPM."""

from conftest import feed_stream, make_event, requested_lines

from repro.baselines.ampm import AmpmPrefetcher
from repro.baselines.bop import BopPrefetcher
from repro.baselines.fdp import FdpPrefetcher
from repro.baselines.sms import SmsPrefetcher
from repro.baselines.spp import SppPrefetcher
from repro.baselines.vldp import VldpPrefetcher


class TestSpp:
    def test_learns_unit_delta_within_page(self):
        pf = SppPrefetcher()
        # Train one page, then start a second page with the same pattern.
        requests = feed_stream(pf, [i * 64 for i in range(30)])
        requests += feed_stream(pf, [0x10000 + i * 64 for i in range(10)])
        assert requests

    def test_stops_at_page_boundary(self):
        pf = SppPrefetcher()
        requests = feed_stream(pf, [i * 64 for i in range(80)])
        for r in requests:
            # All prefetches land inside some 4 KB page of the stream.
            assert r.line < 4096

    def test_filter_suppresses_duplicates(self):
        pf = SppPrefetcher()
        requests = feed_stream(pf, [i * 64 for i in range(40)])
        lines = [r.line for r in requests]
        assert len(lines) == len(set(lines))

    def test_signature_tables_bounded(self):
        pf = SppPrefetcher(signature_entries=4, pattern_entries=8)
        import random
        rng = random.Random(1)
        feed_stream(pf, [rng.randrange(1 << 18) * 64 for _ in range(200)])
        assert len(pf._signatures) <= 4
        assert len(pf._patterns) <= 8

    def test_reset(self):
        pf = SppPrefetcher()
        feed_stream(pf, [i * 64 for i in range(40)])
        pf.reset()
        assert not pf._signatures and not pf._patterns


class TestVldp:
    def test_learns_repeating_delta(self):
        pf = VldpPrefetcher()
        requests = feed_stream(pf, [i * 64 for i in range(20)])
        assert requests

    def test_multi_delta_pattern(self):
        # Repeating +1,+2 line pattern inside a page.
        pf = VldpPrefetcher()
        addrs = [0]
        for i in range(18):
            addrs.append(addrs[-1] + (64 if i % 2 == 0 else 128))
        requests = feed_stream(pf, addrs)
        assert requests

    def test_opt_first_touch_prediction(self):
        pf = VldpPrefetcher()
        # Several pages starting at offset 0 then moving +1 line teach
        # the OPT that offset 0 -> delta 1.
        for page in range(6):
            base = page * 0x1000
            feed_stream(pf, [base, base + 64, base + 128])
        requests = pf.on_access(make_event(addr=0x100000, hit=False))
        assert requests and requests[0].line == (0x100000 >> 6) + 1

    def test_tables_bounded(self):
        pf = VldpPrefetcher(dhb_entries=4)
        feed_stream(pf, [page * 0x1000 for page in range(50)])
        assert len(pf._dhb._data) <= 4


class TestBop:
    def test_learns_best_offset(self):
        pf = BopPrefetcher()
        # Stride of 2 lines; completed prefetches train the RR table.
        # The learning round needs ~840 triggers to saturate a score.
        addrs = [i * 128 for i in range(2000)]
        for addr in addrs:
            event = make_event(addr=addr, hit=False)
            requests = pf.on_access(event)
            for r in requests or []:
                pf.on_fill(r.line, 1, prefetched=True)
        assert pf._best_offset % 2 == 0  # multiple of the 2-line stride

    def test_turns_off_on_random(self):
        import random
        rng = random.Random(3)
        pf = BopPrefetcher()
        for _ in range(3000):
            addr = rng.randrange(1 << 22) * 64
            event = make_event(addr=addr, hit=False)
            requests = pf.on_access(event)
            for r in requests or []:
                pf.on_fill(r.line, 1, prefetched=True)
        assert not pf._prefetching_on

    def test_prefetch_on_prefetched_hit(self):
        pf = BopPrefetcher()
        event = make_event(addr=0x2000, hit=True, served_by_prefetch=True)
        assert pf.on_access(event) is not None

    def test_no_trigger_on_plain_hit(self):
        pf = BopPrefetcher()
        assert pf.on_access(make_event(addr=0x2000, hit=True)) is None

    def test_rr_table_bounded(self):
        pf = BopPrefetcher(rr_entries=8)
        for i in range(100):
            pf.on_fill(i, 1, prefetched=True)
        assert len(pf._rr) <= 8


class TestFdp:
    def test_stream_training_and_prefetch(self):
        pf = FdpPrefetcher()
        requests = feed_stream(pf, [i * 64 for i in range(20)])
        assert requests
        distance, degree = pf.aggressiveness
        assert distance >= 4 and degree >= 1

    def test_aggressiveness_drops_on_poor_accuracy(self):
        pf = FdpPrefetcher(start_aggressiveness=3)
        level_before = pf._level
        # Issue many prefetches, never report a hit, cross the interval.
        feed_stream(pf, [i * 64 for i in range(3000)])
        assert pf._level <= level_before

    def test_aggressiveness_rises_on_good_accuracy(self):
        pf = FdpPrefetcher(start_aggressiveness=0)
        for i in range(3000):
            event = make_event(addr=i * 64, hit=False)
            requests = pf.on_access(event)
            for r in requests or []:
                pf.on_prefetch_hit(r.line, 1)
        assert pf._level > 0

    def test_downward_stream(self):
        pf = FdpPrefetcher()
        requests = feed_stream(pf, [0x100000 - i * 64 for i in range(20)])
        assert requests
        assert all(r.line <= 0x100000 >> 6 for r in requests)

    def test_stream_table_bounded(self):
        pf = FdpPrefetcher(streams=4)
        for i in range(20):
            feed_stream(pf, [i * 0x100000], pc=i)
        assert len(pf._streams) <= 4


class TestSms:
    def test_pattern_recorded_and_replayed(self):
        pf = SmsPrefetcher(active_entries=2)
        # Touch regions with a fixed 3-line pattern from the same PC and
        # trigger offset; regions must be touched twice to open a
        # generation (filter table).
        pattern_offsets = [0, 3, 7]
        for region in range(8):
            base = region * 2048
            for offset in pattern_offsets:
                for _ in range(2):
                    pf.on_access(make_event(pc=0x40, addr=base + offset * 64,
                                            hit=False))
        # A new region triggered by the same (pc, offset) key replays.
        requests = pf.on_access(make_event(pc=0x40, addr=0x100000,
                                           hit=False))
        if requests:  # pattern learned
            lines = requested_lines(requests)
            base_line = 0x100000 >> 6
            assert base_line + 3 in lines or base_line + 7 in lines

    def test_single_line_generations_not_stored(self):
        pf = SmsPrefetcher(active_entries=1)
        for region in range(10):
            pf.on_access(make_event(pc=0x40, addr=region * 4096, hit=False))
            pf.on_access(make_event(pc=0x40, addr=region * 4096, hit=False))
        assert not pf._pht

    def test_filter_requires_second_touch(self):
        pf = SmsPrefetcher()
        pf.on_access(make_event(pc=0x40, addr=0, hit=False))
        assert not pf._active
        pf.on_access(make_event(pc=0x40, addr=64, hit=False))
        assert pf._active


class TestAmpm:
    def test_stride_pattern_match(self):
        pf = AmpmPrefetcher(degree=2)
        requests = feed_stream(pf, [i * 64 for i in range(8)])
        assert requests
        # t-1 and t-2 accessed => t+1 predicted.
        assert all(r.line <= 16 for r in requests)

    def test_stride_2_pattern(self):
        pf = AmpmPrefetcher()
        requests = feed_stream(pf, [i * 128 for i in range(8)])
        lines = requested_lines(requests)
        assert lines
        assert all(line % 2 == 0 for line in lines)

    def test_no_duplicate_prefetches_per_zone(self):
        pf = AmpmPrefetcher()
        requests = feed_stream(pf, [i * 64 for i in range(30)])
        lines = [r.line for r in requests]
        assert len(lines) == len(set(lines))

    def test_maps_bounded(self):
        pf = AmpmPrefetcher(maps=4)
        feed_stream(pf, [i * 4096 for i in range(40)])
        assert len(pf._zones) <= 4

    def test_cross_zone_check(self):
        # Accesses near a zone boundary should not crash and may use the
        # neighbor zone's map.
        pf = AmpmPrefetcher()
        feed_stream(pf, [4096 - 128, 4096 - 64, 4096, 4096 + 64])
