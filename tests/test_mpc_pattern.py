"""End-to-end test of the mPC call-site disambiguation (paper
Sec. IV-A-2, second modification)."""

from repro.core.t2 import T2Prefetcher
from repro.engine.system import simulate
from repro.workloads import get_workload


class TestMpcDisambiguation:
    def test_two_call_sites_one_load(self):
        trace = get_workload("starbench.bodytrack").trace()
        baseline = simulate(trace)
        plain = simulate(trace, T2Prefetcher(use_mpc=False))
        mpc = simulate(trace, T2Prefetcher(use_mpc=True))

        # With plain PC the accessor's interleaved strides never
        # stabilize; with mPC both streams are covered.
        assert plain.prefetch.issued < mpc.prefetch.issued / 2
        assert mpc.l1d.demand_misses < baseline.l1d.demand_misses / 10
        assert mpc.cycles < plain.cycles

    def test_workload_exercises_calls(self):
        trace = get_workload("starbench.bodytrack").trace()
        stats = trace.stats()
        assert stats.calls > 1000
        assert stats.returns == stats.calls

    def test_ras_top_varies_across_call_sites(self):
        trace = get_workload("starbench.bodytrack").trace()
        accessor_loads = {}
        for record in trace.records:
            if record.is_load and record.ras_top:
                accessor_loads.setdefault(record.pc, set()).add(
                    record.ras_top
                )
        # The shared accessor load sees two distinct return addresses.
        assert any(len(tops) == 2 for tops in accessor_loads.values())
