"""Tests for the OoO timing model and the multicore harness."""

import pytest

from repro.engine.config import SystemConfig
from repro.engine.multicore import simulate_multicore
from repro.engine.ooo import OoOCore
from repro.engine.system import simulate
from repro.isa import Assembler, Machine
from repro.memory.hierarchy import Hierarchy
from repro.core.base import NullPrefetcher


def run_trace(trace, config=None):
    config = config or SystemConfig()
    hierarchy = Hierarchy(config)
    core = OoOCore(trace, hierarchy, NullPrefetcher(), config.core)
    return core.run(), hierarchy


def small_program(body):
    asm = Assembler()
    body(asm)
    asm.halt()
    return Machine(max_instructions=100_000).run(asm.assemble())


class TestPipelineWidth:
    def test_independent_alu_ipc_near_width(self):
        def body(asm):
            asm.movi("r1", 0)
            asm.movi("r2", 5000)
            loop = asm.label()
            # Independent ALU ops on distinct registers.
            asm.movi("r3", 1)
            asm.movi("r4", 2)
            asm.addi("r1", "r1", 1)
            asm.blt("r1", "r2", loop)

        trace = small_program(body)
        stats, _ = run_trace(trace)
        assert stats.ipc > 2.0

    def test_dependent_chain_ipc_near_one(self):
        def body(asm):
            asm.movi("r1", 0)
            asm.movi("r2", 10000)
            loop = asm.label()
            asm.addi("r3", "r3", 1)   # serial dependency
            asm.addi("r3", "r3", 1)
            asm.addi("r3", "r3", 1)
            asm.addi("r1", "r1", 1)
            asm.blt("r1", "r2", loop)

        trace = small_program(body)
        stats, _ = run_trace(trace)
        # 5 instructions per iteration, 3 serial cycles: IPC ~1.67, well
        # below the 4-wide machine's peak.
        assert stats.ipc < 2.0


class TestMemoryBehavior:
    def test_load_latency_reflected_in_cycles(self, strided_trace):
        stats, hierarchy = run_trace(strided_trace)
        assert stats.loads > 0
        assert stats.average_load_latency > 3  # misses mixed in
        assert hierarchy.l1d.stats.demand_misses > 0

    def test_mlp_overlaps_independent_misses(self):
        # Independent loads to distinct lines should overlap: total time
        # far less than misses * latency.
        def body(asm):
            asm.movi("r1", 0x100000)
            asm.movi("r2", 0x100000 + 4000 * 64)
            loop = asm.label()
            asm.load("r3", "r1", 0)
            asm.addi("r1", "r1", 64)
            asm.blt("r1", "r2", loop)

        trace = small_program(body)
        stats, hierarchy = run_trace(trace)
        misses = hierarchy.l1d.stats.demand_misses
        assert misses >= 3900
        serial_cycles = misses * 150
        assert stats.cycles < serial_cycles / 3

    def test_dependent_misses_serialize(self):
        # A pointer chain cannot overlap its misses.
        import random
        rng = random.Random(4)
        asm = Assembler()
        nodes = 2000
        addrs = [0x200000 + i * 64 for i in range(nodes)]
        rng.shuffle(addrs)
        for i in range(nodes - 1):
            asm.data(addrs[i], addrs[i + 1])
        asm.data(addrs[-1], 0)
        asm.movi("r1", addrs[0])
        loop = asm.label()
        asm.load("r1", "r1", 0)
        asm.bne("r1", "r0", loop)
        asm.halt()
        trace = Machine(max_instructions=100_000).run(asm.assemble())
        stats, hierarchy = run_trace(trace)
        misses = hierarchy.l1d.stats.demand_misses
        assert stats.cycles > misses * 50  # mostly serialized


class TestBranches:
    def test_loop_branches_predicted(self):
        def body(asm):
            asm.movi("r1", 0)
            asm.movi("r2", 1000)
            loop = asm.label()
            asm.addi("r1", "r1", 1)
            asm.blt("r1", "r2", loop)

        trace = small_program(body)
        stats, _ = run_trace(trace)
        # Backward-taken prediction: only the final fall-through mispredicts.
        assert stats.mispredicts == 1

    def test_alternating_branch_penalized(self):
        def body(asm):
            asm.movi("r1", 0)
            asm.movi("r2", 2000)
            asm.movi("r5", 2)
            loop = asm.label()
            asm.andi("r3", "r1", 1)
            skip = asm.future_label()
            asm.beq("r3", "r0", skip)    # forward, taken every other time
            asm.addi("r4", "r4", 1)
            asm.place(skip)
            asm.addi("r1", "r1", 1)
            asm.blt("r1", "r2", loop)

        trace = small_program(body)
        stats, _ = run_trace(trace)
        assert stats.mispredicts > 500


class TestRob:
    def test_smaller_rob_never_faster(self, strided_trace):
        big = SystemConfig()
        import dataclasses
        small = dataclasses.replace(
            big, core=dataclasses.replace(big.core, rob_entries=16)
        )
        stats_big, _ = run_trace(strided_trace, big)
        stats_small, _ = run_trace(strided_trace, small)
        assert stats_small.cycles >= stats_big.cycles


class TestSimulateApi:
    def test_simulate_defaults(self, strided_trace):
        result = simulate(strided_trace)
        assert result.prefetcher == "none"
        assert result.workload == strided_trace.name
        assert result.ipc > 0
        assert result.l1_mpki > 0

    def test_speedup_over_self_is_one(self, strided_trace):
        result = simulate(strided_trace)
        assert result.speedup_over(result) == pytest.approx(1.0)


class TestMulticore:
    def test_four_cores_complete(self, strided_trace):
        traces = [strided_trace] * 4
        result = simulate_multicore(traces)
        assert len(result.per_core) == 4
        for core in result.per_core:
            assert core.core.instructions == len(strided_trace)

    def test_shared_l3_contention_slows_cores(self, strided_trace):
        alone = simulate(strided_trace)
        shared = simulate_multicore([strided_trace] * 4)
        # Sharing bandwidth can only hurt (or equal).
        for core in shared.per_core:
            assert core.cycles >= alone.cycles * 0.95

    def test_weighted_speedup_of_identical_runs(self, strided_trace):
        shared = simulate_multicore([strided_trace] * 2)
        alone = [simulate(strided_trace), simulate(strided_trace)]
        ws = shared.weighted_speedup(alone)
        assert 0 < ws <= 2.0 + 1e-9

    def test_prefetcher_count_validation(self, strided_trace):
        with pytest.raises(ValueError):
            simulate_multicore([strided_trace], [NullPrefetcher()] * 2)
