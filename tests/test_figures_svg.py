"""Tests for the SVG figure pipeline helpers."""

from repro.experiments import figures_svg
from repro.experiments.scatter import ScatterPoint, ScatterSeries


class TestScatterConversion:
    def test_series_converted(self):
        series = [
            ScatterSeries(
                prefetcher="tpc",
                points=[
                    ScatterPoint("tpc", "app1", 0.9, 0.95, 10.0),
                    ScatterPoint("tpc", "app2", 0.8, 0.85, 5.0),
                ],
            )
        ]
        converted = figures_svg._scatter_series(series)
        assert converted[0].label == "tpc"
        assert converted[0].points == [(0.9, 0.95, 10.0), (0.8, 0.85, 5.0)]

    def test_generate_writes_files(self, tmp_path, monkeypatch):
        # Stub out the heavy experiment runs with canned results.
        from repro.experiments import fig01, fig08, fig09, fig10, fig15
        from repro.experiments import fig16

        def fake_scatter(runner=None, apps=None, prefetchers=None):
            return [
                ScatterSeries(
                    prefetcher="x",
                    points=[ScatterPoint("x", "a", 0.5, 0.5, 1.0)],
                )
            ]

        class FakeGrid:
            prefetchers = ["x"]

            def geomean(self, p):
                return 1.5

        from repro.experiments.fig09 import TrafficRow
        from repro.experiments.fig15 import Fig15Row
        from repro.experiments.fig16 import Fig16Row

        monkeypatch.setattr(fig01, "run", fake_scatter)
        monkeypatch.setattr(fig10, "run", fake_scatter)
        monkeypatch.setattr(fig08, "run", lambda runner=None: FakeGrid())
        monkeypatch.setattr(
            fig09, "run",
            lambda runner=None: [TrafficRow("x", 1.1, 1.0, 1.3)],
        )
        monkeypatch.setattr(
            fig15, "run",
            lambda runner=None: [
                Fig15Row("x", "composite", 1.02, 1.0, 1.1),
                Fig15Row("x", "shunt", 0.97, 0.9, 1.0),
            ],
        )
        monkeypatch.setattr(
            fig16, "run",
            lambda runner=None: [
                Fig16Row("tpc", "L1", 1.4, 1.0, 2.0),
                Fig16Row("tpc", "L2", 1.3, 1.0, 1.9),
                Fig16Row("tpc", "stratified", 1.45, 1.0, 2.0),
            ],
        )
        written = figures_svg.generate(str(tmp_path))
        assert len(written) == 6
        for path in written:
            content = open(path).read()
            assert content.startswith("<svg")
