"""Tests for the branch predictors and their core integration."""

import dataclasses

import pytest

from repro.engine.branch import (
    GsharePredictor,
    LoopPredictor,
    StaticPredictor,
    make_predictor,
)
from repro.engine.config import SystemConfig


class TestStatic:
    def test_backward_taken(self):
        predictor = StaticPredictor()
        assert predictor.predict(pc=100, target_pc=50)
        assert not predictor.predict(pc=100, target_pc=200)


class TestLoopPredictor:
    def feed_loop(self, predictor, pc, trip_count, repetitions):
        for _ in range(repetitions):
            for i in range(trip_count):
                taken = i < trip_count - 1
                predictor.update(pc, taken)

    def test_learns_fixed_trip_count(self):
        predictor = LoopPredictor()
        self.feed_loop(predictor, pc=0x40, trip_count=5, repetitions=4)
        # 5th iteration predicted not-taken, earlier ones taken.
        for i in range(4):
            assert predictor.predict(0x40) is True
            predictor.update(0x40, True)
        assert predictor.predict(0x40) is False

    def test_no_prediction_before_confidence(self):
        predictor = LoopPredictor(confidence_threshold=2)
        self.feed_loop(predictor, pc=0x40, trip_count=5, repetitions=1)
        assert predictor.predict(0x40) is None

    def test_changing_trip_count_resets(self):
        predictor = LoopPredictor()
        self.feed_loop(predictor, pc=0x40, trip_count=5, repetitions=3)
        self.feed_loop(predictor, pc=0x40, trip_count=9, repetitions=1)
        assert predictor.predict(0x40) is None

    def test_table_bounded(self):
        predictor = LoopPredictor(entries=4)
        for pc in range(20):
            predictor.update(pc, True)
        assert len(predictor._table) <= 4


class TestGshare:
    def test_learns_biased_branch(self):
        predictor = GsharePredictor()
        for _ in range(20):
            predictor.update(0x80, 0x40, True)
        assert predictor.predict(0x80, 0x40)

    def test_learns_alternating_with_history(self):
        predictor = GsharePredictor(history_bits=8)
        # Alternating pattern becomes predictable via global history.
        correct = 0
        taken = True
        for i in range(400):
            prediction = predictor.predict(0x80, 0x40)
            if prediction == taken:
                correct += 1
            predictor.update(0x80, 0x40, taken)
            taken = not taken
        assert correct > 300  # static BTFN would get ~50%

    def test_loop_exit_predicted(self):
        predictor = GsharePredictor()
        for _ in range(6):
            for i in range(7):
                predictor.update(0x80, 0x40, i < 6)
        for i in range(6):
            assert predictor.predict(0x80, 0x40) is True
            predictor.update(0x80, 0x40, True)
        assert predictor.predict(0x80, 0x40) is False

    def test_factory(self):
        assert make_predictor("static").name == "static"
        assert make_predictor("gshare").name == "gshare"
        with pytest.raises(ValueError):
            make_predictor("tage9000")


class TestCoreIntegration:
    def test_gshare_not_worse_on_loops(self, strided_trace):
        from repro.engine.system import simulate
        static_config = SystemConfig()
        gshare_config = dataclasses.replace(
            static_config,
            core=dataclasses.replace(static_config.core,
                                     branch_predictor="gshare"),
        )
        static_result = simulate(strided_trace, config=static_config)
        gshare_result = simulate(strided_trace, config=gshare_config)
        assert (
            gshare_result.core.mispredicts
            <= static_result.core.mispredicts + 2
        )

    def test_gshare_beats_static_on_alternating(self):
        from repro.engine.system import simulate
        from repro.isa import Assembler, Machine

        asm = Assembler()
        asm.movi("r1", 0)
        asm.movi("r2", 4000)
        loop = asm.label()
        asm.andi("r3", "r1", 1)
        skip = asm.future_label()
        asm.beq("r3", "r0", skip)
        asm.addi("r4", "r4", 1)
        asm.place(skip)
        asm.addi("r1", "r1", 1)
        asm.blt("r1", "r2", loop)
        asm.halt()
        trace = Machine(max_instructions=100_000).run(asm.assemble())

        static_config = SystemConfig()
        gshare_config = dataclasses.replace(
            static_config,
            core=dataclasses.replace(static_config.core,
                                     branch_predictor="gshare"),
        )
        static_result = simulate(trace, config=static_config)
        gshare_result = simulate(trace, config=gshare_config)
        assert gshare_result.core.mispredicts < \
            static_result.core.mispredicts / 2
        assert gshare_result.cycles < static_result.cycles
