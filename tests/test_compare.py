"""Tests for the result-diff / regression-detection utilities."""

import pytest

from repro.analysis.compare import (
    Movement,
    SuiteDiff,
    diff,
    diff_suite,
    render,
)
from repro.engine.system import simulate
from repro.prefetcher_registry import make_prefetcher


class TestDiff:
    def test_diff_same_workload(self, strided_trace):
        before = simulate(strided_trace)
        after = simulate(strided_trace, make_prefetcher("tpc"))
        result_diff = diff(before, after)
        assert result_diff.speedup > 1.0
        assert result_diff.movement() is Movement.IMPROVED
        assert result_diff.misses_after < result_diff.misses_before

    def test_identical_runs_unchanged(self, strided_trace):
        a = simulate(strided_trace)
        b = simulate(strided_trace)
        assert diff(a, b).movement() is Movement.UNCHANGED

    def test_workload_mismatch_rejected(self, strided_trace, chain_trace):
        a = simulate(strided_trace)
        b = simulate(chain_trace)
        with pytest.raises(ValueError):
            diff(a, b)


class TestSuiteDiff:
    def build(self, strided_trace, chain_trace):
        before = {
            "strided": simulate(strided_trace),
            "chain": simulate(chain_trace),
        }
        after = {
            "strided": simulate(strided_trace, make_prefetcher("tpc")),
            "chain": simulate(chain_trace, make_prefetcher("tpc")),
        }
        # keys are workload names inside the results
        before = {r.workload: r for r in before.values()}
        after = {r.workload: r for r in after.values()}
        return diff_suite(before, after)

    def test_geomean_and_buckets(self, strided_trace, chain_trace):
        suite_diff = self.build(strided_trace, chain_trace)
        assert suite_diff.geomean_speedup > 1.0
        buckets = suite_diff.by_movement()
        assert len(buckets[Movement.IMPROVED]) >= 1
        assert not suite_diff.has_regressions

    def test_render(self, strided_trace, chain_trace):
        out = render(self.build(strided_trace, chain_trace))
        assert "geomean speedup" in out
        assert "regressions: 0" in out

    def test_common_keys_only(self, strided_trace):
        a = simulate(strided_trace)
        suite_diff = diff_suite({a.workload: a, "ghost": a},
                                {a.workload: a})
        assert len(suite_diff.diffs) == 1

    def test_empty_suite(self):
        suite_diff = SuiteDiff(diffs=[])
        assert suite_diff.geomean_speedup == 0.0
        assert not suite_diff.has_regressions
