"""Unit tests for the stride, next-line, and GHB PC/DC baselines."""

from conftest import feed_stream, make_event, requested_lines

from repro.baselines.ghb import GhbPcDcPrefetcher
from repro.baselines.nextline import NextLinePrefetcher
from repro.baselines.stride import StridePrefetcher


class TestStride:
    def test_learns_constant_stride(self):
        pf = StridePrefetcher(degree=2)
        requests = feed_stream(pf, [i * 64 for i in range(10)])
        lines = requested_lines(requests)
        assert lines  # prefetches issued after confidence builds
        # Targets are strictly ahead of the trigger addresses.
        assert all(line >= 3 for line in lines)

    def test_no_prefetch_on_random(self):
        import random
        rng = random.Random(0)
        pf = StridePrefetcher()
        requests = feed_stream(
            pf, [rng.randrange(1 << 20) * 64 for _ in range(50)]
        )
        assert requests == []

    def test_distinct_pcs_tracked_separately(self):
        pf = StridePrefetcher(degree=1)
        a = feed_stream(pf, [i * 64 for i in range(8)], pc=0x10)
        b = feed_stream(pf, [0x900000 + i * 128 for i in range(8)], pc=0x20)
        assert requested_lines(a).isdisjoint(requested_lines(b))

    def test_table_capacity_evicts_lru(self):
        pf = StridePrefetcher(table_entries=2)
        feed_stream(pf, [0], pc=0x10)
        feed_stream(pf, [64], pc=0x20)
        feed_stream(pf, [128], pc=0x30)  # evicts pc 0x10
        assert len(pf._table) == 2
        assert 0x10 not in pf._table

    def test_negative_stride(self):
        pf = StridePrefetcher(degree=1)
        requests = feed_stream(
            pf, [0x10000 - i * 64 for i in range(10)]
        )
        assert requests
        assert all(r.line < 0x10000 >> 6 for r in requests)

    def test_zero_stride_ignored(self):
        pf = StridePrefetcher()
        requests = feed_stream(pf, [0x1000] * 20)
        assert requests == []

    def test_storage_bits_positive(self):
        assert StridePrefetcher().storage_bits > 0

    def test_reset_clears_state(self):
        pf = StridePrefetcher()
        feed_stream(pf, [i * 64 for i in range(10)])
        pf.reset()
        assert len(pf._table) == 0


class TestNextLine:
    def test_prefetches_next_line_on_miss(self):
        pf = NextLinePrefetcher(degree=1)
        requests = pf.on_access(make_event(addr=0x1000, hit=False))
        assert requested_lines(requests) == {(0x1000 >> 6) + 1}

    def test_no_prefetch_on_hit_by_default(self):
        pf = NextLinePrefetcher()
        assert pf.on_access(make_event(addr=0x1000, hit=True)) is None

    def test_degree(self):
        pf = NextLinePrefetcher(degree=3)
        requests = pf.on_access(make_event(addr=0, hit=False))
        assert requested_lines(requests) == {1, 2, 3}

    def test_all_accesses_mode(self):
        pf = NextLinePrefetcher(on_miss_only=False)
        assert pf.on_access(make_event(addr=0x1000, hit=True))


class TestGhbPcDc:
    def test_constant_stride_replay(self):
        pf = GhbPcDcPrefetcher(degree=2)
        requests = feed_stream(pf, [i * 128 for i in range(12)])
        assert requests
        # Deltas of 2 lines: predictions continue the pattern.
        lines = requested_lines(requests)
        assert all(line % 2 == 0 for line in lines)

    def test_delta_pair_correlation(self):
        # Repeating delta pattern +1, +3 lines: the correlator should
        # recover it.
        pf = GhbPcDcPrefetcher(degree=2)
        addrs = [0]
        for i in range(16):
            addrs.append(addrs[-1] + (64 if i % 2 == 0 else 192))
        requests = feed_stream(pf, addrs)
        assert requests

    def test_hits_do_not_train(self):
        pf = GhbPcDcPrefetcher()
        requests = feed_stream(
            pf, [i * 64 for i in range(20)], hit_after=0
        )
        assert requests == []

    def test_short_history_no_prediction(self):
        pf = GhbPcDcPrefetcher()
        assert feed_stream(pf, [0, 64, 128]) == []

    def test_ghb_wraps_without_error(self):
        pf = GhbPcDcPrefetcher(ghb_entries=16)
        feed_stream(pf, [i * 64 for i in range(100)])

    def test_index_table_bounded(self):
        pf = GhbPcDcPrefetcher(index_entries=4)
        for pc in range(10):
            feed_stream(pf, [pc * 0x10000], pc=pc)
        assert len(pf._index) <= 4

    def test_reset(self):
        pf = GhbPcDcPrefetcher()
        feed_stream(pf, [i * 64 for i in range(20)])
        pf.reset()
        assert pf._sequence == 0
        assert len(pf._index) == 0
