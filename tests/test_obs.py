"""Fabric observability (docs/observability.md, "Fabric" section).

The contracts under test:

* **Deterministic span merge** — a ``--jobs 4`` sweep and a ``--jobs 1``
  sweep of the same matrix snapshot the same cell-span sequence (span
  ids, order, attempts), even though completion order differs.
* **Bit-identity** — attaching a :class:`repro.obs.FabricObs` changes
  nothing but wall clock: every figure equals the unobserved run's.
* **Metrics round-trip** — a snapshot written through a journal-resume
  cycle reads back exactly, and the resume pass is visible in it.
* **Correlation** — fault-log records carry the cell's deterministic
  span id, so ``repro events`` output lines up with ``repro trace``.
"""

from __future__ import annotations

import json

import pytest

import repro.__main__ as cli
from repro import parallel
from repro.engine.config import EXPERIMENT_CONFIG
from repro.engine.kernel import kernel_counters
from repro.experiments.runner import ExperimentRunner
from repro.faults import RetryPolicy, faultlog
from repro.log import Logger
from repro.obs import (
    FabricObs,
    cell_span_id,
    current,
    obs_enabled,
    read_metrics,
    read_spans,
    resolve_run,
)
from repro.obs.report import format_pool_report, pool_report
from repro.parallel import run_jobs, shutdown_pool
from repro.telemetry.chrome import fabric_chrome_trace

MATRIX = [
    ("spec.libquantum", "none"),
    ("spec.libquantum", "bop"),
    ("spec.astar", "none"),
    ("spec.astar", "bop"),
]


def _figures(results):
    return [
        (r.core.cycles, r.core.instructions, r.l1d.demand_misses,
         r.dram_traffic)
        for r in results
    ]


def _cell_sequence(obs):
    return [
        (r["span"], r["workload"], r["component"], r["level"], r["kind"])
        for r in obs.records() if r["kind"] == "cell"
    ]


@pytest.fixture(scope="module")
def sweeps():
    """One plain run, one observed serial run, one observed pool run."""
    mp = pytest.MonkeyPatch()
    mp.setenv(faultlog.FAULT_LOG_ENV, "")
    try:
        plain = run_jobs(MATRIX, EXPERIMENT_CONFIG, 1)
        serial_obs = FabricObs("sweep-test")
        serial = run_jobs(MATRIX, EXPERIMENT_CONFIG, 1, obs=serial_obs)
        serial_obs.finish()
        pool_obs = FabricObs("sweep-test")
        pooled = run_jobs(MATRIX, EXPERIMENT_CONFIG, 4, obs=pool_obs)
        pool_obs.finish()
        shutdown_pool()
        return {
            "plain": plain,
            "serial": serial, "serial_obs": serial_obs,
            "pooled": pooled, "pool_obs": pool_obs,
        }
    finally:
        mp.undo()


# ----------------------------------------------------------------------
# Deterministic span merge
# ----------------------------------------------------------------------
def test_cell_spans_identical_jobs1_vs_jobs4(sweeps):
    serial_cells = _cell_sequence(sweeps["serial_obs"])
    pool_cells = _cell_sequence(sweeps["pool_obs"])
    assert serial_cells == pool_cells
    assert len(serial_cells) == len(MATRIX)
    # Deterministic ids: pure functions of cell identity.
    assert set(s[0] for s in serial_cells) == {
        cell_span_id(w, p, "", 0) for w, p in MATRIX
    }


def test_pool_spans_carry_worker_lanes_and_kernels(sweeps):
    records = sweeps["pool_obs"].records()
    cells = [r for r in records if r["kind"] == "cell"]
    units = [r for r in records if r["kind"] == "unit"]
    assert units, "pool sweep must emit unit spans"
    assert all(u["worker"] >= 1 for u in units)
    assert all(c["worker"] >= 1 for c in cells)
    assert all(c["kernel"] for c in cells)
    assert all(c["instructions"] > 0 for c in cells)
    # Each cell points at the unit that ran it.
    unit_ids = {u["span"] for u in units}
    assert all(c["parent"] in unit_ids for c in cells)


def test_sweep_id_stable_across_jobs(sweeps):
    assert (sweeps["serial_obs"].sweep_id
            == sweeps["pool_obs"].sweep_id)


# ----------------------------------------------------------------------
# Bit-identity: obs on == obs off
# ----------------------------------------------------------------------
def test_observed_figures_bit_identical_to_unobserved(sweeps):
    reference = _figures(sweeps["plain"])
    assert _figures(sweeps["serial"]) == reference
    assert _figures(sweeps["pooled"]) == reference


def test_obs_deactivates_after_finish(sweeps):
    assert current() is None
    # finish() is idempotent.
    sweeps["pool_obs"].finish()
    assert current() is None


# ----------------------------------------------------------------------
# Metrics registry + snapshot round-trip through journal resume
# ----------------------------------------------------------------------
def test_metrics_roundtrip_through_journal_resume(tmp_path, monkeypatch):
    monkeypatch.setenv(faultlog.FAULT_LOG_ENV,
                       str(tmp_path / "faults.jsonl"))
    cache = tmp_path / "cache"
    journal = tmp_path / "journal"

    cold_obs = FabricObs("resume-test")
    cold = ExperimentRunner(cache_dir=cache, journal_dir=journal,
                            jobs=1, obs=cold_obs)
    for workload, spec in MATRIX:
        cold.run(workload, spec)
    cold_obs.finish()
    cold_snapshot = cold_obs.metrics.snapshot()
    assert cold_snapshot["counters"]["result_cache.put"] == len(MATRIX)

    warm_obs = FabricObs("resume-test")
    warm = ExperimentRunner(cache_dir=cache, journal_dir=journal,
                            jobs=1, obs=warm_obs)
    for workload, spec in MATRIX:
        warm.run(workload, spec)
    warm_obs.finish()
    assert warm.counters["resume_hits"] == len(MATRIX)
    assert warm.counters["simulated"] == 0

    snapshot = warm_obs.metrics.snapshot()
    assert snapshot["counters"]["runner.resume_hits"] == len(MATRIX)
    assert snapshot["counters"]["result_cache.disk_hit"] == len(MATRIX)
    assert snapshot["counters"]["faults.resume_hit"] == len(MATRIX)
    resumes = [r for r in warm_obs.records()
               if r["kind"] == "journal_resume"]
    assert len(resumes) == len(MATRIX)

    out = warm_obs.write(runs_dir=tmp_path / "runs")
    assert (out / "spans.jsonl").is_file()
    assert read_metrics(out / "metrics.json") == snapshot
    # The JSONL snapshot reads back record-for-record too.
    assert read_spans(out / "spans.jsonl") == warm_obs.records()


def test_kernel_counters_track_selection(sweeps):
    counters = kernel_counters()
    assert any(name.startswith("selected.") for name in counters)
    assert any(name.startswith("compiled.") for name in counters)


# ----------------------------------------------------------------------
# Fault-log correlation
# ----------------------------------------------------------------------
def test_fault_records_carry_cell_span_ids(tmp_path, monkeypatch):
    log = tmp_path / "faults.jsonl"
    monkeypatch.setenv(faultlog.FAULT_LOG_ENV, str(log))
    faultlog.log_fault(faultlog.CELL_RETRY, workload="w", spec="s",
                       tag="", attempt=1,
                       span=cell_span_id("w", "s", "", 0))
    record = json.loads(log.read_text().splitlines()[-1])
    assert record["span"] == "cell:w/s@0"


def test_serial_retry_tags_faults_and_spans(tmp_path, monkeypatch):
    monkeypatch.setenv(faultlog.FAULT_LOG_ENV,
                       str(tmp_path / "faults.jsonl"))
    marker = tmp_path / "attempted"

    def flaky():
        from repro.prefetcher_registry import make_prefetcher

        if not marker.exists():
            marker.write_text("x")
            raise RuntimeError("injected first-attempt failure")
        return make_prefetcher("none")

    flaky.cache_key = "obs-flaky-spec"
    obs = FabricObs("retry-test")
    policy = RetryPolicy(max_attempts=3, backoff_seconds=0.01)
    results = run_jobs([("spec.libquantum", flaky)], EXPERIMENT_CONFIG, 1,
                       policy=policy, obs=obs)
    obs.finish()
    assert not hasattr(results[0], "error")

    cells = [r for r in obs.records() if r["kind"] == "cell"]
    assert [c["level"] for c in cells] == [0, 1]
    assert "error" in cells[0]
    waits = [r for r in obs.records() if r["kind"] == "retry_wait"]
    assert len(waits) == 1
    assert obs.metrics.snapshot()["counters"]["faults.cell_retry"] == 1

    log_records = [json.loads(line) for line in
                   (tmp_path / "faults.jsonl").read_text().splitlines()]
    retries = [r for r in log_records if r["kind"] == "cell_retry"]
    assert retries[0]["span"] == cells[0]["span"]


# ----------------------------------------------------------------------
# Chrome export + pool report
# ----------------------------------------------------------------------
def test_fabric_chrome_trace_one_lane_per_worker(sweeps):
    obs = sweeps["pool_obs"]
    trace = fabric_chrome_trace(obs.records())
    metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    lanes = {e["tid"]: e["args"]["name"] for e in metadata}
    workers = {r["worker"] for r in obs.records() if r["worker"] > 0}
    assert lanes[0] == "parent"
    assert {t for t in lanes if t > 0} == workers
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == len(obs.records())
    assert all(e["dur"] >= 1 for e in slices)
    cell_names = {e["name"] for e in slices if e["name"].startswith("spec.")}
    assert f"{MATRIX[0][0]}/{MATRIX[0][1]}" in cell_names


def test_pool_report_attributes_stragglers(sweeps):
    report = pool_report(sweeps["pool_obs"].records())
    assert report["mode"] == "pool"
    assert report["cells"] == len(MATRIX)
    assert report["workers"]
    assert report["straggler_worker"] in report["workers"]
    for entry in report["workers"].values():
        assert entry["busy_seconds"] > 0
        assert 0.0 <= entry["idle_fraction"] <= 1.0
    critical = report["critical_cell"]
    assert (critical["workload"], critical["spec"]) in MATRIX
    text = format_pool_report(report)
    assert "straggler" in text and "critical-path cell" in text

    serial_report = pool_report(sweeps["serial_obs"].records())
    assert serial_report["mode"] == "serial"
    # The serial fallback still gets one pseudo-lane (instead of an
    # empty workers table) and never names a straggler.
    assert list(serial_report["workers"]) == ["serial"]
    assert serial_report["workers"]["serial"]["cells"] == len(MATRIX)
    assert serial_report["workers"]["serial"]["busy_seconds"] > 0
    assert serial_report["straggler_worker"] is None
    assert "serial lane" in format_pool_report(serial_report)


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
def test_cli_trace_and_metrics_verbs(sweeps, tmp_path, capsys):
    runs = tmp_path / "runs"
    out = sweeps["pool_obs"].write(runs_dir=runs)

    cli.main(["trace", str(out), "--chrome",
              str(tmp_path / "trace.json")])
    shown = capsys.readouterr()
    assert "critical-path cell" in shown.out
    trace = json.loads((tmp_path / "trace.json").read_text())
    assert any(e["ph"] == "X" for e in trace["traceEvents"])

    cli.main(["metrics", str(out / "metrics.json")])
    shown = capsys.readouterr()
    assert "pool.workers" in shown.out
    # Replay-kernel counters are mirrored into the registry, so a sweep
    # can show its plans were memoized rather than rebuilt per cell.
    assert "kernel.plan_builds" in shown.out
    assert "kernel.plan_cache_hits" in shown.out

    # `events` reads the span stream unchanged (schema superset).
    cli.main(["events", str(out / "spans.jsonl"), "--kind", "cell"])
    shown = capsys.readouterr()
    assert "total" in shown.out

    assert resolve_run(str(out)) == out / "spans.jsonl"
    with pytest.raises(SystemExit):
        resolve_run("no-such-run", runs_dir=str(tmp_path / "empty"))


def test_obs_enabled_env_contract(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    assert not obs_enabled(1)
    assert obs_enabled(4)
    monkeypatch.setenv("REPRO_OBS", "0")
    assert not obs_enabled(4)
    monkeypatch.setenv("REPRO_OBS", "1")
    assert obs_enabled(1)


# ----------------------------------------------------------------------
# Leveled logger
# ----------------------------------------------------------------------
def test_logger_modes(monkeypatch, capsys):
    import io

    stream = io.StringIO()
    log = Logger("t", stream=stream)

    monkeypatch.setenv("REPRO_LOG", "text")
    log.info("hello", cells=4)
    assert stream.getvalue() == "hello cells=4\n"

    stream.truncate(0)
    stream.seek(0)
    monkeypatch.setenv("REPRO_LOG", "quiet")
    log.info("suppressed")
    log.error("shown")
    assert stream.getvalue() == "shown\n"

    stream.truncate(0)
    stream.seek(0)
    monkeypatch.setenv("REPRO_LOG", "json")
    log.info("structured", jobs=2)
    record = json.loads(stream.getvalue())
    assert record["level"] == "info"
    assert record["logger"] == "t"
    assert record["msg"] == "structured"
    assert record["jobs"] == 2
    assert "ts" in record


def test_bench_quick_json_progress(monkeypatch, capsys):
    # The bench CLI narrates through the leveled logger; json mode must
    # yield machine-parseable progress lines.  (Smoke: argument wiring
    # only, not a timed benchmark.)
    from repro.log import LOG_ENV, log_mode

    monkeypatch.setenv(LOG_ENV, "json")
    assert log_mode() == "json"
    monkeypatch.setenv(LOG_ENV, "bogus")
    assert log_mode() == "text"


# ----------------------------------------------------------------------
# Runner integration: obs'd prefill over the pool
# ----------------------------------------------------------------------
def test_runner_prefill_threads_obs_through_pool(tmp_path, monkeypatch):
    monkeypatch.setenv(faultlog.FAULT_LOG_ENV, "")
    obs = FabricObs("prefill-test")
    runner = ExperimentRunner(cache_dir=tmp_path / "cache", jobs=4,
                              obs=obs)
    stored = runner.prefill(MATRIX)
    obs.finish()
    shutdown_pool()
    assert stored == len(MATRIX)
    cells = [r for r in obs.records() if r["kind"] == "cell"]
    assert len(cells) == len(MATRIX)
    puts = [r for r in obs.records() if r["kind"] == "cache_put"]
    gets = [r for r in obs.records() if r["kind"] == "cache_get"]
    assert len(puts) == len(MATRIX)
    assert len(gets) == len(MATRIX)
    assert all(g["hit"] is False for g in gets)
    snapshot = obs.metrics.snapshot()
    assert snapshot["counters"]["result_cache.disk_miss"] == len(MATRIX)
    assert snapshot["gauges"]["pool.workers"] >= 1


def test_bench_parallel_reports_workers(monkeypatch):
    monkeypatch.setenv(faultlog.FAULT_LOG_ENV, "")
    from repro.bench import bench_parallel

    # Pin the pool path: this test is about per-worker reporting, so
    # the low-CPU/small-matrix serial fallback must not preempt it.
    monkeypatch.setattr(parallel, "serial_fallback_reason",
                        lambda *args: None)
    section = bench_parallel(MATRIX, EXPERIMENT_CONFIG, 4,
                             serial_seconds=1.0)
    shutdown_pool()
    assert section["jobs"] == 4
    assert section["cpus"] >= 1
    assert section["workers"], "per-worker busy/idle must be recorded"
    for entry in section["workers"].values():
        assert {"busy_seconds", "idle_seconds",
                "idle_fraction"} <= set(entry)
    assert "critical_cell" in section["utilization"]
    assert parallel.pool_workers() == 0


def test_serial_fallback_reason_thresholds(monkeypatch):
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
    assert parallel.serial_fallback_reason(2, 4) is not None  # tiny matrix
    assert parallel.serial_fallback_reason(8, 4) is None
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)
    assert parallel.serial_fallback_reason(8, 4) is not None


def test_bench_parallel_serial_fallback_recorded(monkeypatch):
    """When the host/matrix cannot amortize the pool, the parallel pass
    runs serially and records it — check_regression reads the marker to
    skip the speedup gate instead of failing it."""
    monkeypatch.setenv(faultlog.FAULT_LOG_ENV, "")
    from repro.bench import bench_parallel

    monkeypatch.setattr(parallel, "serial_fallback_reason",
                        lambda *args: "host has 1 cpu(s)")
    section = bench_parallel(MATRIX, EXPERIMENT_CONFIG, 4,
                             serial_seconds=1.0)
    shutdown_pool()
    assert section["fallback"] == "serial"
    assert section["fallback_reason"] == "host has 1 cpu(s)"
    assert parallel.pool_workers() == 0
