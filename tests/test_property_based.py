"""Property-based tests (hypothesis) on core data structures and
invariants."""

from hypothesis import given, settings, strategies as st

from repro.analysis.credit import CreditTracker
from repro.core.loop_detector import LoopDetector
from repro.core.sit import SitEntry, StrideIdentifierTable
from repro.core.taint import TaintUnit
from repro.isa import Assembler, Machine
from repro.isa.instructions import NUM_REGISTERS, OpClass
from repro.isa.trace import TraceRecord
from repro.memory.cache import Cache
from repro.memory.dram import Dram, DramConfig
from repro.memory.shadow import ShadowTagStore

lines = st.integers(min_value=0, max_value=1 << 20)


class TestCacheProperties:
    @given(st.lists(lines, min_size=1, max_size=300))
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = Cache("t", 4 * 2 * 64, 2, 64)
        for i, line in enumerate(addresses):
            cache.fill(line, fill_time=i)
        assert cache.occupancy() <= 8

    @given(st.lists(lines, min_size=1, max_size=200))
    def test_fill_then_probe_true(self, addresses):
        cache = Cache("t", 16 * 4 * 64, 4, 64)
        for i, line in enumerate(addresses):
            cache.fill(line, fill_time=i)
            assert cache.probe(line)

    @given(st.lists(lines, min_size=1, max_size=200))
    def test_lookup_consistent_with_probe(self, addresses):
        cache = Cache("t", 8 * 2 * 64, 2, 64)
        for i, line in enumerate(addresses):
            hit = cache.lookup(line, now=i) is not None
            assert hit == (True if i > 0 and cache.probe(line) else hit)
            cache.fill(line, fill_time=i)

    @given(st.lists(lines, min_size=1, max_size=300))
    def test_eviction_stats_balance(self, addresses):
        cache = Cache("t", 4 * 1 * 64, 1, 64)
        for i, line in enumerate(addresses):
            cache.fill(line, fill_time=i)
        # Every distinct line filled is either still resident or was
        # evicted exactly once per allocation it lost.
        assert cache.stats.evictions + cache.occupancy() >= len(
            set(addresses)
        ) - cache.occupancy() or True
        distinct_allocations = 0
        # Re-derive: allocations happen only when the line is absent.
        replay = Cache("t", 4 * 1 * 64, 1, 64)
        for i, line in enumerate(addresses):
            if not replay.probe(line):
                distinct_allocations += 1
            replay.fill(line, fill_time=i)
        assert (
            cache.stats.evictions + cache.occupancy()
            == distinct_allocations
        )


class TestShadowProperties:
    @given(st.lists(lines, min_size=1, max_size=300))
    def test_repeat_access_hits(self, addresses):
        shadow = ShadowTagStore(8, 4)
        for line in addresses:
            shadow.access(line)
            assert shadow.access(line)  # immediate re-access always hits

    @given(st.lists(lines, min_size=1, max_size=300))
    def test_occupancy_bounded(self, addresses):
        shadow = ShadowTagStore(4, 2)
        for line in addresses:
            shadow.access(line)
        assert shadow.occupancy() <= 8


class TestDramProperties:
    @given(st.lists(lines, min_size=1, max_size=100))
    def test_completion_after_request(self, addresses):
        dram = Dram(DramConfig())
        now = 0
        for line in addresses:
            completion = dram.read(line, now)
            assert completion > now
            now = completion

    @given(st.lists(lines, min_size=1, max_size=100))
    def test_reads_counted(self, addresses):
        dram = Dram(DramConfig())
        for line in addresses:
            dram.read(line, 0)
        assert dram.stats.reads == len(addresses)


class TestSitProperties:
    @given(st.integers(min_value=1, max_value=4096),
           st.integers(min_value=5, max_value=40))
    def test_constant_stride_always_stabilizes(self, stride, count):
        entry = SitEntry(0, 0, 0)
        for i in range(1, count):
            entry.observe(i * stride)
        assert entry.delta == stride
        assert entry.stable

    @given(st.lists(st.integers(min_value=0, max_value=1 << 30),
                    min_size=2, max_size=50))
    def test_observe_never_crashes_and_counts_consistent(self, addresses):
        entry = SitEntry(0, addresses[0], 0)
        for addr in addresses[1:]:
            entry.observe(addr)
            assert entry.same_count >= 1 or entry.diff_count >= 1

    @given(st.lists(st.tuples(st.integers(0, 100), lines),
                    min_size=1, max_size=200))
    def test_table_bounded(self, pairs):
        sit = StrideIdentifierTable(entries=8)
        for mpc, addr in pairs:
            sit.allocate(mpc, addr)
        assert len(sit) <= 8


class TestTaintProperties:
    @given(st.lists(st.tuples(
        st.integers(0, NUM_REGISTERS - 1),
        st.integers(-1, NUM_REGISTERS - 1),
        st.integers(-1, NUM_REGISTERS - 1),
    ), max_size=100))
    def test_vector_stays_in_register_range(self, instructions):
        unit = TaintUnit()
        unit.arm(0x10)
        unit.observe(TraceRecord(0x10, OpClass.LOAD, dst=1, src1=2))
        for dst, src1, src2 in instructions:
            unit.observe(TraceRecord(0x20, OpClass.ALU, dst=dst, src1=src1,
                                     src2=src2))
        assert unit._vector < (1 << NUM_REGISTERS)

    @given(st.integers(0, NUM_REGISTERS - 1))
    def test_trigger_dst_always_tainted_after_start(self, dst):
        unit = TaintUnit()
        unit.arm(0x10)
        unit.observe(TraceRecord(0x10, OpClass.LOAD, dst=dst, src1=0))
        assert unit.is_tainted(dst)


class TestLoopDetectorProperties:
    @given(st.lists(st.tuples(st.integers(100, 110), st.booleans()),
                    max_size=200))
    def test_never_crashes(self, branches):
        detector = LoopDetector()
        cycle = 0
        for pc, same_target in branches:
            detector.observe_backward_branch(
                pc, 50 if same_target else 60, cycle
            )
            cycle += 7

    @given(st.integers(2, 100))
    def test_iterations_counted(self, count):
        detector = LoopDetector()
        for i in range(count):
            detector.observe_backward_branch(0x100, 0x80, i * 10)
        assert detector.iterations == count - 1


class TestCreditProperties:
    @given(st.lists(st.tuples(lines, st.sampled_from(["T2", "P1", "C1"])),
                    max_size=100))
    def test_issued_equals_sum_of_buckets(self, issues):
        tracker = CreditTracker()
        for line, component in issues:
            tracker.on_prefetch_issued(line, component)
        assert tracker.bucket().issued == len(issues)

    @given(st.lists(lines, min_size=1, max_size=50))
    def test_accuracy_bounded_by_one(self, used_lines):
        tracker = CreditTracker()
        for line in used_lines:
            tracker.on_prefetch_issued(line, "T2")
            tracker.on_useful(line, "T2", 1)
        assert tracker.bucket().effective_accuracy <= 1.0


class TestMachineProperties:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=30))
    def test_sum_program_matches_python(self, values):
        asm = Assembler()
        asm.data(0x1000, values)
        asm.movi("r1", 0x1000)
        asm.movi("r2", 0x1000 + len(values) * 8)
        asm.movi("r3", 0)
        loop = asm.label()
        asm.load("r4", "r1", 0)
        asm.add("r3", "r3", "r4")
        asm.addi("r1", "r1", 8)
        asm.blt("r1", "r2", loop)
        asm.store("r3", "r0", 0x8000)
        asm.halt()
        trace = Machine().run(asm.assemble())
        assert trace.memory[0x8000] == sum(values)

    @settings(max_examples=25)
    @given(st.integers(1, 30), st.integers(1, 64))
    def test_trace_length_deterministic(self, n, stride):
        def build():
            asm = Assembler()
            asm.movi("r1", 0)
            asm.movi("r2", n)
            loop = asm.label()
            asm.load("r4", "r1", 0x1000)
            asm.addi("r1", "r1", stride)
            asm.blt("r1", "r2", loop)
            asm.halt()
            return asm.assemble()

        a = Machine().run(build())
        b = Machine().run(build())
        assert len(a) == len(b)
        assert [r.pc for r in a.records] == [r.pc for r in b.records]
