"""Tests for metrics, the offline classifier, credit accounting, storage,
and report rendering."""

from collections import Counter

import pytest


from repro.analysis.classify import Category, OfflineClassifier
from repro.analysis.credit import CreditTracker
from repro.analysis.metrics import (
    effective_accuracy,
    effective_coverage,
    geometric_mean,
    scope,
    traffic_overhead,
    weighted_average,
)
from repro.analysis.report import format_bars, format_scatter, format_table
from repro.analysis.storage import PAPER_STORAGE_KB, storage_table
from repro.engine.system import SimulationResult, simulate
from repro.prefetcher_registry import make_prefetcher


def fake_result(misses_l1=100, issued=50, attempted=None, traffic=1000,
                miss_lines=None, cycles=10_000):
    from repro.engine.ooo import CoreStats
    from repro.memory.cache import CacheStats
    from repro.memory.dram import DramStats
    from repro.memory.hierarchy import PrefetchStats

    core = CoreStats(instructions=100_000, cycles=cycles)
    l1 = CacheStats(demand_accesses=1000, demand_misses=misses_l1)
    dram = DramStats(reads=traffic)
    prefetch = PrefetchStats(issued=issued)
    return SimulationResult(
        workload="w",
        prefetcher="p",
        core=core,
        l1d=l1,
        l2=CacheStats(),
        l3=CacheStats(),
        dram=dram,
        prefetch=prefetch,
        miss_lines_l1=Counter(miss_lines or {}),
        attempted_prefetch_lines=attempted or set(),
    )


class TestMetrics:
    def test_scope_definition(self):
        baseline = fake_result(miss_lines={1: 10, 2: 30, 3: 60})
        result = fake_result(attempted={2, 3, 99})
        assert scope(result, baseline) == pytest.approx(0.9)

    def test_scope_empty_footprint(self):
        assert scope(fake_result(), fake_result()) == 0.0

    def test_effective_accuracy_positive(self):
        baseline = fake_result(misses_l1=100)
        result = fake_result(misses_l1=40, issued=100)
        assert effective_accuracy(result, baseline) == pytest.approx(0.6)

    def test_effective_accuracy_negative_on_pollution(self):
        baseline = fake_result(misses_l1=100)
        result = fake_result(misses_l1=150, issued=100)
        assert effective_accuracy(result, baseline) == pytest.approx(-0.5)

    def test_effective_accuracy_zero_issued(self):
        assert effective_accuracy(fake_result(issued=0), fake_result()) == 0.0

    def test_effective_coverage(self):
        baseline = fake_result(misses_l1=200)
        result = fake_result(misses_l1=50)
        assert effective_coverage(result, baseline) == pytest.approx(0.75)

    def test_traffic_overhead(self):
        baseline = fake_result(traffic=1000)
        result = fake_result(traffic=1100)
        assert traffic_overhead(result, baseline) == pytest.approx(1.1)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_weighted_average(self):
        assert weighted_average([(1.0, 1.0), (3.0, 3.0)]) == pytest.approx(2.5)
        assert weighted_average([]) == 0.0


class TestOfflineClassifier:
    def test_strided_trace_is_lhf(self, strided_trace):
        classifier = OfflineClassifier(strided_trace)
        counts = classifier.category_counts(
            strided_trace.memory_footprint()
        )
        total = sum(counts.values())
        assert counts[Category.LHF] / total > 0.9

    def test_scattered_chain_is_hhf(self, chain_trace):
        classifier = OfflineClassifier(chain_trace)
        counts = classifier.category_counts(
            chain_trace.memory_footprint()
        )
        total = sum(counts.values())
        assert counts[Category.HHF] / total > 0.5

    def test_dense_regions_are_mhf(self):
        from repro.isa import Assembler, Machine
        import random
        asm = Assembler()
        rng = random.Random(8)
        bases = [0x40000 + i * 1024 for i in range(200)]
        rng.shuffle(bases)
        asm.data(0x10000, bases)
        asm.movi("r1", 0x10000)
        asm.movi("r2", 0x10000 + 200 * 8)
        outer = asm.label()
        asm.load("r4", "r1", 0)
        asm.addi("r5", "r4", 1024)
        inner = asm.label()
        asm.load("r6", "r4", 0)
        asm.addi("r4", "r4", 64)
        asm.blt("r4", "r5", inner)
        asm.addi("r1", "r1", 8)
        asm.blt("r1", "r2", outer)
        asm.halt()
        trace = Machine(max_instructions=100_000).run(asm.assemble())
        classifier = OfflineClassifier(trace)
        # The region lines: dense but the sweep load is ~strided within
        # regions.  At minimum they must not be HHF.
        region_lines = {(0x40000 >> 6) + i for i in range(16)}
        categories = {classifier.category(l) for l in region_lines}
        assert Category.HHF not in categories

    def test_strided_pc_detected(self, strided_trace):
        classifier = OfflineClassifier(strided_trace)
        assert classifier.strided_pcs


class TestCreditTracker:
    def test_positive_credit(self):
        tracker = CreditTracker()
        tracker.on_prefetch_issued(1, "T2")
        tracker.on_useful(1, "T2", 1)
        bucket = tracker.bucket(component="T2")
        assert bucket.effective_accuracy == pytest.approx(1.0)

    def test_negative_credit_shared(self):
        tracker = CreditTracker()
        tracker.on_prefetch_issued(1, "C1")
        tracker.on_prefetch_issued(2, "C1")
        tracker.on_pollution(1, [(1, "C1"), (2, "C1")])
        bucket = tracker.bucket(component="C1")
        assert bucket.negative == pytest.approx(1.0)
        assert bucket.effective_accuracy == pytest.approx(-0.5)

    def test_level_filtering(self):
        tracker = CreditTracker(level=1)
        tracker.on_prefetch_issued(1, "T2")
        tracker.on_useful(1, "T2", 2)    # L2 usefulness ignored at L1
        assert tracker.bucket().positive == 0.0

    def test_categorized_buckets(self):
        tracker = CreditTracker(categorize=lambda line: "even"
                                if line % 2 == 0 else "odd")
        tracker.on_prefetch_issued(2, "T2")
        tracker.on_prefetch_issued(3, "T2")
        assert tracker.bucket(category="even").issued == 1
        assert tracker.bucket(category="odd").issued == 1
        assert tracker.bucket().issued == 2

    def test_by_component_and_category(self):
        tracker = CreditTracker()
        tracker.on_prefetch_issued(1, "T2")
        tracker.on_prefetch_issued(2, "P1")
        assert set(tracker.by_component()) == {"T2", "P1"}
        assert set(tracker.by_category()) == {"all"}

    def test_integrated_with_simulation(self, strided_trace):
        tracker = CreditTracker()
        simulate(strided_trace, make_prefetcher("t2"), tracker=tracker)
        bucket = tracker.bucket(component="T2")
        assert bucket.issued > 0
        assert bucket.effective_accuracy > 0.8


class TestStorage:
    def test_all_paper_rows_present(self):
        rows = storage_table()
        assert {r.name for r in rows} == set(PAPER_STORAGE_KB)

    def test_modeled_sizes_within_3x_of_paper(self):
        for row in storage_table():
            assert 0.3 < row.ratio < 3.0, row

    def test_tpc_is_component_sum(self):
        rows = {r.name: r.model_kb for r in storage_table()}
        assert rows["tpc"] == pytest.approx(
            rows["t2"] + rows["p1"] + rows["c1"], rel=0.01
        )


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "xyz" in lines[3]

    def test_format_scatter(self):
        out = format_scatter([("app", 0.5, 0.9, 10.0)])
        assert "app" in out

    def test_format_bars(self):
        out = format_bars({"tpc": 1.4, "bop": 1.2})
        assert "tpc" in out and "#" in out

    def test_format_bars_empty(self):
        assert format_bars({}) == "(empty)"
