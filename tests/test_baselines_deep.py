"""Second battery of baseline tests: mechanism-specific behaviors."""

from conftest import feed_stream, make_event, requested_lines

from repro.baselines.ampm import AmpmPrefetcher
from repro.baselines.bop import BopPrefetcher
from repro.baselines.fdp import FdpPrefetcher, _AGGRESSIVENESS
from repro.baselines.ghb import GhbPcDcPrefetcher
from repro.baselines.sms import SmsPrefetcher
from repro.baselines.spp import SppPrefetcher, _advance_signature
from repro.baselines.vldp import VldpPrefetcher


class TestGhbMechanics:
    def test_stale_links_ignored_after_wrap(self):
        pf = GhbPcDcPrefetcher(ghb_entries=8)
        # Train PC A, then flood the GHB with other PCs so A's entries
        # are overwritten; A's chain must not resurrect stale slots.
        feed_stream(pf, [i * 64 for i in range(4)], pc=0xA)
        for pc in range(0x100, 0x110):
            feed_stream(pf, [pc * 0x1000], pc=pc)
        chain = pf._chain(0xA)
        assert len(chain) <= 1  # everything older fell out of the buffer

    def test_chain_order_most_recent_first(self):
        pf = GhbPcDcPrefetcher()
        feed_stream(pf, [0, 64, 128], pc=0xA)
        chain = pf._chain(0xA)
        assert chain == [2, 1, 0]

    def test_distinct_pcs_chains_independent(self):
        pf = GhbPcDcPrefetcher()
        feed_stream(pf, [0, 64], pc=0xA)
        feed_stream(pf, [0x8000, 0x8040], pc=0xB)
        assert pf._chain(0xA) != pf._chain(0xB)


class TestSppMechanics:
    def test_signature_update_is_deterministic(self):
        assert _advance_signature(0, 5) == _advance_signature(0, 5)
        assert _advance_signature(0, 5) != _advance_signature(0, 6)

    def test_signature_stays_in_12_bits(self):
        signature = 0
        for delta in range(-60, 60):
            signature = _advance_signature(signature, delta)
            assert 0 <= signature < (1 << 12)

    def test_pattern_entry_replaces_weakest(self):
        from repro.baselines.spp import _PatternEntry
        entry = _PatternEntry()
        for delta in (1, 2, 3, 4):
            for _ in range(delta):   # delta k observed k times
                entry.update(delta)
        entry.update(9)              # fifth candidate displaces delta 1
        assert 9 in entry.deltas
        assert 1 not in entry.deltas

    def test_best_confidence_fraction(self):
        from repro.baselines.spp import _PatternEntry
        entry = _PatternEntry()
        entry.update(2)
        entry.update(2)
        entry.update(5)
        delta, confidence = entry.best()
        assert delta == 2
        assert abs(confidence - 2 / 3) < 1e-9


class TestVldpMechanics:
    def test_longest_history_wins(self):
        pf = VldpPrefetcher()
        # DPT-1: after delta 1 comes 2.  DPT-2: after (3,1) comes 7.
        pf._dpts[0].put((1,), 2)
        pf._dpts[1].put((3, 1), 7)
        assert pf._predict([3, 1]) == 7     # 2-history beats 1-history
        assert pf._predict([9, 1]) == 2     # falls back to 1-history

    def test_no_prediction_for_unknown(self):
        pf = VldpPrefetcher()
        assert pf._predict([42]) is None


class TestBopMechanics:
    def test_round_counting(self):
        pf = BopPrefetcher(offsets=[1, 2])
        # Each learn step tests one offset; a full pass = one round.
        pf._learn(100)
        pf._learn(101)
        assert pf._round == 1

    def test_score_max_short_circuits_round(self):
        from repro.baselines import bop as bop_module
        pf = BopPrefetcher(offsets=[1])
        for i in range(bop_module.SCORE_MAX):
            pf._rr_insert(i - 1)
            pf._learn(i)
        # Round ended: scores reset, offset selected.
        assert pf._scores == [0]
        assert pf._best_offset == 1

    def test_off_state_inserts_demand_fills(self):
        pf = BopPrefetcher()
        pf._prefetching_on = False
        pf.on_fill(42, 1, prefetched=False)
        assert 42 in pf._rr


class TestFdpMechanics:
    def test_ladder_is_monotonic(self):
        distances = [d for d, _ in _AGGRESSIVENESS]
        degrees = [deg for _, deg in _AGGRESSIVENESS]
        assert distances == sorted(distances)
        assert degrees == sorted(degrees)

    def test_level_bounded(self):
        pf = FdpPrefetcher(start_aggressiveness=len(_AGGRESSIVENESS) - 1)
        # Many highly useful windows cannot push the level out of range.
        for i in range(5000):
            event = make_event(addr=i * 64, hit=False)
            for r in pf.on_access(event) or []:
                pf.on_prefetch_hit(r.line, 1)
        assert 0 <= pf._level < len(_AGGRESSIVENESS)


class TestSmsMechanics:
    def test_trigger_key_uses_pc_and_offset(self):
        pf = SmsPrefetcher()
        assert pf._trigger_key(0x40, 3) != pf._trigger_key(0x40, 4)
        assert pf._trigger_key(0x40, 3) != pf._trigger_key(0x44, 3)

    def test_generation_end_on_at_capacity(self):
        pf = SmsPrefetcher(active_entries=1, filter_entries=8)
        # Open a generation on region 0 with a 2-line pattern.
        pf.on_access(make_event(pc=0x40, addr=0, hit=False))
        pf.on_access(make_event(pc=0x40, addr=64, hit=False))
        assert 0 in pf._active
        # Opening a second generation evicts (and records) the first.
        pf.on_access(make_event(pc=0x40, addr=0x10000, hit=False))
        pf.on_access(make_event(pc=0x40, addr=0x10040, hit=False))
        assert 0 not in pf._active
        assert pf._pht  # the 2-line pattern was recorded


class TestAmpmMechanics:
    def test_negative_direction_prediction(self):
        pf = AmpmPrefetcher(degree=1)
        requests = feed_stream(pf, [0x4000 - i * 64 for i in range(6)])
        assert requests
        assert all(r.line < 0x4000 >> 6 for r in requests)

    def test_prefetched_bit_suppresses_duplicates(self):
        pf = AmpmPrefetcher()
        first = feed_stream(pf, [0, 64, 128])
        again = pf.on_access(make_event(addr=128, hit=False))
        overlap = requested_lines(first) & requested_lines(again or [])
        assert not overlap
