"""Tests for the dependency-free SVG renderer."""

import pytest

from repro.analysis.svgplot import ScatterSeries, bars_svg, scatter_svg


class TestScatterSvg:
    def series(self):
        return [
            ScatterSeries("tpc", [(0.9, 0.95, 100.0), (0.8, 0.85, 50.0)]),
            ScatterSeries("bop", [(0.7, 0.5, 200.0)]),
        ]

    def test_valid_svg_document(self):
        svg = scatter_svg(self.series(), title="t")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<circle") >= 5  # 3 dots + 2 summary rings

    def test_labels_present(self):
        svg = scatter_svg(self.series())
        assert "tpc" in svg and "bop" in svg

    def test_title_escaped(self):
        svg = scatter_svg(self.series(), title="a < b & c")
        assert "a &lt; b &amp; c" in svg

    def test_summary_weighted(self):
        series = ScatterSeries("x", [(0.0, 0.0, 1.0), (1.0, 1.0, 3.0)])
        assert series.summary() == (0.75, 0.75)

    def test_empty_series_ok(self):
        svg = scatter_svg([ScatterSeries("empty", [])])
        assert "</svg>" in svg

    def test_parses_as_xml(self):
        import xml.etree.ElementTree as ET
        ET.fromstring(scatter_svg(self.series(), title="ok"))


class TestBarsSvg:
    def test_bars_and_ibeams(self):
        svg = bars_svg(
            {"tpc": 1.5, "bop": 1.2},
            ranges={"tpc": (1.0, 2.0), "bop": (0.9, 1.6)},
        )
        assert svg.count("<rect") >= 3  # background + 2 bars
        assert "stroke-dasharray" in svg  # baseline marker

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bars_svg({})

    def test_parses_as_xml(self):
        import xml.etree.ElementTree as ET
        ET.fromstring(bars_svg({"a": 1.0}))

    def test_no_baseline(self):
        svg = bars_svg({"a": 1.0}, baseline=None)
        assert "stroke-dasharray" not in svg
