"""Unit tests for the set-associative cache model."""

import pytest

from repro.memory.cache import Cache


def small_cache(ways=2, sets=4):
    # size = sets * ways * 64
    return Cache("T", sets * ways * 64, ways, 64, hit_latency=3)


class TestGeometry:
    def test_set_count_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            Cache("bad", 3 * 64, 1, 64)

    def test_set_index_masks_low_bits(self):
        cache = small_cache(sets=4)
        assert cache.set_index(0) == 0
        assert cache.set_index(5) == 1
        assert cache.set_index(7) == 3

    def test_table1_l1_geometry(self):
        l1 = Cache("L1D", 64 * 1024, 4, 64)
        assert l1.num_sets == 256
        assert l1.ways == 4


class TestLookupFill:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(0x10, now=0) is None
        cache.fill(0x10, fill_time=5)
        hit = cache.lookup(0x10, now=10)
        assert hit is not None
        assert hit.ready_time == 10

    def test_in_flight_fill_delays_ready_time(self):
        cache = small_cache()
        cache.fill(0x10, fill_time=100)
        hit = cache.lookup(0x10, now=50)
        assert hit.ready_time == 100

    def test_refill_lowers_fill_time_only(self):
        cache = small_cache()
        cache.fill(0x10, fill_time=100)
        cache.fill(0x10, fill_time=50)
        assert cache.lookup(0x10, now=0).ready_time == 50
        cache.fill(0x10, fill_time=200)  # must not raise it again
        assert cache.lookup(0x10, now=0).ready_time == 50

    def test_probe_has_no_side_effects(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0xA0, 0)
        assert cache.probe(0xA0)
        assert not cache.probe(0xB0)
        assert cache.occupancy() == 1


class TestLruEviction:
    def test_lru_victim_selected(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill(1, 0)
        cache.fill(2, 0)
        cache.lookup(1, now=5)           # touch 1, so 2 is LRU
        evicted = cache.fill(3, 0)
        assert evicted is not None
        assert evicted.line_addr == 2
        assert cache.probe(1) and cache.probe(3) and not cache.probe(2)

    def test_eviction_only_within_set(self):
        cache = small_cache(ways=1, sets=4)
        cache.fill(0, 0)
        cache.fill(1, 0)
        assert cache.fill(2, 0) is None   # different sets, no conflict
        assert cache.occupancy() == 3

    def test_dirty_eviction_counts_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(1, 0)
        cache.lookup(1, now=0, is_write=True)
        evicted = cache.fill(2, 0)
        assert evicted.dirty
        assert cache.stats.writebacks == 1
        assert cache.stats.evictions == 1

    def test_clean_eviction_no_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(1, 0)
        cache.fill(2, 0)
        assert cache.stats.writebacks == 0
        assert cache.stats.evictions == 1


class TestPrefetchMetadata:
    def test_first_use_of_prefetch_flag(self):
        cache = small_cache()
        cache.fill(7, 0, prefetched=True, component="T2")
        first = cache.lookup(7, now=1)
        assert first.was_prefetched and first.first_use_of_prefetch
        assert first.component == "T2"
        second = cache.lookup(7, now=2)
        assert second.was_prefetched and not second.first_use_of_prefetch

    def test_unused_prefetch_eviction_counted(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(1, 0, prefetched=True, component="C1")
        cache.fill(2, 0)
        assert cache.stats.prefetch_evicted_unused == 1

    def test_used_prefetch_eviction_not_counted(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(1, 0, prefetched=True)
        cache.lookup(1, now=1)
        cache.fill(2, 0)
        assert cache.stats.prefetch_evicted_unused == 0

    def test_prefetched_lines_in_set(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill(1, 0, prefetched=True, component="P1")
        cache.fill(2, 0)
        lines = cache.prefetched_lines_in_set(0)
        assert [l.line_addr for l in lines] == [1]

    def test_prefetch_fill_counted(self):
        cache = small_cache()
        cache.fill(1, 0, prefetched=True)
        cache.fill(2, 0, prefetched=False)
        assert cache.stats.prefetch_fills == 1


class TestInvalidate:
    def test_invalidate_removes_line(self):
        cache = small_cache()
        cache.fill(9, 0)
        assert cache.invalidate(9)
        assert not cache.probe(9)
        assert not cache.invalidate(9)


class TestStats:
    def test_miss_rate(self):
        cache = small_cache()
        cache.stats.demand_accesses = 10
        cache.stats.demand_misses = 3
        assert cache.stats.miss_rate == pytest.approx(0.3)

    def test_miss_rate_zero_accesses(self):
        cache = small_cache()
        assert cache.stats.miss_rate == 0.0
