"""Tests for the Markov prefetcher, trace serialization, and the CLI."""

import pytest

from conftest import build_strided_trace, feed_stream, make_event

from repro.baselines.markov import MarkovPrefetcher
from repro.isa.traceio import load_trace, save_trace


class TestMarkov:
    def test_learns_repeating_miss_sequence(self):
        pf = MarkovPrefetcher(min_confidence=2)
        sequence = [0x100, 0x900, 0x420, 0x777] * 6
        requests = feed_stream(pf, [a * 64 for a in sequence])
        assert requests
        lines = {r.line for r in requests}
        assert lines <= set(sequence)

    def test_prediction_follows_successor(self):
        pf = MarkovPrefetcher(min_confidence=2, degree=1)
        for _ in range(4):
            pf.on_access(make_event(addr=0x1000, hit=False))
            pf.on_access(make_event(addr=0x9000, hit=False))
        requests = pf.on_access(make_event(addr=0x1000, hit=False))
        assert requests and requests[0].line == 0x9000 >> 6

    def test_no_prediction_without_confidence(self):
        pf = MarkovPrefetcher(min_confidence=3)
        pf.on_access(make_event(addr=0x1000, hit=False))
        pf.on_access(make_event(addr=0x9000, hit=False))
        requests = pf.on_access(make_event(addr=0x1000, hit=False))
        assert requests is None

    def test_hits_ignored(self):
        pf = MarkovPrefetcher()
        assert pf.on_access(make_event(addr=0x1000, hit=True)) is None
        assert pf._last_miss is None

    def test_table_bounded(self):
        pf = MarkovPrefetcher(table_entries=8)
        feed_stream(pf, [i * 6400 for i in range(100)])
        assert len(pf._table) <= 8

    def test_successor_ways_bounded(self):
        pf = MarkovPrefetcher(ways=2)
        for successor in range(10):
            pf.on_access(make_event(addr=0x1000, hit=False))
            pf.on_access(make_event(addr=(successor + 100) * 4096,
                                    hit=False))
        entry = pf._table[0x1000 >> 6]
        assert len(entry.successors) <= 2

    def test_registered(self):
        from repro import make_prefetcher
        assert make_prefetcher("markov").name == "markov"

    def test_storage_is_large(self):
        # The paper: "Markov prefetchers require a lot of storage."
        assert MarkovPrefetcher().storage_bits / 8 / 1024 > 20


class TestTraceIo:
    def test_roundtrip(self, tmp_path):
        trace = build_strided_trace(elements=500)
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        for original, restored in zip(trace.records, loaded.records):
            assert original.pc == restored.pc
            assert original.opc == restored.opc
            assert original.addr == restored.addr
            assert original.value == restored.value
            assert original.dst == restored.dst
            assert original.taken == restored.taken
        assert loaded.memory == trace.memory

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro import make_prefetcher, simulate
        trace = build_strided_trace(elements=800)
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        a = simulate(trace, make_prefetcher("tpc"))
        b = simulate(loaded, make_prefetcher("tpc"))
        assert a.cycles == b.cycles
        assert a.prefetch.issued == b.prefetch.issued

    def test_version_check(self, tmp_path):
        import numpy as np
        path = str(tmp_path / "bad.npz")
        np.savez(path, version=np.int32(99))
        with pytest.raises(ValueError, match="version"):
            load_trace(path)


class TestCli:
    def test_prefetchers_listing(self, capsys):
        from repro.__main__ import main
        main(["prefetchers"])
        out = capsys.readouterr().out
        assert "tpc" in out and "markov" in out

    def test_workloads_listing(self, capsys):
        from repro.__main__ import main
        main(["workloads"])
        out = capsys.readouterr().out
        assert "spec.mcf" in out and "crono" in out

    def test_simulate_command(self, capsys):
        from repro.__main__ import main
        main(["simulate", "npb.ep", "stride"])
        out = capsys.readouterr().out
        assert "speedup vs no-prefetch" in out

    def test_compare_command(self, capsys):
        from repro.__main__ import main
        main(["compare", "npb.ep", "none", "tpc"])
        out = capsys.readouterr().out
        assert "tpc" in out


class TestFutureWork:
    def test_small_run(self):
        from repro.experiments import future_work
        rows = future_work.run(apps=["spec.mcf"], extras=["markov"])
        assert len(rows) == 1
        assert rows[0].extra == "markov"
        assert rows[0].tpc > 0
        assert "marginal" in future_work.render(rows)

    def test_both_extras_by_default(self):
        from repro.experiments import future_work
        rows = future_work.run(apps=["npb.ep"])
        assert {r.extra for r in rows} == {"markov", "isb"}
