"""Tests for the ISB component and the adaptive coordinator."""

from conftest import feed_stream, make_event

from repro.baselines.isb import IsbPrefetcher
from repro.core.adaptive import AdaptiveCoordinator, make_adaptive_tpc
from repro.core.base import Prefetcher, PrefetchRequest


class TestIsb:
    def test_linearizes_repeating_sequence(self):
        pf = IsbPrefetcher(degree=1)
        sequence = [0x40, 0x900, 0x17, 0x333, 0x71] * 4
        requests = feed_stream(pf, [line * 64 for line in sequence])
        lines = {r.line for r in requests}
        assert lines
        assert lines <= set(sequence)

    def test_predicts_successor_after_training(self):
        pf = IsbPrefetcher(degree=1)
        for _ in range(3):
            pf.on_access(make_event(addr=0x10000, hit=False))
            pf.on_access(make_event(addr=0x90000, hit=False))
            pf.on_access(make_event(addr=0x30000, hit=False))
        requests = pf.on_access(make_event(addr=0x10000, hit=False))
        assert requests and requests[0].line == 0x90000 >> 6

    def test_pc_localized_streams(self):
        pf = IsbPrefetcher(degree=1)
        # Interleaved accesses from two PCs form two separate streams.
        for _ in range(4):
            pf.on_access(make_event(pc=0xA, addr=0x10000, hit=False))
            pf.on_access(make_event(pc=0xB, addr=0x50000, hit=False))
            pf.on_access(make_event(pc=0xA, addr=0x20000, hit=False))
            pf.on_access(make_event(pc=0xB, addr=0x60000, hit=False))
        requests = pf.on_access(make_event(pc=0xA, addr=0x10000, hit=False))
        assert requests and requests[0].line == 0x20000 >> 6

    def test_capacity_bounded(self):
        pf = IsbPrefetcher(capacity=16)
        feed_stream(pf, [i * 6400 for i in range(200)])
        assert len(pf._ps) <= 16
        assert len(pf._sp) <= 16 + 1

    def test_hits_ignored(self):
        pf = IsbPrefetcher()
        assert pf.on_access(make_event(addr=0x1000, hit=True)) is None

    def test_registered(self):
        from repro import make_prefetcher
        assert make_prefetcher("isb").name == "isb"


class _Scripted(Prefetcher):
    def __init__(self, name, line=None, always_observe=False):
        self.name = name
        self.line = line
        self.always_observe = always_observe
        self.seen = 0

    def on_access(self, event):
        self.seen += 1
        if self.line is not None:
            return [PrefetchRequest(self.line, 1, self.name.upper())]
        return None


class TestAdaptiveCoordinator:
    def test_initial_owner_is_first(self):
        a = _Scripted("a", line=1)
        b = _Scripted("b", line=2)
        coordinator = AdaptiveCoordinator([a, b])
        requests = coordinator.route(make_event(pc=0x10))
        assert {r.line for r in requests} == {1}
        assert coordinator.owner_of(0x10) == "a"

    def test_serving_component_takes_ownership(self):
        a = _Scripted("a")
        b = _Scripted("b", line=2)
        coordinator = AdaptiveCoordinator([a, b], window=4)
        for i in range(5):
            coordinator.route(
                make_event(pc=0x10, hit=True, served_by_prefetch=True,
                           serving_component="B")
            )
        assert coordinator.owner_of(0x10) == "b"

    def test_missing_owner_demoted(self):
        a = _Scripted("a")          # issues nothing, covers nothing
        b = _Scripted("b", line=2)
        coordinator = AdaptiveCoordinator([a, b], window=4,
                                          miss_tolerance=0.3)
        for _ in range(5):
            coordinator.route(make_event(pc=0x10, hit=False))
        assert coordinator.owner_of(0x10) == "b"

    def test_always_observe_components_always_fed(self):
        a = _Scripted("a")
        b = _Scripted("b")
        b.always_observe = True
        coordinator = AdaptiveCoordinator([a, b])
        for _ in range(3):
            coordinator.route(make_event(pc=0x10, hit=True))
        assert b.seen == 3

    def test_make_adaptive_tpc(self):
        composite = make_adaptive_tpc()
        assert composite.name == "tpc-adaptive"
        assert isinstance(composite.coordinator, AdaptiveCoordinator)
        composite.reset()  # must not blow up with the swapped coordinator

    def test_adaptive_tpc_matches_tpc_on_streaming(self):
        from repro.engine.system import simulate
        from repro.workloads import get_workload
        trace = get_workload("npb.ep").trace()
        baseline = simulate(trace)
        from repro import make_prefetcher
        fixed = simulate(trace, make_prefetcher("tpc"))
        adaptive = simulate(trace, make_prefetcher("tpc-adaptive"))
        assert abs(
            fixed.speedup_over(baseline) - adaptive.speedup_over(baseline)
        ) < 0.1
