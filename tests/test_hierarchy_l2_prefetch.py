"""Deeper hierarchy tests: L2-targeted prefetches, per-component
attempted-line tracking, and L2 usefulness accounting."""

import pytest

from repro.engine.config import SystemConfig
from repro.memory.hierarchy import Hierarchy


@pytest.fixture
def hierarchy():
    return Hierarchy(SystemConfig())


class TestL2Prefetch:
    def test_l2_prefetch_useful_on_l1_miss(self, hierarchy):
        line = 0x9000 >> 6
        hierarchy.prefetch(line, now=0, target_level=2, component="C1")
        result = hierarchy.demand_access(0x9000, now=10_000)
        assert not result.l1_hit
        assert result.hit_level == 2
        assert result.served_by_prefetch
        assert result.prefetch_component == "C1"
        assert hierarchy.l2.stats.useful_prefetches == 1
        assert hierarchy.l1d.stats.useful_prefetches == 0

    def test_l2_prefetch_cheaper_than_dram_pricier_than_l1(self, hierarchy):
        # Cold miss latency.
        cold = hierarchy.demand_access(0x9000, now=0)
        cold_latency = cold.ready_time
        # L2-prefetched line: between L1-hit and DRAM latency.
        line = 0xA000 >> 6
        hierarchy.prefetch(line, now=0, target_level=2)
        warm = hierarchy.demand_access(0xA000, now=10_000)
        warm_latency = warm.ready_time - 10_000
        assert warm_latency < cold_latency
        assert warm_latency > hierarchy.l1d.hit_latency

    def test_issued_counters_split_by_level(self, hierarchy):
        hierarchy.prefetch(1, now=0, target_level=1)
        hierarchy.prefetch(2, now=0, target_level=2)
        hierarchy.prefetch(3, now=0, target_level=2)
        assert hierarchy.prefetch_stats.issued_to_l1 == 1
        assert hierarchy.prefetch_stats.issued_to_l2 == 2


class TestPerComponentAttempts:
    def test_attempted_by_component_tracked(self, hierarchy):
        hierarchy.prefetch(1, now=0, component="T2")
        hierarchy.prefetch(2, now=0, component="T2")
        hierarchy.prefetch(3, now=0, component="C1", target_level=2)
        assert hierarchy.attempted_by_component["T2"] == {1, 2}
        assert hierarchy.attempted_by_component["C1"] == {3}

    def test_filtered_attempts_still_recorded(self, hierarchy):
        hierarchy.prefetch(1, now=0, component="T2")
        hierarchy.prefetch(1, now=1, component="T2")  # filtered duplicate
        assert hierarchy.attempted_by_component["T2"] == {1}
        assert hierarchy.prefetch_stats.filtered == 1

    def test_untagged_prefetch_not_in_component_map(self, hierarchy):
        hierarchy.prefetch(9, now=0, component=None)
        assert "T2" not in hierarchy.attempted_by_component
        assert 9 in hierarchy.attempted_prefetch_lines


class TestL2Pollution:
    def test_l2_pollution_detected(self):
        import dataclasses
        config = SystemConfig()
        config = dataclasses.replace(
            config,
            l1d=dataclasses.replace(config.l1d, size_bytes=64, ways=1),
            l2=dataclasses.replace(config.l2, size_bytes=2 * 64, ways=2),
        )
        hierarchy = Hierarchy(config)
        t = hierarchy.demand_access(0, now=0).ready_time
        # A second demand line pushes line 0 out of the 1-line L1 (both
        # in reality and in the shadow), leaving it resident in L2.
        t = hierarchy.demand_access(64 * 1024, now=t).ready_time
        # An L2-targeted prefetch displaces line 0 from the 2-way L2.
        hierarchy.prefetch(4096, now=t, target_level=2, component="C1")
        hierarchy.demand_access(0, now=t + 1)
        # Real L2 miss + shadow-L2 hit => prefetch-induced L2 miss.
        assert hierarchy.pollution_misses_l2 == 1
        assert hierarchy.pollution_misses_l1 == 0
