"""Telemetry subsystem: invariance, lifecycle reconciliation, sampling,
manifests, trace IO, and the profile/events CLI verbs.

The two contract tests the PR hangs on:

* **Invariance** — attaching telemetry must not perturb timing: every
  ``SimulationResult`` field is bit-identical with and without a hub.
* **Reconciliation** — lifecycle event counts must agree exactly with
  the hierarchy's aggregate ``PrefetchStats`` (and the first-use /
  evicted-unused / pollution counters), so the trace can be trusted as
  the ground truth the aggregates summarize.
"""

from __future__ import annotations

import json

import pytest

from repro import make_prefetcher, simulate
from repro.analysis.svgplot import lines_svg
from repro.analysis.windows import windows_from_events
from repro.experiments.runner import spec_key
from repro.telemetry import (
    Telemetry,
    TimeSeriesSampler,
    chrome_trace,
    filter_events,
    read_jsonl,
    summarize,
    write_jsonl,
    write_manifest,
)
from repro.telemetry import events as ev
from tests.conftest import build_aop_trace, build_strided_trace


@pytest.fixture(scope="module")
def small_trace():
    return build_strided_trace(elements=2500, name="tele-strided")


@pytest.fixture(scope="module")
def plain_run(small_trace):
    return simulate(small_trace, make_prefetcher("tpc"))


@pytest.fixture(scope="module")
def telemetry_run(small_trace):
    telemetry = Telemetry(sampler=TimeSeriesSampler(interval=1024))
    result = simulate(small_trace, make_prefetcher("tpc"),
                      telemetry=telemetry)
    return result, telemetry


class TestInvariance:
    def test_all_result_fields_bit_identical(self, plain_run, telemetry_run):
        result, _ = telemetry_run
        assert result.core == plain_run.core
        assert result.l1d == plain_run.l1d
        assert result.l2 == plain_run.l2
        assert result.l3 == plain_run.l3
        assert result.dram == plain_run.dram
        assert result.prefetch == plain_run.prefetch
        assert result.miss_lines_l1 == plain_run.miss_lines_l1
        assert result.miss_lines_l2 == plain_run.miss_lines_l2
        assert (result.attempted_prefetch_lines
                == plain_run.attempted_prefetch_lines)
        assert result.pollution_misses_l1 == plain_run.pollution_misses_l1
        assert result.pollution_misses_l2 == plain_run.pollution_misses_l2

    def test_baseline_unaffected(self, small_trace):
        plain = simulate(small_trace)
        tele = simulate(small_trace, telemetry=Telemetry())
        assert tele.cycles == plain.cycles
        assert tele.core == plain.core


class TestReconciliation:
    def test_attempt_outcomes_match_prefetch_stats(self, telemetry_run):
        result, telemetry = telemetry_run
        assert telemetry.reconcile(result.prefetch) == {}
        assert telemetry.count(ev.ISSUED) == result.prefetch.issued
        assert telemetry.count(ev.FILTERED) == result.prefetch.filtered
        assert telemetry.count(ev.DROPPED_MSHR) == result.prefetch.dropped_mshr
        assert telemetry.count(ev.DROPPED_DRAM) == result.prefetch.dropped_dram

    def test_every_issue_fills(self, telemetry_run):
        _, telemetry = telemetry_run
        assert telemetry.count(ev.FILLED) == telemetry.count(ev.ISSUED)

    def test_first_use_matches_useful_counters(self, telemetry_run):
        result, telemetry = telemetry_run
        useful = (result.l1d.useful_prefetches + result.l2.useful_prefetches
                  + result.l3.useful_prefetches)
        assert telemetry.count(ev.FIRST_USE) == useful

    def test_pollution_matches_shadow_counters(self, telemetry_run):
        result, telemetry = telemetry_run
        assert telemetry.count(ev.POLLUTION_HIT) == (
            result.pollution_misses_l1 + result.pollution_misses_l2
        )

    def test_per_component_counters_sum_to_totals(self, telemetry_run):
        result, telemetry = telemetry_run
        components = telemetry.components()
        assert components  # TPC must have issued something
        assert sum(
            telemetry.count(f"{ev.ISSUED}.{c}") for c in components
        ) == result.prefetch.issued

    def test_events_are_tagged(self, telemetry_run):
        _, telemetry = telemetry_run
        issued = [e for e in telemetry.events if e.kind == ev.ISSUED]
        assert issued
        assert all(e.component is not None for e in issued)
        assert all(e.pc != -1 for e in issued)
        assert all(e.line != -1 for e in issued)
        assert all(e.dur >= 0 for e in issued)

    def test_trained_events_from_coordinator(self, telemetry_run):
        _, telemetry = telemetry_run
        trained = [e for e in telemetry.events if e.kind == ev.TRAINED]
        assert trained
        # One per claimed PC, tagged with the request-level component tag.
        assert len({e.pc for e in trained}) == len(trained)
        assert all(e.component in ("T2", "P1", "C1") for e in trained)


class TestSampler:
    def test_samples_cover_the_run(self, telemetry_run):
        result, telemetry = telemetry_run
        samples = telemetry.sampler.samples
        assert len(samples) == result.core.instructions // 1024
        assert samples[-1].cycle <= result.cycles
        assert all(s.ipc > 0 for s in samples)
        assert all(s.l1_mpki >= 0 for s in samples)

    def test_window_issue_counts_sum(self, telemetry_run):
        result, telemetry = telemetry_run
        sampled_issue = sum(s.issued for s in telemetry.sampler.samples)
        # The tail window after the last sample is not recorded.
        assert 0 < sampled_issue <= result.prefetch.issued

    def test_component_accuracy_nonnegative(self, telemetry_run):
        # A window's accuracy can exceed 1.0 when prefetches issued in an
        # earlier window are first-used in this one; it is never negative.
        _, telemetry = telemetry_run
        seen = []
        for sample in telemetry.sampler.samples:
            for accuracy in sample.component_accuracy.values():
                assert accuracy >= 0.0
                seen.append(accuracy)
        assert seen

    def test_svg_rendering(self, telemetry_run):
        _, telemetry = telemetry_run
        svg = telemetry.sampler.to_svg()
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "polyline" in svg

    def test_lines_svg_rejects_empty(self):
        with pytest.raises(ValueError):
            lines_svg({})


class TestTraceIO:
    def test_jsonl_roundtrip(self, telemetry_run, tmp_path):
        _, telemetry = telemetry_run
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(telemetry.events, path)
        assert count == len(telemetry.events)
        loaded = list(read_jsonl(path))
        assert len(loaded) == count
        assert loaded[0] == telemetry.events[0].as_dict()

    def test_filter_and_summarize(self, telemetry_run):
        _, telemetry = telemetry_run
        issued = list(filter_events(telemetry.events, kind=ev.ISSUED))
        assert len(issued) == telemetry.count(ev.ISSUED)
        summary = summarize(telemetry.events)
        assert summary["total"] == len(telemetry.events)
        assert summary["by_kind"][ev.ISSUED] == telemetry.count(ev.ISSUED)
        assert summary["first_cycle"] <= summary["last_cycle"]

    def test_windows_from_events(self, telemetry_run):
        _, telemetry = telemetry_run
        windows = windows_from_events(telemetry.events, window_events=512)
        assert sum(w.issued for w in windows) == telemetry.count(ev.ISSUED)
        assert sum(w.useful for w in windows) == telemetry.count(ev.FIRST_USE)

    def test_chrome_trace_structure(self, telemetry_run):
        _, telemetry = telemetry_run
        trace = chrome_trace(telemetry.events)
        text = json.dumps(trace)
        assert json.loads(text) == trace  # serializable
        records = trace["traceEvents"]
        phases = {r["ph"] for r in records}
        assert phases <= {"M", "X", "i"}
        for record in records:
            assert {"ph", "pid", "tid", "name"} <= set(record)
            if record["ph"] == "X":
                assert record["dur"] >= 1
        # Thread-name metadata for every component row.
        names = {r["args"]["name"] for r in records if r["ph"] == "M"}
        assert names  # at least one component thread

    def test_record_events_false_keeps_counters_only(self, small_trace):
        telemetry = Telemetry(record_events=False)
        result = simulate(small_trace, make_prefetcher("tpc"),
                          telemetry=telemetry)
        assert telemetry.events == []
        assert telemetry.count(ev.ISSUED) == result.prefetch.issued


class TestManifest:
    def test_simulate_stamps_manifest(self, telemetry_run):
        result, telemetry = telemetry_run
        manifest = result.manifest
        assert manifest is not None
        assert manifest.workload == "tele-strided"
        assert manifest.prefetcher == "tpc"
        assert manifest.metrics["cycles"] == result.cycles
        assert manifest.counters == telemetry.snapshot()
        assert manifest.git_sha is None or len(manifest.git_sha) == 40

    def test_run_id_deterministic_and_filesystem_safe(self, telemetry_run):
        result, _ = telemetry_run
        run_id = result.manifest.run_id
        assert run_id == result.manifest.run_id
        assert "/" not in run_id and " " not in run_id

    def test_write_and_read_back(self, telemetry_run, tmp_path):
        result, _ = telemetry_run
        path = write_manifest(result.manifest, tmp_path / "runs")
        assert path.name == "manifest.json"
        assert path.parent.name == result.manifest.run_id
        loaded = json.loads(path.read_text())
        assert loaded["run_id"] == result.manifest.run_id
        assert loaded["metrics"]["cycles"] == result.cycles
        # Re-writing the identical run lands in the same directory.
        assert write_manifest(result.manifest, tmp_path / "runs") == path

    def test_plain_run_manifest_has_empty_counters(self, plain_run):
        assert plain_run.manifest is not None
        assert plain_run.manifest.counters == {}


class TestSpecKey:
    def test_anonymous_factories_are_stable(self):
        key_a = spec_key(lambda: make_prefetcher("stride"))
        key_b = spec_key(lambda: make_prefetcher("stride"))
        assert key_a == key_b
        assert "0x" not in key_a  # no object ids leak into the key

    def test_different_builds_get_different_keys(self):
        assert spec_key(lambda: make_prefetcher("stride")) != spec_key(
            lambda: make_prefetcher("bop")
        )


class TestCli:
    def test_profile_and_events_verbs(self, tmp_path, capsys):
        from repro.__main__ import main

        trace_path = tmp_path / "trace.jsonl"
        chrome_path = tmp_path / "chrome.json"
        main([
            "profile", "spec.libquantum", "stride",
            "--trace", str(trace_path),
            "--chrome", str(chrome_path),
            "--runs-dir", str(tmp_path / "runs"),
            "--sample-interval", "4096",
        ])
        out = capsys.readouterr().out
        assert "reconciliation" in out and "ok" in out
        assert trace_path.exists() and chrome_path.exists()
        assert list((tmp_path / "runs").glob("*/manifest.json"))
        chrome = json.loads(chrome_path.read_text())
        assert chrome["traceEvents"]

        main(["events", str(trace_path)])
        out = capsys.readouterr().out
        assert "total" in out and "kind issued" in out

        main(["events", str(trace_path), "--kind", "issued", "--list",
              "--limit", "5"])
        out = capsys.readouterr().out
        assert "issued" in out


class TestMultiComponentLifecycle:
    def test_aop_exercises_multiple_components(self):
        trace = build_aop_trace(count=1500, name="tele-aop")
        telemetry = Telemetry()
        result = simulate(trace, make_prefetcher("tpc"), telemetry=telemetry)
        assert telemetry.reconcile(result.prefetch) == {}
        assert set(telemetry.components()) == set(
            result.prefetch.by_component
        )
        for component, issued in result.prefetch.by_component.items():
            assert telemetry.count(f"{ev.ISSUED}.{component}") == issued
