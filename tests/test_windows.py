"""Tests for windowed prefetch observation."""

from repro.analysis.windows import Window, WindowRecorder
from repro.engine.system import simulate
from repro.prefetcher_registry import make_prefetcher


class TestWindowMath:
    def test_useful_fraction(self):
        window = Window(index=0, issued=4, useful=3)
        assert window.useful_fraction == 0.75

    def test_useful_fraction_zero_issued(self):
        assert Window(index=0).useful_fraction == 0.0

    def test_net_credit(self):
        window = Window(index=0, issued=4, useful=3, pollution=1.0)
        assert window.net_credit == 2.0


class TestRecorder:
    def test_windows_advance(self):
        recorder = WindowRecorder(window_events=4)
        for line in range(10):
            recorder.on_prefetch_issued(line, "T2")
        assert len(recorder.windows) >= 2
        assert recorder.total_issued() == 10

    def test_attempted_lines_per_window(self):
        recorder = WindowRecorder(window_events=100)
        recorder.on_prefetch_issued(1, "T2")
        recorder.on_prefetch_issued(2, "T2")
        assert recorder.windows[0].attempted_lines == {1, 2}

    def test_integrated_with_simulation(self, strided_trace):
        recorder = WindowRecorder(window_events=512)
        simulate(strided_trace, make_prefetcher("t2"), tracker=recorder)
        assert recorder.total_issued() > 0
        assert len(recorder.windows) >= 2
        # Steady state: the late windows should be nearly all useful.
        steady = recorder.windows[len(recorder.windows) // 2]
        assert steady.useful_fraction > 0.7 or steady.issued == 0

    def test_warmup_measured(self, strided_trace):
        recorder = WindowRecorder(window_events=256)
        simulate(strided_trace, make_prefetcher("t2"), tracker=recorder)
        warmup = recorder.warmup_windows(threshold=0.5)
        assert warmup < len(recorder.windows)

    def test_series_shape(self):
        recorder = WindowRecorder(window_events=2)
        recorder.on_prefetch_issued(1, "T2")
        recorder.on_useful(1, "T2", 1)
        series = recorder.series()
        assert series[0][0] == 0
        assert all(0.0 <= fraction <= 1.0 for _, fraction in series)
