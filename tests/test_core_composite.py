"""Tests for the coordinator, composite, and shunt prefetchers."""

from conftest import build_aop_trace, make_event

from repro.core.base import Prefetcher, PrefetchRequest
from repro.core.composite import ShuntPrefetcher, make_shunt, make_tpc
from repro.core.coordinator import Coordinator
from repro.engine.system import simulate
from repro.prefetcher_registry import make_prefetcher


class FakeComponent(Prefetcher):
    """Scripted component for coordinator tests."""

    def __init__(self, name, claimed_pcs=(), request_line=None,
                 always_observe=False):
        self.name = name
        self.claimed = set(claimed_pcs)
        self.request_line = request_line
        self.always_observe = always_observe
        self.seen = []

    def on_access(self, event):
        self.seen.append(event.pc)
        if self.request_line is not None:
            return [PrefetchRequest(self.request_line, 1, self.name)]
        return None

    def claims(self, pc):
        return pc in self.claimed


class TestCoordinator:
    def test_priority_order_claim_gates_lower(self):
        first = FakeComponent("first", claimed_pcs={0x10})
        second = FakeComponent("second")
        coordinator = Coordinator([first, second])
        coordinator.route(make_event(pc=0x10))
        assert first.seen == [0x10]
        assert second.seen == []

    def test_always_observe_sees_claimed(self):
        first = FakeComponent("first", claimed_pcs={0x10})
        second = FakeComponent("second", always_observe=True)
        third = FakeComponent("third")
        coordinator = Coordinator([first, second, third])
        coordinator.route(make_event(pc=0x10))
        assert second.seen == [0x10]
        assert third.seen == []

    def test_unclaimed_flows_to_all(self):
        first = FakeComponent("first")
        second = FakeComponent("second")
        coordinator = Coordinator([first, second])
        coordinator.route(make_event(pc=0x42))
        assert first.seen == [0x42]
        assert second.seen == [0x42]

    def test_requests_merged_from_observers(self):
        first = FakeComponent("first", claimed_pcs={0x10}, request_line=100)
        second = FakeComponent("second", always_observe=True,
                               request_line=200)
        coordinator = Coordinator([first, second])
        requests = coordinator.route(make_event(pc=0x10))
        assert {r.line for r in requests} == {100, 200}

    def test_extras_round_robin(self):
        extra_a = FakeComponent("a")
        extra_b = FakeComponent("b")
        coordinator = Coordinator([FakeComponent("main")],
                                  extras=[extra_a, extra_b])
        coordinator.route(make_event(pc=0x1))
        coordinator.route(make_event(pc=0x2))
        coordinator.route(make_event(pc=0x3))
        assert extra_a.seen and extra_b.seen
        # Ownership is sticky.
        coordinator.route(make_event(pc=0x1))
        assert extra_a.seen.count(0x1) + extra_b.seen.count(0x1) == 2
        assert extra_a.seen.count(0x1) in (0, 2)

    def test_extras_not_offered_claimed_pcs(self):
        main = FakeComponent("main", claimed_pcs={0x10})
        extra = FakeComponent("x")
        coordinator = Coordinator([main], extras=[extra])
        coordinator.route(make_event(pc=0x10))
        assert extra.seen == []

    def test_prefetch_hit_rebinds_owner(self):
        extra_a = FakeComponent("a")
        extra_b = FakeComponent("b")
        coordinator = Coordinator([FakeComponent("main")],
                                  extras=[extra_a, extra_b])
        # pc 0x5 assigned round-robin to a first...
        coordinator.route(make_event(pc=0x5))
        # ...but a b-prefetched line served it: b takes over.
        coordinator.route(make_event(pc=0x5, hit=True,
                                     served_by_prefetch=True,
                                     serving_component="b"))
        coordinator.route(make_event(pc=0x5))
        assert extra_b.seen.count(0x5) >= 2


class TestComposite:
    def test_tpc_has_three_components(self):
        tpc = make_tpc()
        assert [c.name for c in tpc.components] == ["t2", "p1", "c1"]

    def test_incremental_variants(self):
        assert len(make_tpc(components="t").components) == 1
        assert len(make_tpc(components="tp").components) == 2
        assert len(make_tpc(components="tpc").components) == 3

    def test_invalid_components_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            make_tpc(components="pc")

    def test_t2_boost_wired_to_p1(self):
        tpc = make_tpc()
        t2, p1 = tpc.components[0], tpc.components[1]
        assert t2.boosted_pcs is p1.pointer_trigger_pcs
        tpc.reset()
        t2, p1 = tpc.components[0], tpc.components[1]
        assert t2.boosted_pcs is p1.pointer_trigger_pcs

    def test_storage_is_sum_of_components(self):
        tpc = make_tpc()
        assert tpc.storage_bits == sum(
            c.storage_bits for c in tpc.components
        )

    def test_extras_in_name(self):
        tpc = make_tpc(extras=[make_prefetcher("sms")])
        assert "sms" in tpc.name

    def test_memory_image_forwarded(self):
        tpc = make_tpc()
        memory = {0: 42}
        tpc.set_memory(memory)
        assert tpc.components[1]._memory is memory  # P1


class TestShunt:
    def test_shunt_merges_all_requests(self):
        a = FakeComponent("a", request_line=1)
        b = FakeComponent("b", request_line=2)
        shunt = ShuntPrefetcher([a, b])
        requests = shunt.on_access(make_event(pc=0x1))
        assert {r.line for r in requests} == {1, 2}

    def test_make_shunt_contains_tpc(self):
        shunt = make_shunt([make_prefetcher("sms")])
        names = [p.name for p in shunt.prefetchers]
        assert names[0] == "tpc"
        assert "sms" in names

    def test_composite_beats_shunt_on_aop(self):
        trace = build_aop_trace(count=3000)
        composite = make_tpc(extras=[make_prefetcher("sms")])
        shunt = make_shunt([make_prefetcher("sms")])
        composite_result = simulate(trace, composite)
        shunt_result = simulate(trace, shunt)
        # Division of labor should never lose badly to shunting; typically
        # it issues fewer or equal prefetches for the same coverage.
        assert (
            composite_result.prefetch.issued
            <= shunt_result.prefetch.issued * 1.1
        )
