"""Shared-memory trace columns + work-stealing scheduler (docs/performance.md).

Three contracts under test:

* **Zero-copy sharing** — a published trace attaches as numpy views
  that are value-identical to the original (columns, derived columns,
  segment events, memory image), and figures are bit-identical with
  shared memory on, off, and serial — under ``fork`` *and* ``spawn``.
* **Lifecycle** — the parent-side manifest is the leak oracle: segments
  are released on explicit :func:`repro.parallel.shm.release_all`, on a
  ``KeyboardInterrupt`` unwinding ``run_jobs``, and survive a
  chaos-killed worker (the dead worker's resource tracker must not
  unlink parent-owned segments) until the parent releases them.
* **Work stealing** — an imbalanced matrix records nonzero
  ``pool.steals``, steal spans, and per-worker steal counts in the
  pool report, with figures still bit-identical to serial.
"""

import json

import pytest

from repro.engine.config import EXPERIMENT_CONFIG
from repro.experiments.runner import simulate_spec
from repro.faults import RetryPolicy, chaos, fault_counters, \
    reset_fault_counters
from repro.isa.trace import DERIVED_FIELDS, TRACE_FIELDS
from repro.obs import FabricObs
from repro.obs.report import pool_report
from repro.parallel import run_jobs, shutdown_pool, shm
from repro.workloads import get_workload

APP = "spec.libquantum"
APP2 = "spec.astar"


@pytest.fixture(autouse=True)
def _shm_isolation(monkeypatch):
    """Chaos off, fault log off, segments + pool torn down around each
    test (the persistent pool must not leak one test's env into the
    next — REPRO_MP_CONTEXT/REPRO_SHM are read at fork time)."""
    monkeypatch.setenv("REPRO_FAULT_LOG", "")
    chaos.reset_chaos()
    reset_fault_counters()
    shutdown_pool()
    shm.release_all()
    yield
    chaos.reset_chaos()
    reset_fault_counters()
    shutdown_pool()
    shm.release_all()


def _figures(result):
    return (result.core.cycles, result.core.instructions,
            result.l1d.demand_misses, result.dram_traffic)


def _ok_figures(results):
    assert all(hasattr(r, "core") for r in results), results
    return [_figures(r) for r in results]


# ----------------------------------------------------------------------
# Publish / attach roundtrip
# ----------------------------------------------------------------------
def test_publish_attach_roundtrip_is_value_identical():
    trace = get_workload(APP).trace()
    entry = shm.publish(APP, trace)
    assert entry is not None
    assert entry.segment in shm.manifest_names()
    # Idempotent: a second publish reuses the live segment.
    assert shm.publish(APP, trace) is entry

    attached = shm.attach(entry)
    assert attached.name == trace.name
    assert len(attached) == len(trace)
    for field, mine, theirs in zip(TRACE_FIELDS, trace.array_columns(),
                                   attached.array_columns()):
        assert (mine == theirs).all(), field
    for field, mine, theirs in zip(DERIVED_FIELDS, trace.derived_arrays(),
                                   attached.derived_arrays()):
        assert (mine == theirs).all(), field
    assert (attached.segment_events() == trace.segment_events()).all()
    # The memory dict rebuilds lazily from the shared address/value
    # arrays, preserving the parent's insertion order.
    assert attached.memory == trace.memory
    assert list(attached.memory) == list(trace.memory)

    assert shm.release(APP)
    assert shm.manifest_names() == []


def test_attach_after_release_raises():
    entry = shm.publish(APP, get_workload(APP).trace())
    shm.release_all()
    with pytest.raises(FileNotFoundError):
        shm.attach(entry)


def test_shm_disabled_publishes_nothing(monkeypatch):
    monkeypatch.setenv(shm.SHM_ENV, "0")
    assert not shm.enabled()
    assert shm.publish(APP, get_workload(APP).trace()) is None
    assert shm.manifest_names() == []


# ----------------------------------------------------------------------
# Figure identity: shm on / off / serial, fork / spawn
# ----------------------------------------------------------------------
MATRIX = [(APP, "none"), (APP, "bop"), (APP2, "none"), (APP2, "bop")]


def test_figures_identical_shm_on_off_and_serial(monkeypatch):
    serial = _ok_figures(run_jobs(MATRIX, EXPERIMENT_CONFIG, 1))
    with_shm = _ok_figures(run_jobs(MATRIX, EXPERIMENT_CONFIG, 2))
    assert with_shm == serial
    shutdown_pool()
    shm.release_all()
    monkeypatch.setenv(shm.SHM_ENV, "0")
    without = _ok_figures(run_jobs(MATRIX, EXPERIMENT_CONFIG, 2))
    assert without == serial
    assert shm.manifest_names() == []


def test_spawn_context_bit_identical_to_fork_and_serial(monkeypatch):
    """The spawn smoke test: workers that share nothing by fork must
    attach the shared segments and reproduce the figures exactly."""
    serial = _ok_figures(run_jobs(MATRIX, EXPERIMENT_CONFIG, 1))
    fork = _ok_figures(run_jobs(MATRIX, EXPERIMENT_CONFIG, 2))
    monkeypatch.setenv(shm.MP_CONTEXT_ENV, "spawn")
    assert shm.mp_context_name() == "spawn"
    # The executor rebuilds itself when the requested context changes.
    spawn = _ok_figures(run_jobs(MATRIX, EXPERIMENT_CONFIG, 2))
    assert fork == serial
    assert spawn == serial


# ----------------------------------------------------------------------
# Lifecycle: no leaked segments across exit paths
# ----------------------------------------------------------------------
def test_normal_exit_releases_every_segment():
    run_jobs(MATRIX, EXPERIMENT_CONFIG, 2)
    # Segments persist across run_jobs calls by design (the next sweep
    # reuses them); the manifest knows exactly what to unlink and the
    # atexit hook is armed to do it.
    published = shm.manifest_names()
    assert len(published) == 2  # one segment per workload
    assert shm._ATEXIT_REGISTERED
    assert shm.release_all() == 2
    assert shm.manifest_names() == []
    assert shm.release_all() == 0  # idempotent


def test_keyboard_interrupt_releases_segments(monkeypatch):
    from repro import parallel

    def explode(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(parallel, "_run_pool", explode)
    with pytest.raises(KeyboardInterrupt):
        run_jobs(MATRIX, EXPERIMENT_CONFIG, 2)
    assert shm.manifest_names() == []


def test_chaos_killed_worker_does_not_unlink_segments(monkeypatch):
    """A dying worker's resource tracker must never take parent-owned
    segments down with it (attach unregisters them); the rebuilt pool
    finishes the sweep off the same segments, bit-identically."""
    reference = [_figures(simulate_spec(w, s, "", EXPERIMENT_CONFIG))
                 for w, s in MATRIX]
    monkeypatch.setenv(chaos.CHAOS_ENV, f"kill={APP}/none")
    chaos.reset_chaos()
    results = run_jobs(MATRIX, EXPERIMENT_CONFIG, 2,
                       policy=RetryPolicy(max_attempts=3,
                                          backoff_seconds=0.01))
    assert _ok_figures(results) == reference
    assert fault_counters()["worker_lost"] >= 1
    # The segments survived the kill: still in the manifest, and still
    # attachable from this process (the file exists in /dev/shm).
    entries = shm.published()
    assert sorted(entries) == sorted({w for w, _ in MATRIX})
    from multiprocessing import shared_memory

    for entry in entries.values():
        handle = shared_memory.SharedMemory(name=entry.segment,
                                            create=False)
        shm._unregister_tracker(handle)
        handle.close()
    assert shm.release_all() == len(entries)
    assert shm.manifest_names() == []


# ----------------------------------------------------------------------
# Work stealing
# ----------------------------------------------------------------------
def test_imbalanced_matrix_records_steals():
    """Six cells of one workload vs two of another at 2 workers: lanes
    that drain their home queue steal the other workload's tail."""
    matrix = ([(APP, "none", f"t{i}") for i in range(6)]
              + [(APP2, "none", "t0"), (APP2, "none", "t1")])
    serial = _ok_figures(run_jobs(matrix, EXPERIMENT_CONFIG, 1))
    obs = FabricObs("steal-test")
    results = run_jobs(matrix, EXPERIMENT_CONFIG, 2, obs=obs)
    obs.finish()
    assert _ok_figures(results) == serial

    counters = obs.metrics.snapshot()["counters"]
    assert counters.get("pool.steals", 0) >= 1
    steal_spans = [s for s in obs.spans if s.name == "steal"]
    assert len(steal_spans) == counters["pool.steals"]
    stolen_units = [s for s in obs.spans
                    if s.name == "unit" and s.attrs.get("stolen")]
    assert len(stolen_units) == counters["pool.steals"]

    report = pool_report(obs.records())
    assert report["steals"] == counters["pool.steals"]
    assert sum(entry["steals"] for entry in report["workers"].values()) \
        == report["steals"]


def test_steal_disabled_restores_static_fifo(monkeypatch):
    from repro.parallel.stealing import STEAL_ENV, stealing_enabled

    monkeypatch.setenv(STEAL_ENV, "0")
    assert not stealing_enabled()
    serial = _ok_figures(run_jobs(MATRIX, EXPERIMENT_CONFIG, 1))
    obs = FabricObs("no-steal")
    results = run_jobs(MATRIX, EXPERIMENT_CONFIG, 2, obs=obs)
    obs.finish()
    assert _ok_figures(results) == serial
    assert not [s for s in obs.spans if s.name == "steal"]
    assert "pool.steals" not in obs.metrics.snapshot()["counters"]


# ----------------------------------------------------------------------
# Plan registry: same-name trace objects share replay plans
# ----------------------------------------------------------------------
def test_plan_registry_reuses_plans_across_trace_objects():
    from repro.engine import batch
    from repro.isa.trace import CompiledTrace

    simulate_spec(APP, "none", "", EXPERIMENT_CONFIG)
    trace1 = get_workload(APP).trace()
    assert trace1._plans, "the none cell should have built a batch plan"
    key, plan = next(iter(trace1._plans.items()))

    # A re-materialized trace of the same workload (what a shared-memory
    # attach or a cache reload produces) must reuse the plan, not
    # rebuild it.
    trace2 = CompiledTrace.from_column_bytes(
        trace1.name, trace1.column_bytes(), dict(trace1.memory),
        derived=trace1.derived_bytes(), segments=trace1.segment_bytes())

    def boom(trace, key):
        raise AssertionError("plan was rebuilt instead of reused")

    assert batch._get_plan(trace2, key, boom, "test") is plan
    assert trace2._plans[key] is plan


# ----------------------------------------------------------------------
# Bench honesty: null speedup on serial fallback
# ----------------------------------------------------------------------
def test_check_regression_skips_gate_on_null_speedup(tmp_path, monkeypatch):
    from repro.bench import check_regression

    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(
        {"quick": {"instr_per_sec": 1000}, "full": {"instr_per_sec": 1000}}))
    report = {
        "quick": True,
        "serial": {"instr_per_sec": 1000},
        "parallel": {"jobs": 2, "cpus": 1, "speedup_vs_serial": None,
                     "fallback": "serial",
                     "fallback_reason": "host has 1 cpu(s)"},
    }
    assert check_regression(report, str(baseline)) is None
    # The gate annotation derives from the null value itself.
    assert report["baseline"]["parallel_gate"] == "skipped (serial fallback)"

    import repro.bench as bench_mod

    monkeypatch.setattr(bench_mod.os, "cpu_count", lambda: 4)
    report = {
        "quick": True,
        "serial": {"instr_per_sec": 1000},
        "parallel": {"jobs": 2, "cpus": 4, "speedup_vs_serial": 0.8},
    }
    error = check_regression(report, str(baseline))
    assert error is not None and "0.8" in error
    assert report["baseline"]["parallel_gate"] == "enforced"


def test_bench_parallel_reports_null_speedup_on_fallback(monkeypatch):
    from repro import bench as bench_mod
    from repro import parallel

    # Force the fallback prediction regardless of host shape.
    monkeypatch.setattr(parallel, "serial_fallback_reason",
                        lambda cells, jobs: "forced for test")
    section = bench_mod.bench_parallel(MATRIX, EXPERIMENT_CONFIG, 2, 1.0)
    assert section["speedup_vs_serial"] is None
    assert section["fallback"] == "serial"
    assert section["fallback_reason"] == "forced for test"
    assert "steals" in section["utilization"]
