"""Tests for the first-order energy model."""

import pytest

from repro.analysis.energy import EnergyBreakdown, estimate, net_benefit
from repro.engine.system import simulate
from repro.prefetcher_registry import make_prefetcher


class TestEnergyModel:
    def test_breakdown_components_positive(self, strided_trace):
        result = simulate(strided_trace)
        breakdown = estimate(result)
        assert breakdown.static_uj > 0
        assert breakdown.cache_uj > 0
        assert breakdown.dram_uj > 0
        assert breakdown.total_uj == pytest.approx(
            breakdown.static_uj + breakdown.cache_uj + breakdown.dram_uj
            + breakdown.prefetcher_uj
        )

    def test_storage_leakage_scales(self, strided_trace):
        result = simulate(strided_trace)
        small = estimate(result, prefetcher_storage_bits=8 * 1024)
        large = estimate(result, prefetcher_storage_bits=8 * 1024 * 100)
        assert large.prefetcher_uj > small.prefetcher_uj

    def test_good_prefetcher_saves_energy(self, strided_trace):
        """The paper's Sec. I claim on its favorable case: an accurate
        prefetcher's runtime savings dwarf its own energy cost."""
        baseline = simulate(strided_trace)
        tpc = make_prefetcher("tpc")
        result = simulate(strided_trace, tpc)
        assert result.cycles < baseline.cycles
        assert net_benefit(result, baseline, tpc.storage_bits) > 0

    def test_useless_prefetching_costs_energy(self, chain_trace):
        """A prefetcher that sprays traffic without reducing runtime is a
        net energy loss."""
        from repro.baselines.nextline import NextLinePrefetcher
        baseline = simulate(chain_trace)
        # Next-line on a scattered chain: almost pure waste.
        result = simulate(chain_trace, NextLinePrefetcher(degree=4))
        if result.cycles >= baseline.cycles * 0.99:
            assert net_benefit(result, baseline, 0) <= 0

    def test_energy_experiment_small(self):
        from repro.experiments import energy_check
        rows = energy_check.run(apps=["spec.libquantum"],
                                prefetchers=["tpc"])
        assert rows[0].wins == 1
        assert rows[0].average_saving_pct > 0
        assert "net-win" in energy_check.render(rows)
