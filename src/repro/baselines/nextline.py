"""Next-line prefetcher (Jouppi-style, paper ref [15]).

On every demand miss, prefetch the next ``degree`` sequential lines.  The
simplest possible scope/accuracy point: broad scope on sequential code,
zero pattern intelligence.
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest


class NextLinePrefetcher(Prefetcher):
    name = "nextline"

    def __init__(self, degree: int = 1, on_miss_only: bool = True,
                 target_level: int = 1) -> None:
        self.degree = degree
        self.on_miss_only = on_miss_only
        self.target_level = target_level

    def on_access(self, event: AccessEvent):
        if self.on_miss_only and event.hit:
            return None
        return [
            PrefetchRequest(event.line + k, self.target_level, self.name)
            for k in range(1, self.degree + 1)
        ]

    @property
    def storage_bits(self) -> int:
        return 0
