"""SPP — Signature Path Prefetcher (Kim et al., MICRO 2016; paper ref [17]).

Per-4KB-page signatures compress the recent delta history; a pattern table
maps a signature to candidate next deltas with confidence counters.  The
lookahead mechanism chains predictions — each predicted delta produces a
new speculative signature, and prefetching continues down the "path" while
the multiplied confidence stays above threshold.

Table II configuration: 256-entry signature table, 512-entry pattern
table, 1024-entry prefetch filter, 8-entry GHR, 5 KB.
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest

_SIGNATURE_BITS = 12
_SIGNATURE_MASK = (1 << _SIGNATURE_BITS) - 1
_LINES_PER_PAGE = 64


def _advance_signature(signature: int, delta: int) -> int:
    """The SPP signature update function: shift and fold in the delta."""
    return ((signature << 3) ^ (delta & 0x7F)) & _SIGNATURE_MASK


class _PatternEntry:
    """Candidate deltas (up to 4) with confidence counters for one
    signature."""

    __slots__ = ("deltas", "counts", "total")

    def __init__(self) -> None:
        self.deltas: list[int] = []
        self.counts: list[int] = []
        self.total = 0

    def update(self, delta: int) -> None:
        self.total += 1
        if delta in self.deltas:
            i = self.deltas.index(delta)
            self.counts[i] += 1
            return
        if len(self.deltas) < 4:
            self.deltas.append(delta)
            self.counts.append(1)
            return
        # Replace the weakest candidate.
        weakest = min(range(4), key=lambda i: self.counts[i])
        self.deltas[weakest] = delta
        self.counts[weakest] = 1

    def best(self) -> tuple[int, float] | None:
        if not self.deltas or self.total == 0:
            return None
        i = max(range(len(self.deltas)), key=lambda i: self.counts[i])
        return self.deltas[i], self.counts[i] / self.total


class SppPrefetcher(Prefetcher):
    name = "spp"

    def __init__(self, signature_entries: int = 256,
                 pattern_entries: int = 512,
                 filter_entries: int = 1024,
                 confidence_threshold: float = 0.25,
                 max_lookahead: int = 8,
                 target_level: int = 1) -> None:
        self.signature_entries = signature_entries
        self.pattern_entries = pattern_entries
        self.filter_entries = filter_entries
        self.confidence_threshold = confidence_threshold
        self.max_lookahead = max_lookahead
        self.target_level = target_level
        # page -> (signature, last offset); insertion order approximates LRU.
        self._signatures: dict[int, tuple[int, int]] = {}
        self._patterns: dict[int, _PatternEntry] = {}
        self._filter: dict[int, None] = {}

    def reset(self) -> None:
        self._signatures.clear()
        self._patterns.clear()
        self._filter.clear()

    # ------------------------------------------------------------------
    def _filter_admit(self, line: int) -> bool:
        """Prefetch filter: suppress recently requested lines."""
        if line in self._filter:
            return False
        if len(self._filter) >= self.filter_entries:
            self._filter.pop(next(iter(self._filter)))
        self._filter[line] = None
        return True

    def _pattern(self, signature: int) -> _PatternEntry:
        entry = self._patterns.get(signature)
        if entry is None:
            if len(self._patterns) >= self.pattern_entries:
                self._patterns.pop(next(iter(self._patterns)))
            entry = _PatternEntry()
            self._patterns[signature] = entry
        return entry

    # ------------------------------------------------------------------
    def on_access(self, event: AccessEvent):
        page = event.line // _LINES_PER_PAGE
        offset = event.line % _LINES_PER_PAGE
        stored = self._signatures.get(page)
        if stored is not None:
            signature, last_offset = stored
            delta = offset - last_offset
            if delta != 0:
                self._pattern(signature).update(delta)
                signature = _advance_signature(signature, delta)
                self._signatures[page] = (signature, offset)
        else:
            if len(self._signatures) >= self.signature_entries:
                self._signatures.pop(next(iter(self._signatures)))
            signature = _advance_signature(0, offset)
            self._signatures[page] = (signature, offset)
            return None

        # Lookahead down the signature path.
        requests: list[PrefetchRequest] = []
        confidence = 1.0
        speculative_offset = offset
        speculative_signature = signature
        page_base = page * _LINES_PER_PAGE
        for _ in range(self.max_lookahead):
            prediction = self._patterns.get(speculative_signature)
            best = prediction.best() if prediction is not None else None
            if best is None:
                break
            delta, path_confidence = best
            confidence *= path_confidence
            if confidence < self.confidence_threshold:
                break
            speculative_offset += delta
            if not 0 <= speculative_offset < _LINES_PER_PAGE:
                break  # SPP stops at page boundaries
            line = page_base + speculative_offset
            if self._filter_admit(line):
                requests.append(
                    PrefetchRequest(line, self.target_level, self.name)
                )
            speculative_signature = _advance_signature(
                speculative_signature, delta
            )
        return requests or None

    @property
    def storage_bits(self) -> int:
        # ST: 256 x (16 tag + 12 sig + 6 offset); PT: 512 x 4 x (7 delta +
        # 4 count); filter: 1024 x 16; GHR folded into ST here.
        return (
            self.signature_entries * (16 + 12 + 6)
            + self.pattern_entries * 4 * (7 + 4)
            + self.filter_entries * 16
        )
