"""ISB-style irregular stream buffer (Jain & Lin, MICRO 2013; paper ref
[13]).

ISB linearizes irregular-but-repeating miss sequences: correlated
physical lines are assigned consecutive *structural* addresses in a
per-stream region, so that "the next element of this irregular traversal"
becomes "structural address + 1".  Two bounded maps implement it:

* PS (physical -> structural) — trained on PC-localized miss pairs,
* SP (structural -> physical) — the inverse, used to generate prefetches.

On a miss whose line has a structural address ``s``, the physical lines
mapped at ``s+1 .. s+degree`` are prefetched.  The design shines on
pointer structures traversed repeatedly in the same order — the classic
HHF pattern — and is included as a second candidate extra component for
the paper's future-work direction.
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest

_REGION = 256  # structural addresses per allocated stream region


class IsbPrefetcher(Prefetcher):
    name = "isb"

    def __init__(self, capacity: int = 8192, degree: int = 3,
                 target_level: int = 2) -> None:
        self.capacity = capacity
        self.degree = degree
        self.target_level = target_level
        self._ps: dict[int, int] = {}      # physical line -> structural
        self._sp: dict[int, int] = {}      # structural -> physical line
        self._last_miss_of_pc: dict[int, int] = {}
        self._next_region = 0

    def reset(self) -> None:
        self._ps.clear()
        self._sp.clear()
        self._last_miss_of_pc.clear()
        self._next_region = 0

    # ------------------------------------------------------------------
    def _assign(self, line: int, structural: int) -> None:
        if len(self._ps) >= self.capacity:
            # Evict the oldest mapping pair (FIFO on insertion order).
            old_line, old_structural = next(iter(self._ps.items()))
            del self._ps[old_line]
            self._sp.pop(old_structural, None)
        previous = self._ps.get(line)
        if previous is not None:
            self._sp.pop(previous, None)
        self._ps[line] = structural
        self._sp[structural] = line

    def _new_region(self) -> int:
        region = self._next_region
        self._next_region += _REGION
        return region

    def _train(self, pc: int, line: int) -> None:
        previous = self._last_miss_of_pc.get(pc)
        self._last_miss_of_pc[pc] = line
        if previous is None or previous == line:
            return
        previous_structural = self._ps.get(previous)
        if previous_structural is None:
            # Start a new structural stream at a fresh region.
            previous_structural = self._new_region()
            self._assign(previous, previous_structural)
        successor = previous_structural + 1
        if successor % _REGION == 0:
            return  # region exhausted; a new stream will form
        if line in self._ps:
            return  # first linearization wins; stable across laps
        if successor in self._sp:
            return  # slot taken by an earlier stream element
        self._assign(line, successor)

    # ------------------------------------------------------------------
    def on_access(self, event: AccessEvent):
        if event.hit and not event.served_by_prefetch:
            return None
        line = event.line
        self._train(event.pc, line)
        structural = self._ps.get(line)
        if structural is None:
            return None
        requests = []
        for k in range(1, self.degree + 1):
            successor = structural + k
            if successor % _REGION < structural % _REGION:
                break  # crossed the region boundary
            target = self._sp.get(successor)
            if target is not None and target != line:
                requests.append(
                    PrefetchRequest(target, self.target_level, self.name)
                )
        return requests or None

    @property
    def storage_bits(self) -> int:
        # Two maps of `capacity` (26b line + 20b structural) pairs; the
        # real ISB backs this with off-chip metadata + on-chip TLB-synced
        # caches, hence the paper's "reduced space" framing.
        return 2 * self.capacity * (26 + 20)
