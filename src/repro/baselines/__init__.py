"""Monolithic baseline prefetchers evaluated in the paper (Table II):

GHB-PC/DC, SPP, VLDP, BOP, FDP, SMS, AMPM, plus a classic PC-stride
prefetcher and a next-line prefetcher as reference points.

All baselines observe the demand L1D access stream and (per the paper's
Sec. V-C footnote) prefetch into L1 by default; their ``target_level`` can
be overridden for the Fig. 16 destination experiment.
"""

__all__ = [
    "AmpmPrefetcher",
    "IsbPrefetcher",
    "MarkovPrefetcher",
    "BopPrefetcher",
    "FdpPrefetcher",
    "GhbPcDcPrefetcher",
    "NextLinePrefetcher",
    "SmsPrefetcher",
    "SppPrefetcher",
    "StridePrefetcher",
    "VldpPrefetcher",
]

_MODULE_OF = {
    "AmpmPrefetcher": "ampm",
    "IsbPrefetcher": "isb",
    "MarkovPrefetcher": "markov",
    "BopPrefetcher": "bop",
    "FdpPrefetcher": "fdp",
    "GhbPcDcPrefetcher": "ghb",
    "NextLinePrefetcher": "nextline",
    "SmsPrefetcher": "sms",
    "SppPrefetcher": "spp",
    "StridePrefetcher": "stride",
    "VldpPrefetcher": "vldp",
}


def __getattr__(name):
    module_name = _MODULE_OF.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f"repro.baselines.{module_name}")
    return getattr(module, name)
