"""VLDP — Variable Length Delta Prefetcher (Shevgoor et al., MICRO 2015;
paper ref [29]).

Per-page delta histories feed multiple delta prediction tables (DPTs):
DPT-1 predicts from the single most recent delta, DPT-2 from the last two,
DPT-3 from the last three.  Prediction always prefers the longest-history
table that hits.  An offset prediction table (OPT) predicts the first
delta of a freshly touched page from its first-access offset.

Table II configuration: 64-entry DHB, 128-entry DPT, 128-entry OPT,
3.25 KB.
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest

_LINES_PER_PAGE = 64


class _DhbEntry:
    """Delta history buffer entry for one page."""

    __slots__ = ("last_offset", "deltas")

    def __init__(self, offset: int) -> None:
        self.last_offset = offset
        self.deltas: list[int] = []

    def push(self, delta: int) -> None:
        self.deltas.append(delta)
        if len(self.deltas) > 3:
            self.deltas.pop(0)


class _BoundedTable:
    """Insertion-ordered dict bounded to ``capacity`` (FIFO replacement)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._data: dict = {}

    def get(self, key):
        return self._data.get(key)

    def put(self, key, value) -> None:
        if key not in self._data and len(self._data) >= self.capacity:
            self._data.pop(next(iter(self._data)))
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


class VldpPrefetcher(Prefetcher):
    name = "vldp"

    def __init__(self, dhb_entries: int = 64, dpt_entries: int = 128,
                 opt_entries: int = 128, degree: int = 4,
                 target_level: int = 1) -> None:
        self.dhb_entries = dhb_entries
        self.dpt_entries = dpt_entries
        self.opt_entries = opt_entries
        self.degree = degree
        self.target_level = target_level
        self._dhb = _BoundedTable(dhb_entries)           # page -> _DhbEntry
        # DPT-k maps a tuple of the last k deltas -> predicted next delta.
        self._dpts = [_BoundedTable(dpt_entries) for _ in range(3)]
        self._opt = _BoundedTable(opt_entries)           # first offset -> delta

    def reset(self) -> None:
        self._dhb.clear()
        for dpt in self._dpts:
            dpt.clear()
        self._opt.clear()

    # ------------------------------------------------------------------
    def _predict(self, deltas: list[int]) -> int | None:
        """Longest-matching-history prediction."""
        for k in range(min(3, len(deltas)), 0, -1):
            key = tuple(deltas[-k:])
            prediction = self._dpts[k - 1].get(key)
            if prediction is not None:
                return prediction
        return None

    def on_access(self, event: AccessEvent):
        page = event.line // _LINES_PER_PAGE
        offset = event.line % _LINES_PER_PAGE
        entry = self._dhb.get(page)
        if entry is None:
            self._dhb.put(page, _DhbEntry(offset))
            # First touch of a page: OPT predicts the first delta.
            first_delta = self._opt.get(offset)
            if first_delta is None:
                return None
            target = offset + first_delta
            if not 0 <= target < _LINES_PER_PAGE:
                return None
            return [
                PrefetchRequest(page * _LINES_PER_PAGE + target,
                                self.target_level, self.name)
            ]

        delta = offset - entry.last_offset
        if delta == 0:
            return None
        # Train: the history that preceded this delta now predicts it.
        deltas = entry.deltas
        for k in range(1, min(3, len(deltas)) + 1):
            self._dpts[k - 1].put(tuple(deltas[-k:]), delta)
        if not deltas:
            # This was the first delta in the page: train the OPT.
            first_offset = entry.last_offset
            self._opt.put(first_offset, delta)
        entry.push(delta)
        entry.last_offset = offset

        # Predict a chain of future deltas.
        requests: list[PrefetchRequest] = []
        speculative = list(entry.deltas)
        speculative_offset = offset
        page_base = page * _LINES_PER_PAGE
        seen = {event.line}
        for _ in range(self.degree):
            prediction = self._predict(speculative)
            if prediction is None:
                break
            speculative_offset += prediction
            if not 0 <= speculative_offset < _LINES_PER_PAGE:
                break
            line = page_base + speculative_offset
            if line not in seen:
                seen.add(line)
                requests.append(
                    PrefetchRequest(line, self.target_level, self.name)
                )
            speculative.append(prediction)
            if len(speculative) > 3:
                speculative.pop(0)
        return requests or None

    @property
    def storage_bits(self) -> int:
        # DHB: 64 x (36 tag + 6 offset + 3x7 deltas); DPT: 3 x 128 x
        # (21 key + 7 delta); OPT: 128 x (6 + 7).
        return (
            self.dhb_entries * (36 + 6 + 21)
            + 3 * self.dpt_entries * (21 + 7)
            + self.opt_entries * 13
        )
