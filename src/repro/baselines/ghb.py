"""GHB PC/DC prefetcher (Nesbit & Smith, HPCA 2004; paper ref [22]).

A Global History Buffer: a 256-entry circular FIFO of miss addresses.
Entries of the same localization key (the PC) are chained with link
pointers; a 256-entry Index Table maps PC -> most recent GHB entry.

PC/DC = PC-localized, Delta Correlated: on each miss the prefetcher walks
the PC's chain to recover its recent address history, forms the delta
stream, finds the previous occurrence of the most recent delta *pair*, and
replays the deltas that followed it as prefetch predictions.

Table II configuration: 256-entry GHB, 256-entry index table, 4 KB.
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest


class GhbPcDcPrefetcher(Prefetcher):
    name = "ghb"

    def __init__(self, ghb_entries: int = 256, index_entries: int = 256,
                 degree: int = 4, history: int = 8,
                 target_level: int = 1) -> None:
        self.ghb_entries = ghb_entries
        self.index_entries = index_entries
        self.degree = degree
        self.history = history
        self.target_level = target_level
        # Circular buffer slots: (line_addr, previous-slot-sequence) plus a
        # global sequence number to detect stale links.
        self._addresses = [0] * ghb_entries
        self._links = [-1] * ghb_entries
        self._sequence = 0
        self._index: dict[int, int] = {}

    def reset(self) -> None:
        self._addresses = [0] * self.ghb_entries
        self._links = [-1] * self.ghb_entries
        self._sequence = 0
        self._index.clear()

    # ------------------------------------------------------------------
    def _push(self, pc: int, line: int) -> int:
        """Append a GHB entry, returning its sequence number."""
        sequence = self._sequence
        slot = sequence % self.ghb_entries
        self._addresses[slot] = line
        self._links[slot] = self._index.get(pc, -1)
        self._sequence = sequence + 1
        if pc not in self._index and len(self._index) >= self.index_entries:
            # Index table full: evict an arbitrary (oldest-inserted) entry.
            self._index.pop(next(iter(self._index)))
        self._index[pc] = sequence
        return sequence

    def _chain(self, pc: int) -> list[int]:
        """Most-recent-first line addresses of this PC still in the GHB."""
        addresses: list[int] = []
        sequence = self._index.get(pc, -1)
        oldest_live = self._sequence - self.ghb_entries
        while sequence >= 0 and sequence >= oldest_live:
            slot = sequence % self.ghb_entries
            addresses.append(self._addresses[slot])
            if len(addresses) >= self.history:
                break
            sequence = self._links[slot]
        return addresses

    # ------------------------------------------------------------------
    def on_access(self, event: AccessEvent):
        if event.hit:
            return None
        self._push(event.pc, event.line)
        chain = self._chain(event.pc)
        if len(chain) < 4:
            return None
        # chain is most-recent-first; deltas oldest-first.
        ordered = chain[::-1]
        deltas = [b - a for a, b in zip(ordered, ordered[1:])]
        if not deltas:
            return None
        # Correlation key: the last two deltas.
        key = (deltas[-2], deltas[-1]) if len(deltas) >= 2 else None
        predictions: list[int] = []
        if key is not None:
            for i in range(len(deltas) - 3, -1, -1):
                if i + 1 < len(deltas) - 1 and (deltas[i], deltas[i + 1]) == key:
                    predictions = deltas[i + 2:i + 2 + self.degree]
                    break
        if not predictions:
            # Fall back to constant-delta replay if the stream is steady.
            if len(set(deltas[-3:])) == 1:
                predictions = [deltas[-1]] * self.degree
            else:
                return None
        requests = []
        line = event.line
        seen = {line}
        for delta in predictions[: self.degree]:
            line += delta
            if line >= 0 and line not in seen:
                seen.add(line)
                requests.append(
                    PrefetchRequest(line, self.target_level, self.name)
                )
        return requests or None

    @property
    def storage_bits(self) -> int:
        # GHB: 256 x (58b address + 8b link); IT: 256 x (32b PC tag + 8b ptr)
        return self.ghb_entries * (58 + 8) + self.index_entries * (32 + 8)
