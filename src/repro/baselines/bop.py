"""BOP — Best-Offset Prefetcher (Michaud, HPCA 2016; paper ref [20]).

BOP learns a single best prefetch *offset* for the current program phase.
A recent-requests (RR) table remembers base addresses of recent fills; a
learning engine round-robins through a fixed offset list, scoring an
offset whenever the line that *would have been its trigger* is found in
the RR table.  When a learning round ends (an offset reaches SCORE_MAX or
ROUND_MAX rounds complete), the best-scoring offset becomes the prefetch
offset — or prefetching turns off if the best score is too low.

Table II configuration: 1K-entry RR table, 1 Kb of prefetch bits, 4 KB.
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest

# Offsets with no prime factor > 5, as in the original design.
DEFAULT_OFFSETS = [
    1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25,
    27, 30, 32, 36, 40, 45, 48, 50, 54, 60, 64,
]

SCORE_MAX = 31
ROUND_MAX = 100
BAD_SCORE = 1


class BopPrefetcher(Prefetcher):
    name = "bop"

    def __init__(self, rr_entries: int = 1024,
                 offsets: list[int] | None = None,
                 target_level: int = 1) -> None:
        self.rr_entries = rr_entries
        self.offsets = list(offsets) if offsets is not None else list(
            DEFAULT_OFFSETS
        )
        self.target_level = target_level
        self._rr: dict[int, None] = {}
        self._scores = [0] * len(self.offsets)
        self._test_index = 0
        self._round = 0
        self._best_offset = 1
        self._prefetching_on = True

    def reset(self) -> None:
        self._rr.clear()
        self._scores = [0] * len(self.offsets)
        self._test_index = 0
        self._round = 0
        self._best_offset = 1
        self._prefetching_on = True

    # ------------------------------------------------------------------
    def _rr_insert(self, line: int) -> None:
        if line in self._rr:
            return
        if len(self._rr) >= self.rr_entries:
            self._rr.pop(next(iter(self._rr)))
        self._rr[line] = None

    def _learn(self, line: int) -> None:
        """One learning step: test the next offset against this trigger."""
        offset = self.offsets[self._test_index]
        if (line - offset) in self._rr:
            self._scores[self._test_index] += 1
            if self._scores[self._test_index] >= SCORE_MAX:
                self._end_round()
                return
        self._test_index += 1
        if self._test_index >= len(self.offsets):
            self._test_index = 0
            self._round += 1
            if self._round >= ROUND_MAX:
                self._end_round()

    def _end_round(self) -> None:
        best_index = max(range(len(self.offsets)),
                         key=lambda i: self._scores[i])
        best_score = self._scores[best_index]
        self._best_offset = self.offsets[best_index]
        self._prefetching_on = best_score > BAD_SCORE
        self._scores = [0] * len(self.offsets)
        self._test_index = 0
        self._round = 0

    # ------------------------------------------------------------------
    def on_access(self, event: AccessEvent):
        # BOP triggers on demand misses and on the first hit to a
        # prefetched line, as in the original design.
        if event.hit and not event.served_by_prefetch:
            return None
        self._learn(event.line)
        if not self._prefetching_on:
            return None
        return [
            PrefetchRequest(event.line + self._best_offset,
                            self.target_level, self.name)
        ]

    def on_fill(self, line: int, level: int,
                prefetched: bool = False) -> None:
        # Original BOP RR policy: on completion of a *prefetch* for line
        # X (triggered by base X - D), insert the base X - D; when
        # prefetching is off, insert demand-missed lines directly so
        # learning can restart.
        if prefetched:
            self._rr_insert(line - self._best_offset)
        elif not self._prefetching_on:
            self._rr_insert(line)

    @property
    def storage_bits(self) -> int:
        # RR: 1024 x 12b hashed tags + score/round state + offset list.
        return self.rr_entries * 12 + len(self.offsets) * (5 + 7) + 32
