"""Classic PC-indexed stride prefetcher (Chen & Baer style, paper ref [18]
lineage).

Per-PC entries track the last address and the last observed stride with a
2-bit confidence.  Once confident, it prefetches ``degree`` strides ahead.
A useful reference point: simple, accurate on canonical streams, blind to
everything else.
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest


class _Entry:
    __slots__ = ("last_addr", "stride", "confidence", "lru")

    def __init__(self, last_addr: int, lru: int) -> None:
        self.last_addr = last_addr
        self.stride = 0
        self.confidence = 0
        self.lru = lru


class StridePrefetcher(Prefetcher):
    """PC-based stride table."""

    name = "stride"

    def __init__(self, table_entries: int = 256, degree: int = 4,
                 confidence_threshold: int = 2,
                 target_level: int = 1) -> None:
        self.table_entries = table_entries
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self.target_level = target_level
        self._table: dict[int, _Entry] = {}
        self._clock = 0

    def reset(self) -> None:
        self._table.clear()
        self._clock = 0

    def on_access(self, event: AccessEvent):
        self._clock += 1
        entry = self._table.get(event.pc)
        if entry is None:
            if len(self._table) >= self.table_entries:
                victim = min(self._table, key=lambda pc: self._table[pc].lru)
                del self._table[victim]
            self._table[event.pc] = _Entry(event.addr, self._clock)
            return None

        entry.lru = self._clock
        stride = event.addr - entry.last_addr
        entry.last_addr = event.addr
        if stride == 0:
            return None
        if stride == entry.stride:
            if entry.confidence < 3:
                entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 0
            return None

        if entry.confidence < self.confidence_threshold:
            return None
        requests = []
        line = event.line
        seen = {line}
        for k in range(1, self.degree + 1):
            target = (event.addr + k * stride) >> 6
            if target not in seen and target >= 0:
                seen.add(target)
                requests.append(
                    PrefetchRequest(target, self.target_level, self.name)
                )
        return requests or None

    @property
    def storage_bits(self) -> int:
        # 256 entries x (last addr 58b + stride 16b + confidence 2b + tag 16b)
        return self.table_entries * (58 + 16 + 2 + 16)
