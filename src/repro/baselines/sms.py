"""SMS — Spatial Memory Streaming (Somogyi et al., ISCA 2006; paper refs
[30]/[31]).

SMS records, per *spatial region generation*, the bit pattern of lines
touched within a region (here 2 KB = 32 lines), associated with the
(PC, region-offset) of the access that triggered the generation.  When the
same trigger recurs on a new region, the stored pattern is streamed out as
prefetches.

Structures (Table II): 64-entry active generation table (AT), 32-entry
filter table (FR), 512-entry pattern history table (PHT), 12 KB.
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest

_REGION_LINES = 32  # 2 KB regions of 64 B lines


class _Generation:
    __slots__ = ("trigger_key", "pattern", "trigger_offset", "lru")

    def __init__(self, trigger_key: int, trigger_offset: int,
                 lru: int) -> None:
        self.trigger_key = trigger_key
        self.trigger_offset = trigger_offset
        self.pattern = 1 << trigger_offset
        self.lru = lru


class SmsPrefetcher(Prefetcher):
    name = "sms"

    def __init__(self, active_entries: int = 64, filter_entries: int = 32,
                 pht_entries: int = 512, target_level: int = 1) -> None:
        self.active_entries = active_entries
        self.filter_entries = filter_entries
        self.pht_entries = pht_entries
        self.target_level = target_level
        self._active: dict[int, _Generation] = {}    # region -> generation
        self._filter: dict[int, tuple[int, int]] = {}  # region -> (key, off)
        self._pht: dict[int, int] = {}               # trigger key -> pattern
        self._clock = 0

    def reset(self) -> None:
        self._active.clear()
        self._filter.clear()
        self._pht.clear()
        self._clock = 0

    # ------------------------------------------------------------------
    def _trigger_key(self, pc: int, offset: int) -> int:
        return (pc << 5) | offset

    def _record_generation(self, generation: _Generation) -> None:
        """Generation ended: store its pattern (if spatial) in the PHT."""
        if bin(generation.pattern).count("1") < 2:
            return  # single-line generations carry no spatial information
        if generation.trigger_key not in self._pht and (
            len(self._pht) >= self.pht_entries
        ):
            self._pht.pop(next(iter(self._pht)))
        self._pht[generation.trigger_key] = generation.pattern

    def on_access(self, event: AccessEvent):
        region = event.line // _REGION_LINES
        offset = event.line % _REGION_LINES
        self._clock += 1

        generation = self._active.get(region)
        if generation is not None:
            generation.pattern |= 1 << offset
            generation.lru = self._clock
            return None

        # Filter table: a region must be touched twice to start a
        # generation (filters out sparse one-off touches).
        if region in self._filter:
            key, trigger_offset = self._filter.pop(region)
            if len(self._active) >= self.active_entries:
                victim = min(self._active,
                             key=lambda r: self._active[r].lru)
                self._record_generation(self._active.pop(victim))
            new_generation = _Generation(key, trigger_offset, self._clock)
            new_generation.pattern |= 1 << offset
            self._active[region] = new_generation
            return None

        if len(self._filter) >= self.filter_entries:
            self._filter.pop(next(iter(self._filter)))
        key = self._trigger_key(event.pc, offset)
        self._filter[region] = (key, offset)

        # Prediction: does the PHT know this trigger?
        pattern = self._pht.get(key)
        if pattern is None:
            return None
        region_base = region * _REGION_LINES
        requests = []
        for bit in range(_REGION_LINES):
            if pattern & (1 << bit) and bit != offset:
                requests.append(
                    PrefetchRequest(region_base + bit, self.target_level,
                                    self.name)
                )
        return requests or None

    @property
    def storage_bits(self) -> int:
        # AT: 64 x (26 tag + 32 pattern + 37 key); FR: 32 x (26 + 37);
        # PHT: 512 x (37 tag + 32 pattern)  ~= 12 KB per Table II.
        return (
            self.active_entries * (26 + 32 + 37)
            + self.filter_entries * (26 + 37)
            + self.pht_entries * (37 + 32)
        )
