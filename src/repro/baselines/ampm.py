"""AMPM — Access Map Pattern Matching (Ishii et al., JILP 2011; paper ref
[12]).

Memory is divided into zones (4 KB = 64 lines here); each tracked zone
keeps an access bitmap.  On every access at line *t*, the pattern matcher
checks, for each candidate stride *k*, whether lines *t-k* and *t-2k*
were both accessed; if so, *t+k* is a predicted future access and is
prefetched (symmetrically for negative strides).

Table II configuration: 128 access maps, 256 bits per map, 4 KB.
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest

_ZONE_LINES = 64  # 4 KB zone of 64 B lines


class _Zone:
    __slots__ = ("accessed", "prefetched", "lru")

    def __init__(self, lru: int) -> None:
        self.accessed = 0
        self.prefetched = 0
        self.lru = lru


class AmpmPrefetcher(Prefetcher):
    name = "ampm"

    def __init__(self, maps: int = 128, max_stride: int = 16,
                 degree: int = 4, target_level: int = 1) -> None:
        self.maps = maps
        self.max_stride = max_stride
        self.degree = degree
        self.target_level = target_level
        self._zones: dict[int, _Zone] = {}
        self._clock = 0

    def reset(self) -> None:
        self._zones.clear()
        self._clock = 0

    # ------------------------------------------------------------------
    def _zone(self, zone_id: int) -> _Zone:
        zone = self._zones.get(zone_id)
        if zone is None:
            if len(self._zones) >= self.maps:
                victim = min(self._zones, key=lambda z: self._zones[z].lru)
                del self._zones[victim]
            zone = _Zone(self._clock)
            self._zones[zone_id] = zone
        zone.lru = self._clock
        return zone

    def _is_accessed(self, zone_id: int, offset: int) -> bool:
        """Check the access bit, crossing into the neighbor zone if needed."""
        if offset < 0:
            neighbor = self._zones.get(zone_id - 1)
            return bool(
                neighbor and neighbor.accessed & (1 << (offset + _ZONE_LINES))
            )
        if offset >= _ZONE_LINES:
            neighbor = self._zones.get(zone_id + 1)
            return bool(
                neighbor and neighbor.accessed & (1 << (offset - _ZONE_LINES))
            )
        zone = self._zones.get(zone_id)
        return bool(zone and zone.accessed & (1 << offset))

    def on_access(self, event: AccessEvent):
        self._clock += 1
        zone_id = event.line // _ZONE_LINES
        offset = event.line % _ZONE_LINES
        zone = self._zone(zone_id)
        zone.accessed |= 1 << offset

        requests: list[PrefetchRequest] = []
        zone_base = zone_id * _ZONE_LINES
        for stride in range(1, self.max_stride + 1):
            if len(requests) >= self.degree:
                break
            for direction in (1, -1):
                k = stride * direction
                if (
                    self._is_accessed(zone_id, offset - k)
                    and self._is_accessed(zone_id, offset - 2 * k)
                ):
                    target_offset = offset + k
                    if 0 <= target_offset < _ZONE_LINES:
                        bit = 1 << target_offset
                        if not zone.accessed & bit and not zone.prefetched & bit:
                            zone.prefetched |= bit
                            requests.append(
                                PrefetchRequest(zone_base + target_offset,
                                                self.target_level, self.name)
                            )
                            if len(requests) >= self.degree:
                                break
        return requests or None

    @property
    def storage_bits(self) -> int:
        # 128 maps x (256b map state + tag) per Table II's 4 KB budget.
        return self.maps * 256
