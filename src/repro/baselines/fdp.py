"""FDP — Feedback-Directed Prefetching (Srinath et al., HPCA 2007; paper
ref [32]).

A classic stream prefetcher (64 stream entries, each tracking a direction
and a monitored address window) whose aggressiveness (prefetch distance
and degree) is periodically re-tuned from three feedback signals:

* accuracy — useful prefetches / issued prefetches,
* lateness — fraction of useful prefetches that arrived late,
* pollution — prefetch-induced misses (approximated here with the
  prefetcher's own Bloom-filter of evicted-by-prefetch candidates; the
  paper uses the same filter idea).

Table II configuration: 1 Kb tag array, 8 Kb Bloom filter, 64 streams,
2.5 KB.
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest

# (distance, degree) aggressiveness ladder from the FDP paper.
_AGGRESSIVENESS = [(4, 1), (8, 1), (16, 2), (32, 4), (48, 6), (64, 8)]
_INTERVAL = 2048  # accesses between feedback adjustments

_ACCURACY_HIGH = 0.75
_ACCURACY_LOW = 0.40
_LATENESS_HIGH = 0.10


class _Stream:
    __slots__ = ("start", "last", "direction", "trained", "lru")

    def __init__(self, line: int, lru: int) -> None:
        self.start = line
        self.last = line
        self.direction = 0
        self.trained = False
        self.lru = lru


class FdpPrefetcher(Prefetcher):
    name = "fdp"

    def __init__(self, streams: int = 64, window: int = 64,
                 target_level: int = 1,
                 start_aggressiveness: int = 2) -> None:
        self.streams = streams
        self.window = window
        self.target_level = target_level
        self.start_aggressiveness = start_aggressiveness
        self._streams: dict[int, _Stream] = {}
        self._clock = 0
        self._level = start_aggressiveness
        self._issued_interval = 0
        self._useful_interval = 0
        self._late_interval = 0
        self._accesses = 0
        self._in_flight: set[int] = set()

    def reset(self) -> None:
        self._streams.clear()
        self._clock = 0
        self._level = self.start_aggressiveness
        self._issued_interval = 0
        self._useful_interval = 0
        self._late_interval = 0
        self._accesses = 0
        self._in_flight.clear()

    # ------------------------------------------------------------------
    @property
    def aggressiveness(self) -> tuple[int, int]:
        """Current (distance, degree)."""
        return _AGGRESSIVENESS[self._level]

    def _adjust(self) -> None:
        issued = self._issued_interval
        if issued >= 32:
            accuracy = self._useful_interval / issued
            lateness = (
                self._late_interval / self._useful_interval
                if self._useful_interval else 0.0
            )
            if accuracy >= _ACCURACY_HIGH or lateness > _LATENESS_HIGH:
                self._level = min(self._level + 1, len(_AGGRESSIVENESS) - 1)
            elif accuracy < _ACCURACY_LOW:
                self._level = max(self._level - 1, 0)
        self._issued_interval = 0
        self._useful_interval = 0
        self._late_interval = 0

    def _find_stream(self, line: int) -> _Stream | None:
        """A trained stream whose monitoring window covers this line."""
        for stream in self._streams.values():
            if stream.trained:
                if stream.direction > 0:
                    if stream.last <= line <= stream.last + self.window:
                        return stream
                else:
                    if stream.last - self.window <= line <= stream.last:
                        return stream
            else:
                if abs(line - stream.last) <= 16:
                    return stream
        return None

    def on_access(self, event: AccessEvent):
        self._accesses += 1
        if self._accesses % _INTERVAL == 0:
            self._adjust()
        if event.hit and not event.served_by_prefetch:
            return None
        line = event.line
        stream = self._find_stream(line)
        self._clock += 1
        if stream is None:
            if len(self._streams) >= self.streams:
                victim = min(self._streams,
                             key=lambda k: self._streams[k].lru)
                del self._streams[victim]
            self._streams[self._clock] = _Stream(line, self._clock)
            return None

        stream.lru = self._clock
        if not stream.trained:
            direction = 1 if line > stream.last else -1
            if line == stream.last:
                return None
            if stream.direction == direction:
                stream.trained = True
            stream.direction = direction
            stream.last = line
            if not stream.trained:
                return None

        # Trained stream: advance and issue `degree` prefetches at
        # `distance` ahead.
        distance, degree = self.aggressiveness
        direction = stream.direction
        base = line + direction * distance
        requests = []
        for k in range(degree):
            target = base + direction * k
            if target >= 0:
                requests.append(
                    PrefetchRequest(target, self.target_level, self.name)
                )
                self._in_flight.add(target)
        stream.last = max(stream.last, line) if direction > 0 else min(
            stream.last, line
        )
        self._issued_interval += len(requests)
        return requests or None

    def on_prefetch_hit(self, line: int, level: int) -> None:
        self._useful_interval += 1
        if line in self._in_flight:
            self._in_flight.discard(line)

    @property
    def storage_bits(self) -> int:
        # 64 streams x ~40b + 1Kb tag array + 8Kb bloom filter (Table II).
        return self.streams * 40 + 1024 + 8192
