"""Markov (temporal-correlation) prefetcher (Joseph & Grunwald, ISCA
1997; paper refs [6]/[14]).

A correlation table maps a miss line to the distinct miss lines that
followed it recently; on a miss, the most frequent successors are
prefetched.  This is the classic HHF-targeting design the paper's
related-work section discusses ("Markov prefetchers require a lot of
storage") — included both as a baseline and as the kind of *additional
component* the paper's recap says TPC needs for HHF scope.
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest


class _CorrelationEntry:
    __slots__ = ("successors", "counts", "lru")

    def __init__(self, lru: int) -> None:
        self.successors: list[int] = []
        self.counts: list[int] = []
        self.lru = lru

    def observe(self, successor: int, ways: int) -> None:
        if successor in self.successors:
            index = self.successors.index(successor)
            self.counts[index] += 1
            return
        if len(self.successors) < ways:
            self.successors.append(successor)
            self.counts.append(1)
            return
        weakest = min(range(ways), key=lambda i: self.counts[i])
        self.successors[weakest] = successor
        self.counts[weakest] = 1

    def best(self, degree: int) -> list[int]:
        order = sorted(range(len(self.successors)),
                       key=lambda i: self.counts[i], reverse=True)
        return [self.successors[i] for i in order[:degree]]


class MarkovPrefetcher(Prefetcher):
    """First-order Markov predictor over the miss-line stream."""

    name = "markov"

    def __init__(self, table_entries: int = 4096, ways: int = 4,
                 degree: int = 2, min_confidence: int = 2,
                 target_level: int = 2) -> None:
        self.table_entries = table_entries
        self.ways = ways
        self.degree = degree
        self.min_confidence = min_confidence
        self.target_level = target_level
        self._table: dict[int, _CorrelationEntry] = {}
        self._last_miss: int | None = None
        self._clock = 0

    def reset(self) -> None:
        self._table.clear()
        self._last_miss = None
        self._clock = 0

    def _entry(self, line: int) -> _CorrelationEntry:
        entry = self._table.get(line)
        self._clock += 1
        if entry is None:
            if len(self._table) >= self.table_entries:
                victim = min(self._table,
                             key=lambda k: self._table[k].lru)
                del self._table[victim]
            entry = _CorrelationEntry(self._clock)
            self._table[line] = entry
        entry.lru = self._clock
        return entry

    def on_access(self, event: AccessEvent):
        if event.hit and not event.served_by_prefetch:
            return None
        line = event.line
        if self._last_miss is not None and self._last_miss != line:
            self._entry(self._last_miss).observe(line, self.ways)
        self._last_miss = line

        entry = self._table.get(line)
        if entry is None:
            return None
        entry.lru = self._clock
        requests = []
        for i, successor in enumerate(entry.successors):
            if entry.counts[i] >= self.min_confidence:
                requests.append(
                    PrefetchRequest(successor, self.target_level, self.name)
                )
        if not requests:
            return None
        # Keep only the strongest `degree` predictions.
        strongest = set(entry.best(self.degree))
        return [r for r in requests if r.line in strongest] or None

    @property
    def storage_bits(self) -> int:
        # 4096 entries x (26b tag + 4 x (26b line + 4b count)) ~= 73 KB:
        # the "lot of storage" the paper attributes to Markov designs.
        return self.table_entries * (26 + self.ways * 30)
