"""Persistent on-disk cache of :class:`SimulationResult` objects.

The in-process memo of :class:`~repro.experiments.runner.ExperimentRunner`
dies with the interpreter, so every ``report_all`` invocation used to
repay the full (workload x prefetcher) simulation matrix.  This module
extends the PR-1 manifest content-hash idea into a read-through store:

* **Key** — ``(workload, spec key, config digest, config tag, code
  version)``.  The config digest hashes the frozen ``SystemConfig``
  (``repr`` of nested frozen dataclasses is stable); the code version
  hashes every simulator source file that can affect a result (ISA,
  engine, memory system, prefetchers, workload generators).  Anything
  that could change a number changes the key.
* **Layout** — ``<root>/<code_version>/<workload>__<spec>__<digest>.pkl``
  (default root ``runs/cache``).  Grouping by code version makes the
  invalidation story inspectable: entries written by older simulator
  code sit in other directories and simply never match.
* **Invalidation** — stale versions are never read; ``repro cache stats``
  counts them and ``repro cache clear --stale`` (or ``clear``) deletes
  them.  Corrupt or unreadable entries behave as misses.

Entries are pickles of simulation results produced by this repository's
own code; like any pickle store, the cache directory should not be
shared with untrusted writers.
"""

from __future__ import annotations

import hashlib
import pickle
import re
from pathlib import Path

CACHE_VERSION = 1
DEFAULT_CACHE_DIR = "runs/cache"

_SIM_SOURCE_PACKAGES = (
    "isa",
    "engine",
    "memory",
    "core",
    "baselines",
    "workloads",
)
_SIM_SOURCE_MODULES = ("prefetcher_registry.py",)

_code_version_cache: str | None = None


def digest_sources(paths, salt: str) -> str:
    """sha1 over ``salt`` plus the package-relative path and bytes of
    every file, sorted.

    Shared keying scheme for every code-versioned cache in the repo (the
    result cache here and the trace cache in
    :mod:`repro.workloads.tracecache`): editing any covered source file —
    committed or not — changes the digest and thereby orphans stale
    entries wholesale.

    Paths are digested relative to the ``repro`` package root (bare
    ``path.name`` would let a file *move* between covered packages —
    say ``core/`` to ``engine/`` — without changing the digest, leaving
    stale cache entries live); files outside the package fall back to
    their name.
    """
    root = Path(__file__).resolve().parent
    digest = hashlib.sha1(salt.encode())
    for path in sorted(Path(p) for p in paths):
        try:
            label = path.resolve().relative_to(root).as_posix()
        except ValueError:
            label = path.name
        digest.update(label.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def sim_source_paths() -> list[Path]:
    """Every source file that can influence a simulation result."""
    root = Path(__file__).resolve().parent
    paths: list[Path] = []
    for package in _SIM_SOURCE_PACKAGES:
        paths.extend((root / package).glob("*.py"))
    paths.extend(root / module for module in _SIM_SOURCE_MODULES)
    return paths


def code_version() -> str:
    """Digest of every source file that can influence a simulation result.

    Unlike a git SHA this changes only when simulator code changes (docs
    and analysis edits keep the cache warm) and it tracks a dirty working
    tree, which a commit hash cannot.
    """
    global _code_version_cache
    if _code_version_cache is None:
        _code_version_cache = digest_sources(
            sim_source_paths(), f"cache-v{CACHE_VERSION}"
        )
    return _code_version_cache


def config_digest(config) -> str:
    """Stable digest of a (frozen, nested-dataclass) ``SystemConfig``."""
    return hashlib.sha1(repr(config).encode()).hexdigest()[:16]


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "x"


class ResultCache:
    """Read-through pickle store for simulation results."""

    def __init__(self, root=DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    def entry_path(self, workload: str, spec: str, tag: str,
                   cfg_digest: str) -> Path:
        content = hashlib.sha1(
            f"{workload}\x00{spec}\x00{tag}\x00{cfg_digest}".encode()
        ).hexdigest()[:16]
        name = f"{_slug(workload)}__{_slug(spec)}__{content}.pkl"
        return self.root / code_version() / name

    @staticmethod
    def _count(metric: str) -> None:
        """Mirror a cache event into the current fabric obs (if any)."""
        from repro.obs import current

        obs = current()
        if obs is not None:
            obs.metrics.count(metric)

    def get(self, workload: str, spec: str, tag: str, cfg_digest: str):
        """Cached result or ``None``; unreadable entries count as misses."""
        path = self.entry_path(workload, spec, tag, cfg_digest)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
            self._count("result_cache.disk_hit")
            return result
        except FileNotFoundError:
            self._count("result_cache.disk_miss")
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError) as exc:
            # A torn write or an entry from an incompatible class layout:
            # drop it so the next put() rewrites a good one, and leave a
            # fault-log record so the degradation is auditable.
            from repro.faults import CACHE_CORRUPT, log_fault

            log_fault(CACHE_CORRUPT, workload=workload, spec=spec, tag=tag,
                      detail=f"{type(exc).__name__}: {path.name}")
            self._count("result_cache.corrupt")
            path.unlink(missing_ok=True)
            return None

    def put(self, workload: str, spec: str, tag: str, cfg_digest: str,
            result) -> Path:
        """Serialize ``result`` via the shared pid-keyed atomic-write
        helper, so parallel writers of the same key — same process or
        not — cannot tear each other's entries."""
        from repro.faults import atomic_write_pickle

        path = self.entry_path(workload, spec, tag, cfg_digest)
        self._count("result_cache.put")
        return atomic_write_pickle(
            path, result, label=f"result:{workload}/{spec}:{tag}"
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Entry/byte counts, split current code version vs stale."""
        current = code_version()
        report = {
            "root": str(self.root),
            "code_version": current,
            "entries": 0,
            "bytes": 0,
            "stale_entries": 0,
            "stale_bytes": 0,
            "stale_versions": [],
            "by_workload": {},
        }
        if not self.root.is_dir():
            return report
        for version_dir in sorted(self.root.iterdir()):
            if not version_dir.is_dir():
                continue
            entries = list(version_dir.glob("*.pkl"))
            size = sum(p.stat().st_size for p in entries)
            if version_dir.name == current:
                report["entries"] = len(entries)
                report["bytes"] = size
                for path in entries:
                    workload = path.name.split("__", 1)[0]
                    report["by_workload"][workload] = (
                        report["by_workload"].get(workload, 0) + 1
                    )
            else:
                report["stale_entries"] += len(entries)
                report["stale_bytes"] += size
                report["stale_versions"].append(version_dir.name)
        return report

    def clear(self, stale_only: bool = False) -> int:
        """Delete entries (all, or only stale code versions); returns the
        number of files removed."""
        if not self.root.is_dir():
            return 0
        current = code_version()
        removed = 0
        for version_dir in sorted(self.root.iterdir()):
            if not version_dir.is_dir():
                continue
            if stale_only and version_dir.name == current:
                continue
            for path in version_dir.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
            try:
                version_dir.rmdir()
            except OSError:
                pass
        return removed
