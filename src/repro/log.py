"""Leveled progress logging for the harness CLIs (``REPRO_LOG``).

``repro bench`` and ``report_all`` used to narrate progress with ad-hoc
``print(..., file=sys.stderr)`` lines — fine for a terminal, useless for
the queued sweep server or a CI job that wants structured progress.
This module is the one knob:

* ``REPRO_LOG=text`` (default) — human-readable lines on stderr
  (``serial pass over 12 cells jobs=4``).
* ``REPRO_LOG=json`` — one JSON object per line
  (``{"ts": ..., "level": "info", "logger": "bench", "msg": ...}``),
  extra keyword fields included verbatim — what a server/CI consumer
  tails.
* ``REPRO_LOG=quiet`` — progress suppressed; errors still print
  (a failing gate must never vanish).

The mode is read per call, so tests (and long-lived servers) can flip
the environment variable without re-creating loggers.  Deliberately not
:mod:`logging`: no handler graph, no global configuration order — a
logger is two methods and an environment variable.
"""

from __future__ import annotations

import datetime
import json
import os
import sys

LOG_ENV = "REPRO_LOG"
MODES = ("quiet", "text", "json")


def log_mode() -> str:
    """Current mode from ``REPRO_LOG`` (unknown values mean ``text``)."""
    mode = os.environ.get(LOG_ENV, "text").strip().lower()
    return mode if mode in MODES else "text"


class Logger:
    """Named stderr logger with ``info`` / ``error`` levels."""

    def __init__(self, name: str, stream=None) -> None:
        self.name = name
        self._stream = stream

    def _emit(self, level: str, message: str, fields: dict) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        if log_mode() == "json":
            record = {
                "ts": datetime.datetime.now(datetime.timezone.utc)
                .isoformat(timespec="milliseconds"),
                "level": level,
                "logger": self.name,
                "msg": message,
            }
            record.update(fields)
            print(json.dumps(record, sort_keys=True, default=str),
                  file=stream)
            return
        suffix = "".join(f" {key}={value}" for key, value in fields.items())
        print(message + suffix, file=stream)

    def info(self, message: str, **fields) -> None:
        """Progress line; suppressed under ``REPRO_LOG=quiet``."""
        if log_mode() == "quiet":
            return
        self._emit("info", message, fields)

    def warn(self, message: str, **fields) -> None:
        """Misconfiguration line; suppressed under ``REPRO_LOG=quiet``."""
        if log_mode() == "quiet":
            return
        self._emit("warn", message, fields)

    def error(self, message: str, **fields) -> None:
        """Failure line; printed in every mode, ``quiet`` included."""
        self._emit("error", message, fields)


def get_logger(name: str) -> Logger:
    """A named logger (loggers are stateless; construct freely)."""
    return Logger(name)
