"""Dynamic trace containers produced by :class:`repro.isa.machine.Machine`.

A trace is the interface between the functional substrate and the timing
simulator: the timing model replays records in program order and the
prefetchers observe a per-record view equivalent to what the paper's
hardware sees at decode/issue/commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import OpClass


class TraceRecord:
    """One retired dynamic instruction.

    Attributes
    ----------
    pc:
        Virtual program counter of the instruction.
    opc:
        :class:`~repro.isa.instructions.OpClass` as an ``int`` (hot path).
    addr:
        Effective byte address for loads/stores, else ``0``.
    value:
        The 64-bit value loaded (loads only); lets pointer prefetchers
        observe load outcomes the way real hardware observes the fill.
    dst / src1 / src2:
        Architectural register operands, ``-1`` when unused.
    taken / target_pc:
        Branch outcome and destination (branches, calls, returns).
    ras_top:
        Top of the return address stack *before* this instruction executes;
        T2 XORs it into the PC for call-site disambiguation.
    """

    __slots__ = (
        "pc",
        "opc",
        "addr",
        "value",
        "dst",
        "src1",
        "src2",
        "taken",
        "target_pc",
        "ras_top",
    )

    def __init__(
        self,
        pc: int,
        opc: int,
        addr: int = 0,
        value: int = 0,
        dst: int = -1,
        src1: int = -1,
        src2: int = -1,
        taken: bool = False,
        target_pc: int = 0,
        ras_top: int = 0,
    ) -> None:
        self.pc = pc
        self.opc = opc
        self.addr = addr
        self.value = value
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        self.taken = taken
        self.target_pc = target_pc
        self.ras_top = ras_top

    @property
    def is_load(self) -> bool:
        return self.opc == OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opc == OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.opc == OpClass.LOAD or self.opc == OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.opc == OpClass.BRANCH

    @property
    def is_backward_branch(self) -> bool:
        return self.opc == OpClass.BRANCH and self.taken and self.target_pc < self.pc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecord(pc={self.pc:#x}, opc={OpClass(self.opc).name}, "
            f"addr={self.addr:#x}, dst=r{self.dst})"
        )


@dataclass(slots=True)
class TraceStats:
    """Aggregate counts over a trace."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    calls: int = 0
    returns: int = 0

    @property
    def memory_accesses(self) -> int:
        return self.loads + self.stores


@dataclass
class Trace:
    """A complete dynamic trace plus the memory image it executed against.

    ``memory`` is the data image *after* execution; pointer-chain structures
    in the workloads are built statically so prefetchers that dereference
    memory (P1's chain FSM) observe the same values the program did.
    """

    name: str
    records: list[TraceRecord]
    memory: dict[int, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def stats(self) -> TraceStats:
        """Compute aggregate statistics in one pass."""
        stats = TraceStats()
        stats.instructions = len(self.records)
        for record in self.records:
            opc = record.opc
            if opc == OpClass.LOAD:
                stats.loads += 1
            elif opc == OpClass.STORE:
                stats.stores += 1
            elif opc == OpClass.BRANCH:
                stats.branches += 1
                if record.taken:
                    stats.taken_branches += 1
            elif opc == OpClass.CALL:
                stats.calls += 1
            elif opc == OpClass.RET:
                stats.returns += 1
        return stats

    def memory_footprint(self, line_bytes: int = 64) -> set[int]:
        """Unique cache-line addresses touched by loads and stores."""
        shift = line_bytes.bit_length() - 1
        return {
            record.addr >> shift
            for record in self.records
            if record.opc == OpClass.LOAD or record.opc == OpClass.STORE
        }
