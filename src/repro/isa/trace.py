"""Dynamic trace containers produced by :class:`repro.isa.machine.Machine`.

A trace is the interface between the functional substrate and the timing
simulator: the timing model replays records in program order and the
prefetchers observe a per-record view equivalent to what the paper's
hardware sees at decode/issue/commit.

Two representations exist:

* :class:`Trace` — one :class:`TraceRecord` object per retired
  instruction.  This is what the machine emits and the reference replay
  path consumes; it stays the ground truth the compiled form is checked
  against.
* :class:`CompiledTrace` — one Python-list column per field.  List
  columns index at the same speed as slot attribute access (the stored
  ``int`` objects are returned directly, nothing is boxed), while
  serializing through :mod:`array` in one C-level pass per column —
  which is what makes the on-disk trace cache
  (:mod:`repro.workloads.tracecache`) and copy-on-write sharing across
  forked workers cheap.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from repro.isa.instructions import OpClass

LINE_SHIFT = 6
"""log2 of the cache-line size; the single source of truth shared with
:mod:`repro.memory.hierarchy` (which re-exports it) and the derived
``line`` column below."""


class TraceRecord:
    """One retired dynamic instruction.

    Attributes
    ----------
    pc:
        Virtual program counter of the instruction.
    opc:
        :class:`~repro.isa.instructions.OpClass` as an ``int`` (hot path).
    addr:
        Effective byte address for loads/stores, else ``0``.
    value:
        The 64-bit value loaded (loads only); lets pointer prefetchers
        observe load outcomes the way real hardware observes the fill.
    dst / src1 / src2:
        Architectural register operands, ``-1`` when unused.
    taken / target_pc:
        Branch outcome and destination (branches, calls, returns).
    ras_top:
        Top of the return address stack *before* this instruction executes;
        T2 XORs it into the PC for call-site disambiguation.
    """

    __slots__ = (
        "pc",
        "opc",
        "addr",
        "value",
        "dst",
        "src1",
        "src2",
        "taken",
        "target_pc",
        "ras_top",
    )

    def __init__(
        self,
        pc: int,
        opc: int,
        addr: int = 0,
        value: int = 0,
        dst: int = -1,
        src1: int = -1,
        src2: int = -1,
        taken: bool = False,
        target_pc: int = 0,
        ras_top: int = 0,
    ) -> None:
        self.pc = pc
        self.opc = opc
        self.addr = addr
        self.value = value
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        self.taken = taken
        self.target_pc = target_pc
        self.ras_top = ras_top

    @property
    def is_load(self) -> bool:
        return self.opc == OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opc == OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.opc == OpClass.LOAD or self.opc == OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.opc == OpClass.BRANCH

    @property
    def is_backward_branch(self) -> bool:
        return self.opc == OpClass.BRANCH and self.taken and self.target_pc < self.pc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecord(pc={self.pc:#x}, opc={OpClass(self.opc).name}, "
            f"addr={self.addr:#x}, dst=r{self.dst})"
        )


@dataclass(slots=True)
class TraceStats:
    """Aggregate counts over a trace."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    calls: int = 0
    returns: int = 0

    @property
    def memory_accesses(self) -> int:
        return self.loads + self.stores


@dataclass
class Trace:
    """A complete dynamic trace plus the memory image it executed against.

    ``memory`` is the data image *after* execution; pointer-chain structures
    in the workloads are built statically so prefetchers that dereference
    memory (P1's chain FSM) observe the same values the program did.
    """

    name: str
    records: list[TraceRecord]
    memory: dict[int, int] = field(default_factory=dict)
    _stats: TraceStats | None = field(default=None, repr=False,
                                      compare=False)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def stats(self) -> TraceStats:
        """Aggregate statistics, computed once and cached.

        Several experiments call ``stats()`` repeatedly on the same
        trace; the record walk only happens on the first call.  Callers
        must treat the returned object as read-only.
        """
        if self._stats is not None:
            return self._stats
        stats = TraceStats()
        stats.instructions = len(self.records)
        for record in self.records:
            opc = record.opc
            if opc == OpClass.LOAD:
                stats.loads += 1
            elif opc == OpClass.STORE:
                stats.stores += 1
            elif opc == OpClass.BRANCH:
                stats.branches += 1
                if record.taken:
                    stats.taken_branches += 1
            elif opc == OpClass.CALL:
                stats.calls += 1
            elif opc == OpClass.RET:
                stats.returns += 1
        self._stats = stats
        return stats

    def memory_footprint(self, line_bytes: int = 64) -> set[int]:
        """Unique cache-line addresses touched by loads and stores."""
        shift = line_bytes.bit_length() - 1
        return {
            record.addr >> shift
            for record in self.records
            if record.opc == OpClass.LOAD or record.opc == OpClass.STORE
        }


TRACE_FIELDS = ("pc", "opc", "addr", "value", "dst", "src1", "src2",
                "taken", "target_pc", "ras_top")
"""Column order shared by :class:`CompiledTrace`, the trace cache's
serialized form, and :mod:`repro.isa.traceio`."""

TRACE_FIELD_TYPECODES = ("q", "b", "q", "q", "b", "b", "b", "b", "q", "q")
""":mod:`array` typecode per column for serialization (``q`` = signed
64-bit, ``b`` = signed 8-bit; register operands fit in a byte, ``-1``
included)."""

NUMPY_TYPECODES = {"q": "int64", "b": "int8"}
"""numpy dtype name per :mod:`array` typecode — the single translation
table shared by the trace cache, :mod:`repro.isa.traceio`, and the
shared-memory column layout (:mod:`repro.parallel.shm`)."""


def numpy_dtype(code: str) -> str:
    """The numpy dtype name of an :mod:`array` typecode (``q``/``b``)."""
    return NUMPY_TYPECODES[code]

# ----------------------------------------------------------------------
# Derived columns: per-record facts the timing model would otherwise
# recompute for every (workload x prefetcher) cell.  Computed once per
# workload at compile time, persisted alongside the primary columns by
# the trace cache, and consumed by the specialized replay kernels
# (repro.engine.kernel).

DISP_LOAD = 0
DISP_STORE = 1
DISP_ALU = 2
DISP_BR_COND = 3
DISP_BR_UNCOND = 4
DISP_OTHER = 5

DERIVED_FIELDS = ("line", "mpc", "disp", "bp_miss")
"""Derived column order: cache-line index (``addr >> LINE_SHIFT``),
miss PC (``pc ^ ras_top``), op-class dispatch tag (``DISP_*``), and the
static branch predictor's outcome (1 iff a conditional branch
mispredicts under backward-taken/forward-not-taken)."""

DERIVED_FIELD_TYPECODES = ("q", "q", "b", "b")

_FIELD_INDEX = {name: i for i, name in enumerate(TRACE_FIELDS)}

SEGMENT_DTYPE = "q"
"""Typecode/dtype of the serialized segment-event column (signed 64-bit
positions into the trace)."""


def _np():
    """Lazy numpy import; keeps ``repro.isa`` importable without it."""
    import numpy

    return numpy


_derived_counters = {"derived_builds": 0, "derived_hits": 0}


def derived_counters() -> dict:
    """Snapshot of this process's derived-column build/hit counters."""
    return dict(_derived_counters)


def reset_derived_counters() -> None:
    for key in _derived_counters:
        _derived_counters[key] = 0


class CompiledTrace:
    """A dynamic trace compiled to one list column per record field.

    The columns are plain Python lists of ints (``taken`` holds bools):
    indexing a list returns the stored object directly, so the timing
    model's hot loop reads ``col[i]`` at slot-attribute speed without
    materializing a record object per instruction.  ``records`` lazily
    materializes classic :class:`TraceRecord` views for the
    prefetcher-observation API and for analyses that want per-record
    objects; the views are built once and cached.

    ``memory`` is the same post-execution data image a :class:`Trace`
    carries (P1's chain FSM dereferences it).
    """

    __slots__ = ("name", "_memory", "_memory_arrays", "pc", "opc",
                 "addr", "value", "dst", "src1", "src2", "taken",
                 "target_pc", "ras_top",
                 "_stats", "_records", "_derived", "_arrays",
                 "_derived_arrays", "_segments", "_plans")

    def __init__(self, name: str, columns: tuple | None,
                 memory: dict[int, int]):
        self.name = name
        self._memory = memory
        self._memory_arrays: tuple | None = None
        self._arrays: tuple | None = None
        self._derived_arrays: tuple | None = None
        self._segments = None
        self._plans: dict = {}
        self._stats: TraceStats | None = None
        self._records: list[TraceRecord] | None = None
        self._derived: tuple | None = None
        if columns is not None:
            (self.pc, self.opc, self.addr, self.value, self.dst,
             self.src1, self.src2, self.taken, self.target_pc,
             self.ras_top) = columns

    def __getattr__(self, attr):
        # Array-backed traces leave the ten list-column slots unset; the
        # first touch of one materializes the list from the canonical
        # numpy array (``taken`` arrays are bool dtype, so ``tolist``
        # yields Python bools, indistinguishable from a compiled list).
        index = _FIELD_INDEX.get(attr)
        if index is not None and self._arrays is not None:
            values = self._arrays[index].tolist()
            setattr(self, attr, values)
            return values
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {attr!r}"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace) -> "CompiledTrace":
        """Compile an object trace; the memory image is shared, not copied."""
        records = trace.records
        columns = tuple(
            [getattr(r, name) for r in records] for name in TRACE_FIELDS
        )
        return cls(trace.name, columns, trace.memory)

    @classmethod
    def from_arrays(cls, name: str, arrays: tuple,
                    memory: dict[int, int]) -> "CompiledTrace":
        """Build an array-backed trace (trace cache format 3 / traceio).

        ``arrays`` holds one numpy array per :data:`TRACE_FIELDS` entry
        (``taken`` must be bool dtype).  The list columns are *not*
        materialized here — scalar consumers get them lazily through
        ``__getattr__`` while vectorized consumers read the arrays
        directly, so the ``tolist()`` round-trip disappears from every
        path that never leaves numpy.
        """
        trace = cls(name, None, memory)
        trace._arrays = tuple(arrays)
        return trace

    @classmethod
    def from_shared(cls, name: str, arrays: tuple, derived: tuple,
                    segments, memory_arrays: tuple) -> "CompiledTrace":
        """Reconstruct a trace over attached shared-memory views.

        Every argument is a numpy view into a
        :mod:`repro.parallel.shm` segment — nothing is copied.  The
        memory image arrives as aligned ``(addresses, values)`` arrays
        and the dict is only materialized on the first ``.memory``
        touch, so attaching stays O(1) regardless of footprint.
        """
        trace = cls(name, None, {})
        trace._arrays = tuple(arrays)
        trace._derived_arrays = tuple(derived)
        trace._segments = segments
        trace._memory = None
        trace._memory_arrays = tuple(memory_arrays)
        return trace

    def to_trace(self) -> Trace:
        """Materialize a classic object :class:`Trace` (shared memory dict)."""
        return Trace(name=self.name, records=list(self.records),
                     memory=self.memory)

    # ------------------------------------------------------------------
    @property
    def memory(self) -> dict[int, int]:
        """The post-execution data image (P1's chain FSM reads it).

        Shared-memory-attached traces rebuild the dict lazily from the
        aligned address/value arrays; insertion order matches the
        publishing parent's dict order, so the rebuilt image is equal
        (and iterates identically) to the original.
        """
        if self._memory is None:
            addresses, values = self._memory_arrays
            self._memory = dict(zip(addresses.tolist(), values.tolist()))
        return self._memory

    @memory.setter
    def memory(self, value: dict[int, int]) -> None:
        self._memory = value

    @property
    def columns(self) -> tuple:
        """The ten columns in :data:`TRACE_FIELDS` order."""
        return (self.pc, self.opc, self.addr, self.value, self.dst,
                self.src1, self.src2, self.taken, self.target_pc,
                self.ras_top)

    @property
    def records(self) -> list[TraceRecord]:
        """Lazily materialized per-record views (cached)."""
        if self._records is None:
            self._records = [
                TraceRecord(pc, opc, addr=addr, value=value, dst=dst,
                            src1=src1, src2=src2, taken=taken,
                            target_pc=target_pc, ras_top=ras_top)
                for pc, opc, addr, value, dst, src1, src2, taken,
                target_pc, ras_top in zip(*self.columns)
            ]
        return self._records

    def array_columns(self) -> tuple:
        """The ten columns as numpy arrays (cached both directions).

        Array-backed traces return their canonical arrays; list-backed
        traces pay one ``asarray`` pass per column on first call.
        """
        if self._arrays is None:
            np = _np()
            cols = []
            for name, code in zip(TRACE_FIELDS, TRACE_FIELD_TYPECODES):
                col = getattr(self, name)
                if name == "taken":
                    cols.append(np.asarray(col, dtype=np.bool_))
                else:
                    dtype = np.dtype(numpy_dtype(code))
                    cols.append(np.asarray(col, dtype=dtype))
            self._arrays = tuple(cols)
        return self._arrays

    def derived_columns(self) -> tuple:
        """The four derived columns in :data:`DERIVED_FIELDS` order.

        Built lazily from the primary columns (one pass per trace) when
        the trace-cache entry predates them or the trace was compiled in
        this process; cache-loaded traces carry them pre-built (as
        arrays under format 3, materialized to lists here on demand).
        """
        if self._derived is None:
            if self._derived_arrays is not None:
                self._derived = tuple(
                    a.tolist() for a in self._derived_arrays
                )
            else:
                self._derived = self._build_derived()
        return self._derived

    def derived_arrays(self) -> tuple:
        """The derived columns as numpy arrays (cached).

        Built from :meth:`derived_columns` so array and list views are
        derived from the same pass and can never disagree.
        """
        if self._derived_arrays is None:
            np = _np()
            line, mpc, disp, bp_miss = self.derived_columns()
            self._derived_arrays = (
                np.asarray(line, dtype=np.int64),
                np.asarray(mpc, dtype=np.int64),
                np.asarray(disp, dtype=np.int8),
                np.asarray(bp_miss, dtype=np.int8),
            )
        return self._derived_arrays

    def segment_events(self):
        """Sorted positions of batch-segment boundary events (numpy).

        An *event* is any instruction the batch replay tier cannot fold
        into a pure register-dataflow scan: memory accesses (they touch
        the hierarchy) and statically mispredicted conditional branches
        (they perturb the fetch clock).  The stretches *between* events
        are hook-free by construction and replay as vectorized scans.
        The column is geometry-independent, so it is precomputed once at
        compile time and persisted by trace-cache format 3.
        """
        if self._segments is None:
            np = _np()
            _, _, disp, bp_miss = self.derived_arrays()
            self._segments = np.flatnonzero(
                (disp <= DISP_STORE) | (bp_miss != 0)
            ).astype(np.int64)
        return self._segments

    def _build_derived(self) -> tuple:
        _derived_counters["derived_builds"] += 1
        branch = int(OpClass.BRANCH)
        load = int(OpClass.LOAD)
        store = int(OpClass.STORE)
        alu = int(OpClass.ALU)
        line = [a >> LINE_SHIFT for a in self.addr]
        mpc = [p ^ r for p, r in zip(self.pc, self.ras_top)]
        disp = []
        bp_miss = []
        append_disp = disp.append
        append_bp = bp_miss.append
        for opc, src1, pc, target_pc, taken in zip(
                self.opc, self.src1, self.pc, self.target_pc, self.taken):
            if opc == load:
                append_disp(DISP_LOAD)
                append_bp(0)
            elif opc == store:
                append_disp(DISP_STORE)
                append_bp(0)
            elif opc == alu:
                append_disp(DISP_ALU)
                append_bp(0)
            elif opc == branch:
                if src1 >= 0:
                    append_disp(DISP_BR_COND)
                    # Static BTFNT outcome: predict taken iff the target
                    # is backward; mispredict iff that differs from the
                    # recorded outcome.
                    append_bp(1 if (target_pc < pc) != taken else 0)
                else:
                    append_disp(DISP_BR_UNCOND)
                    append_bp(0)
            else:
                append_disp(DISP_OTHER)
                append_bp(0)
        return (line, mpc, disp, bp_miss)

    def record(self, index: int) -> TraceRecord:
        """One :class:`TraceRecord` view of row ``index``."""
        return TraceRecord(
            self.pc[index], self.opc[index], addr=self.addr[index],
            value=self.value[index], dst=self.dst[index],
            src1=self.src1[index], src2=self.src2[index],
            taken=self.taken[index], target_pc=self.target_pc[index],
            ras_top=self.ras_top[index],
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._arrays is not None:
            return len(self._arrays[0])
        return len(self.pc)

    def __iter__(self):
        return iter(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledTrace(name={self.name!r}, n={len(self)})"

    def stats(self) -> TraceStats:
        """Aggregate statistics from the columns, cached after first call."""
        if self._stats is not None:
            return self._stats
        opc = self.opc
        stats = TraceStats()
        stats.instructions = len(opc)
        stats.loads = opc.count(OpClass.LOAD)
        stats.stores = opc.count(OpClass.STORE)
        stats.branches = opc.count(OpClass.BRANCH)
        stats.calls = opc.count(OpClass.CALL)
        stats.returns = opc.count(OpClass.RET)
        if stats.branches:
            branch = int(OpClass.BRANCH)
            stats.taken_branches = sum(
                1 for o, t in zip(opc, self.taken) if t and o == branch
            )
        self._stats = stats
        return stats

    def memory_footprint(self, line_bytes: int = 64) -> set[int]:
        """Unique cache-line addresses touched by loads and stores."""
        shift = line_bytes.bit_length() - 1
        load = int(OpClass.LOAD)
        store = int(OpClass.STORE)
        return {
            a >> shift
            for o, a in zip(self.opc, self.addr)
            if o == load or o == store
        }

    # ------------------------------------------------------------------
    def column_bytes(self) -> dict[str, bytes]:
        """Serialize every column through :mod:`array` (one C pass each).

        Array-backed traces serialize straight from numpy without ever
        materializing the list columns; both paths emit byte-identical
        blobs (``q``/``b`` little-endian, ``taken`` as 0/1 bytes).
        """
        if self._arrays is not None:
            np = _np()
            blobs = {}
            for name, code, col in zip(TRACE_FIELDS,
                                       TRACE_FIELD_TYPECODES,
                                       self._arrays):
                dtype = np.dtype(numpy_dtype(code))
                blobs[name] = np.ascontiguousarray(
                    col, dtype=dtype).tobytes()
            return blobs
        return {
            name: array(code, col).tobytes()
            for name, code, col in zip(TRACE_FIELDS, TRACE_FIELD_TYPECODES,
                                       self.columns)
        }

    def segment_bytes(self) -> bytes:
        """Serialize the segment-event column (building it if needed)."""
        np = _np()
        return np.ascontiguousarray(
            self.segment_events(), dtype=np.int64).tobytes()

    def derived_bytes(self) -> dict[str, bytes]:
        """Serialize the derived columns (building them if needed)."""
        return {
            name: array(code, col).tobytes()
            for name, code, col in zip(DERIVED_FIELDS,
                                       DERIVED_FIELD_TYPECODES,
                                       self.derived_columns())
        }

    @classmethod
    def from_column_bytes(cls, name: str, blobs: dict[str, bytes],
                          memory: dict[int, int],
                          derived: dict[str, bytes] | None = None,
                          segments: bytes | None = None,
                          ) -> "CompiledTrace":
        """Inverse of :meth:`column_bytes`.

        The restored trace is array-backed: each blob becomes a numpy
        view (``taken`` converted to bool dtype) and list columns
        materialize lazily, so cache hits never pay a ``tolist`` pass
        for columns only the vectorized tier reads.  ``derived``, when
        present (trace-cache format 2+), restores the precomputed
        derived columns; ``segments`` (format 3) the batch segment
        events.
        """
        np = _np()
        arrays = []
        for field_name, code in zip(TRACE_FIELDS, TRACE_FIELD_TYPECODES):
            dtype = np.dtype(numpy_dtype(code))
            col = np.frombuffer(blobs[field_name], dtype=dtype)
            if field_name == "taken":
                col = col.astype(np.bool_)
            arrays.append(col)
        trace = cls.from_arrays(name, tuple(arrays), memory)
        if derived is not None:
            restored = []
            for field_name, code in zip(DERIVED_FIELDS,
                                        DERIVED_FIELD_TYPECODES):
                dtype = np.dtype(numpy_dtype(code))
                restored.append(
                    np.frombuffer(derived[field_name], dtype=dtype)
                )
            trace._derived_arrays = tuple(restored)
            _derived_counters["derived_hits"] += 1
        if segments is not None:
            trace._segments = np.frombuffer(segments, dtype=np.int64)
        return trace


def compile_trace(trace: Trace | CompiledTrace) -> CompiledTrace:
    """Compile ``trace`` to columnar form (no-op if already compiled)."""
    if isinstance(trace, CompiledTrace):
        return trace
    return CompiledTrace.from_trace(trace)
