"""Instruction set definition for the micro-ISA.

The ISA is deliberately small: enough arithmetic to compute addresses and
loop counters, loads/stores with base+offset addressing, conditional
branches, and call/return.  Each static instruction occupies 4 bytes of the
(virtual) instruction address space so that program counters have realistic
I-cache-line locality (16 instructions per 64-byte line).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


INSTRUCTION_BYTES = 4
"""Size of one encoded instruction; PCs advance by this amount."""

NUM_REGISTERS = 32
"""Number of general-purpose registers (r0..r31).  r0 is writable."""

WORD_BYTES = 8
"""Data memory is accessed in 8-byte words."""


class Opcode(enum.IntEnum):
    """Operations understood by :class:`repro.isa.machine.Machine`."""

    # Arithmetic / logic (register-register and register-immediate).
    MOVI = enum.auto()   # rd <- imm
    MOV = enum.auto()    # rd <- rs1
    ADD = enum.auto()    # rd <- rs1 + rs2
    ADDI = enum.auto()   # rd <- rs1 + imm
    SUB = enum.auto()    # rd <- rs1 - rs2
    MUL = enum.auto()    # rd <- rs1 * rs2
    MULI = enum.auto()   # rd <- rs1 * imm
    AND = enum.auto()    # rd <- rs1 & rs2
    ANDI = enum.auto()   # rd <- rs1 & imm
    XOR = enum.auto()    # rd <- rs1 ^ rs2
    SHLI = enum.auto()   # rd <- rs1 << imm
    SHRI = enum.auto()   # rd <- rs1 >> imm
    # Memory.
    LOAD = enum.auto()   # rd <- M[rs1 + imm]
    STORE = enum.auto()  # M[rs1 + imm] <- rs2
    # Control flow.  Branch targets are instruction indices after assembly.
    BEQ = enum.auto()    # if rs1 == rs2 goto target
    BNE = enum.auto()    # if rs1 != rs2 goto target
    BLT = enum.auto()    # if rs1 <  rs2 goto target
    BGE = enum.auto()    # if rs1 >= rs2 goto target
    JMP = enum.auto()    # goto target
    CALL = enum.auto()   # push return, goto target
    RET = enum.auto()    # pop return, goto it
    # Misc.
    NOP = enum.auto()
    HALT = enum.auto()


class OpClass(enum.IntEnum):
    """Coarse classification used by the timing model and prefetchers."""

    ALU = 0
    LOAD = 1
    STORE = 2
    BRANCH = 3
    CALL = 4
    RET = 5
    OTHER = 6


_BRANCH_OPS = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JMP}
)

_CONDITIONAL_BRANCH_OPS = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
)

_ALU_OPS = frozenset(
    {
        Opcode.MOVI,
        Opcode.MOV,
        Opcode.ADD,
        Opcode.ADDI,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.MULI,
        Opcode.AND,
        Opcode.ANDI,
        Opcode.XOR,
        Opcode.SHLI,
        Opcode.SHRI,
    }
)


def op_class(op: Opcode) -> OpClass:
    """Map an opcode to its :class:`OpClass`."""
    if op in _ALU_OPS:
        return OpClass.ALU
    if op is Opcode.LOAD:
        return OpClass.LOAD
    if op is Opcode.STORE:
        return OpClass.STORE
    if op in _BRANCH_OPS:
        return OpClass.BRANCH
    if op is Opcode.CALL:
        return OpClass.CALL
    if op is Opcode.RET:
        return OpClass.RET
    return OpClass.OTHER


def is_branch(op: Opcode) -> bool:
    """True for (conditional or unconditional) branches, not call/ret."""
    return op in _BRANCH_OPS


def is_conditional_branch(op: Opcode) -> bool:
    """True only for the conditional branch opcodes."""
    return op in _CONDITIONAL_BRANCH_OPS


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static instruction.

    ``rd``/``rs1``/``rs2`` are register indices (or ``None`` when unused),
    ``imm`` is a signed immediate, and ``target`` is an instruction *index*
    into the program (filled in by the assembler for control transfers).
    """

    op: Opcode
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int = 0
    target: int | None = None

    def source_registers(self) -> tuple[int, ...]:
        """Registers read by this instruction (for taint propagation)."""
        sources = []
        if self.rs1 is not None:
            sources.append(self.rs1)
        if self.rs2 is not None:
            sources.append(self.rs2)
        return tuple(sources)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.name.lower()]
        if self.rd is not None:
            parts.append(f"r{self.rd}")
        if self.rs1 is not None:
            parts.append(f"r{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"r{self.rs2}")
        if self.imm:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)
