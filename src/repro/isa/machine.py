"""Functional executor: runs a :class:`~repro.isa.program.Program` and
records the dynamic :class:`~repro.isa.trace.Trace`.

The machine is purely functional (no timing).  It models:

* 32 general-purpose 64-bit registers with signed wraparound arithmetic,
* word-granular data memory (8-byte words, uninitialized reads return 0),
* a bounded return-address stack mirroring the 32-entry RAS in Table I,
  whose top-of-stack value is recorded per trace record for T2's ``mPC``.
"""

from __future__ import annotations

from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    NUM_REGISTERS,
    Opcode,
    OpClass,
)
from repro.isa.program import Program
from repro.isa.trace import CompiledTrace, Trace, TraceRecord, compile_trace

_WORD_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63

RAS_DEPTH = 32
"""Return-address-stack depth (Table I: 32-entry RAS)."""


class MachineError(RuntimeError):
    """Raised on invalid execution (bad PC, RET with empty stack, ...)."""


def _wrap(value: int) -> int:
    """Wrap a Python int to signed 64-bit semantics."""
    value &= _WORD_MASK
    if value & _SIGN_BIT:
        value -= 1 << 64
    return value


class Machine:
    """Executes programs and produces traces.

    Parameters
    ----------
    max_instructions:
        Safety bound on trace length; exceeding it raises
        :class:`MachineError` unless ``truncate`` is true, in which case the
        trace is cut at the bound (useful for fixed-length "simpoints").
    """

    def __init__(self, max_instructions: int = 2_000_000,
                 truncate: bool = True) -> None:
        self.max_instructions = max_instructions
        self.truncate = truncate

    def run_compiled(self, program: Program) -> CompiledTrace:
        """Execute ``program`` and return the columnar compiled trace.

        The object trace produced by :meth:`run` remains the reference
        representation; this compiles it field-by-field into the list
        columns the timing model replays and the trace cache persists.
        Both views carry identical values by construction (pinned by
        ``tests/test_tracecache.py``).
        """
        return compile_trace(self.run(program))

    def run(self, program: Program) -> Trace:
        """Execute ``program`` from its first instruction until HALT."""
        instructions = program.instructions
        if not instructions:
            raise MachineError("empty program")
        memory = dict(program.memory)
        registers = [0] * NUM_REGISTERS
        base_pc = program.base_pc
        records: list[TraceRecord] = []
        ras: list[int] = []
        index = 0
        limit = self.max_instructions
        n_instructions = len(instructions)

        while True:
            if len(records) >= limit:
                if self.truncate:
                    break
                raise MachineError(
                    f"exceeded max_instructions={limit} in {program.name!r}"
                )
            if not 0 <= index < n_instructions:
                raise MachineError(
                    f"PC index {index} out of range in {program.name!r}"
                )
            instruction = instructions[index]
            op = instruction.op
            pc = base_pc + index * INSTRUCTION_BYTES
            ras_top = ras[-1] if ras else 0
            next_index = index + 1

            if op is Opcode.LOAD:
                address = registers[instruction.rs1] + instruction.imm
                if address < 0:
                    raise MachineError(
                        f"negative load address {address} at pc={pc:#x}"
                    )
                value = memory.get(address & ~7, 0)
                registers[instruction.rd] = value
                records.append(
                    TraceRecord(
                        pc,
                        OpClass.LOAD,
                        addr=address,
                        value=value,
                        dst=instruction.rd,
                        src1=instruction.rs1,
                        ras_top=ras_top,
                    )
                )
            elif op is Opcode.STORE:
                address = registers[instruction.rs1] + instruction.imm
                if address < 0:
                    raise MachineError(
                        f"negative store address {address} at pc={pc:#x}"
                    )
                memory[address & ~7] = registers[instruction.rs2]
                records.append(
                    TraceRecord(
                        pc,
                        OpClass.STORE,
                        addr=address,
                        src1=instruction.rs1,
                        src2=instruction.rs2,
                        ras_top=ras_top,
                    )
                )
            elif op is Opcode.MOVI:
                registers[instruction.rd] = _wrap(instruction.imm)
                records.append(
                    TraceRecord(pc, OpClass.ALU, dst=instruction.rd,
                                ras_top=ras_top)
                )
            elif op is Opcode.MOV:
                registers[instruction.rd] = registers[instruction.rs1]
                records.append(
                    TraceRecord(pc, OpClass.ALU, dst=instruction.rd,
                                src1=instruction.rs1, ras_top=ras_top)
                )
            elif op is Opcode.ADD:
                registers[instruction.rd] = _wrap(
                    registers[instruction.rs1] + registers[instruction.rs2]
                )
                records.append(
                    TraceRecord(pc, OpClass.ALU, dst=instruction.rd,
                                src1=instruction.rs1, src2=instruction.rs2,
                                ras_top=ras_top)
                )
            elif op is Opcode.ADDI:
                registers[instruction.rd] = _wrap(
                    registers[instruction.rs1] + instruction.imm
                )
                records.append(
                    TraceRecord(pc, OpClass.ALU, dst=instruction.rd,
                                src1=instruction.rs1, ras_top=ras_top)
                )
            elif op is Opcode.SUB:
                registers[instruction.rd] = _wrap(
                    registers[instruction.rs1] - registers[instruction.rs2]
                )
                records.append(
                    TraceRecord(pc, OpClass.ALU, dst=instruction.rd,
                                src1=instruction.rs1, src2=instruction.rs2,
                                ras_top=ras_top)
                )
            elif op is Opcode.MUL:
                registers[instruction.rd] = _wrap(
                    registers[instruction.rs1] * registers[instruction.rs2]
                )
                records.append(
                    TraceRecord(pc, OpClass.ALU, dst=instruction.rd,
                                src1=instruction.rs1, src2=instruction.rs2,
                                ras_top=ras_top)
                )
            elif op is Opcode.MULI:
                registers[instruction.rd] = _wrap(
                    registers[instruction.rs1] * instruction.imm
                )
                records.append(
                    TraceRecord(pc, OpClass.ALU, dst=instruction.rd,
                                src1=instruction.rs1, ras_top=ras_top)
                )
            elif op is Opcode.AND:
                registers[instruction.rd] = (
                    registers[instruction.rs1] & registers[instruction.rs2]
                )
                records.append(
                    TraceRecord(pc, OpClass.ALU, dst=instruction.rd,
                                src1=instruction.rs1, src2=instruction.rs2,
                                ras_top=ras_top)
                )
            elif op is Opcode.ANDI:
                registers[instruction.rd] = (
                    registers[instruction.rs1] & instruction.imm
                )
                records.append(
                    TraceRecord(pc, OpClass.ALU, dst=instruction.rd,
                                src1=instruction.rs1, ras_top=ras_top)
                )
            elif op is Opcode.XOR:
                registers[instruction.rd] = (
                    registers[instruction.rs1] ^ registers[instruction.rs2]
                )
                records.append(
                    TraceRecord(pc, OpClass.ALU, dst=instruction.rd,
                                src1=instruction.rs1, src2=instruction.rs2,
                                ras_top=ras_top)
                )
            elif op is Opcode.SHLI:
                registers[instruction.rd] = _wrap(
                    registers[instruction.rs1] << instruction.imm
                )
                records.append(
                    TraceRecord(pc, OpClass.ALU, dst=instruction.rd,
                                src1=instruction.rs1, ras_top=ras_top)
                )
            elif op is Opcode.SHRI:
                registers[instruction.rd] = (
                    (registers[instruction.rs1] & _WORD_MASK)
                    >> instruction.imm
                )
                records.append(
                    TraceRecord(pc, OpClass.ALU, dst=instruction.rd,
                                src1=instruction.rs1, ras_top=ras_top)
                )
            elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
                a = registers[instruction.rs1]
                b = registers[instruction.rs2]
                if op is Opcode.BEQ:
                    taken = a == b
                elif op is Opcode.BNE:
                    taken = a != b
                elif op is Opcode.BLT:
                    taken = a < b
                else:
                    taken = a >= b
                target_pc = base_pc + instruction.target * INSTRUCTION_BYTES
                records.append(
                    TraceRecord(pc, OpClass.BRANCH, src1=instruction.rs1,
                                src2=instruction.rs2, taken=taken,
                                target_pc=target_pc, ras_top=ras_top)
                )
                if taken:
                    next_index = instruction.target
            elif op is Opcode.JMP:
                target_pc = base_pc + instruction.target * INSTRUCTION_BYTES
                records.append(
                    TraceRecord(pc, OpClass.BRANCH, taken=True,
                                target_pc=target_pc, ras_top=ras_top)
                )
                next_index = instruction.target
            elif op is Opcode.CALL:
                target_pc = base_pc + instruction.target * INSTRUCTION_BYTES
                return_pc = pc + INSTRUCTION_BYTES
                records.append(
                    TraceRecord(pc, OpClass.CALL, taken=True,
                                target_pc=target_pc, ras_top=ras_top)
                )
                if len(ras) >= RAS_DEPTH:
                    ras.pop(0)
                ras.append(return_pc)
                next_index = instruction.target
            elif op is Opcode.RET:
                if not ras:
                    raise MachineError(f"RET with empty RAS at pc={pc:#x}")
                return_pc = ras.pop()
                records.append(
                    TraceRecord(pc, OpClass.RET, taken=True,
                                target_pc=return_pc, ras_top=ras_top)
                )
                next_index = (return_pc - base_pc) // INSTRUCTION_BYTES
            elif op is Opcode.NOP:
                records.append(TraceRecord(pc, OpClass.OTHER, ras_top=ras_top))
            elif op is Opcode.HALT:
                break
            else:  # pragma: no cover - enum is exhaustive
                raise MachineError(f"unhandled opcode {op!r}")

            index = next_index

        return Trace(name=program.name, records=records, memory=memory)
