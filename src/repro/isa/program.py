"""Program container and a small assembler for building micro-ISA programs.

Workload builders (:mod:`repro.workloads.builders`) use :class:`Assembler`
to write kernels with symbolic labels::

    asm = Assembler()
    asm.movi("r1", 0)
    loop = asm.label("loop")
    asm.load("r2", "r1", 0)
    asm.addi("r1", "r1", 64)
    asm.blt("r1", "r3", loop)
    asm.halt()
    program = asm.assemble()

Register operands accept either an ``int`` index or an ``"rN"`` string.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    NUM_REGISTERS,
    Instruction,
    Opcode,
)


class AssemblyError(ValueError):
    """Raised for malformed programs (unknown labels, bad registers)."""


@dataclass
class Program:
    """An assembled program plus its initial data memory image.

    ``memory`` maps 8-byte-aligned addresses to 64-bit word values; it is
    copied by the machine at the start of execution so a program can be run
    many times.  ``base_pc`` offsets instruction addresses so different
    programs in a multiprogram mix occupy distinct PC ranges.
    """

    instructions: list[Instruction]
    memory: dict[int, int] = field(default_factory=dict)
    base_pc: int = 0x1000
    name: str = "program"

    def pc_of(self, index: int) -> int:
        """Virtual PC of the instruction at ``index``."""
        return self.base_pc + index * INSTRUCTION_BYTES

    def index_of(self, pc: int) -> int:
        """Inverse of :meth:`pc_of`."""
        return (pc - self.base_pc) // INSTRUCTION_BYTES

    def __len__(self) -> int:
        return len(self.instructions)


def _reg(operand: int | str) -> int:
    """Normalize a register operand to an index, validating its range."""
    if isinstance(operand, str):
        if not operand.startswith("r"):
            raise AssemblyError(f"bad register operand {operand!r}")
        try:
            operand = int(operand[1:])
        except ValueError as exc:
            raise AssemblyError(f"bad register operand {operand!r}") from exc
    if not 0 <= operand < NUM_REGISTERS:
        raise AssemblyError(f"register index {operand} out of range")
    return operand


@dataclass(frozen=True)
class Label:
    """A symbolic jump target returned by :meth:`Assembler.label`."""

    name: str


class Assembler:
    """Incremental builder producing a :class:`Program`.

    Forward references are allowed: ``future_label`` creates a label that is
    placed later with :meth:`place`.
    """

    def __init__(self, name: str = "program", base_pc: int = 0x1000) -> None:
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []
        self._memory: dict[int, int] = {}
        self._name = name
        self._base_pc = base_pc
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def label(self, name: str | None = None) -> Label:
        """Create a label bound to the *current* position."""
        label = self.future_label(name)
        self.place(label)
        return label

    def future_label(self, name: str | None = None) -> Label:
        """Create a label to be placed later (forward branch target)."""
        if name is None:
            name = f"_L{self._label_counter}"
            self._label_counter += 1
        if name in self._labels:
            raise AssemblyError(f"label {name!r} already placed")
        return Label(name)

    def place(self, label: Label) -> None:
        """Bind ``label`` to the current instruction index."""
        if label.name in self._labels:
            raise AssemblyError(f"label {label.name!r} already placed")
        self._labels[label.name] = len(self._instructions)

    @property
    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._instructions)

    # ------------------------------------------------------------------
    # Data memory
    # ------------------------------------------------------------------
    def data(self, address: int, values: int | list[int]) -> None:
        """Initialize data memory words starting at ``address``."""
        if address % 8:
            raise AssemblyError(f"data address {address:#x} not 8-byte aligned")
        if isinstance(values, int):
            values = [values]
        for offset, value in enumerate(values):
            self._memory[address + 8 * offset] = value

    # ------------------------------------------------------------------
    # Instruction emitters
    # ------------------------------------------------------------------
    def _emit(self, instruction: Instruction) -> None:
        self._instructions.append(instruction)

    def _emit_branch(self, op: Opcode, label: Label,
                     rs1: int | str | None = None,
                     rs2: int | str | None = None) -> None:
        index = len(self._instructions)
        self._fixups.append((index, label.name))
        self._emit(
            Instruction(
                op,
                rs1=_reg(rs1) if rs1 is not None else None,
                rs2=_reg(rs2) if rs2 is not None else None,
                target=-1,
            )
        )

    def movi(self, rd: int | str, imm: int) -> None:
        self._emit(Instruction(Opcode.MOVI, rd=_reg(rd), imm=imm))

    def mov(self, rd: int | str, rs: int | str) -> None:
        self._emit(Instruction(Opcode.MOV, rd=_reg(rd), rs1=_reg(rs)))

    def add(self, rd: int | str, rs1: int | str, rs2: int | str) -> None:
        self._emit(Instruction(Opcode.ADD, rd=_reg(rd), rs1=_reg(rs1), rs2=_reg(rs2)))

    def addi(self, rd: int | str, rs1: int | str, imm: int) -> None:
        self._emit(Instruction(Opcode.ADDI, rd=_reg(rd), rs1=_reg(rs1), imm=imm))

    def sub(self, rd: int | str, rs1: int | str, rs2: int | str) -> None:
        self._emit(Instruction(Opcode.SUB, rd=_reg(rd), rs1=_reg(rs1), rs2=_reg(rs2)))

    def mul(self, rd: int | str, rs1: int | str, rs2: int | str) -> None:
        self._emit(Instruction(Opcode.MUL, rd=_reg(rd), rs1=_reg(rs1), rs2=_reg(rs2)))

    def muli(self, rd: int | str, rs1: int | str, imm: int) -> None:
        self._emit(Instruction(Opcode.MULI, rd=_reg(rd), rs1=_reg(rs1), imm=imm))

    def and_(self, rd: int | str, rs1: int | str, rs2: int | str) -> None:
        self._emit(Instruction(Opcode.AND, rd=_reg(rd), rs1=_reg(rs1), rs2=_reg(rs2)))

    def andi(self, rd: int | str, rs1: int | str, imm: int) -> None:
        self._emit(Instruction(Opcode.ANDI, rd=_reg(rd), rs1=_reg(rs1), imm=imm))

    def xor(self, rd: int | str, rs1: int | str, rs2: int | str) -> None:
        self._emit(Instruction(Opcode.XOR, rd=_reg(rd), rs1=_reg(rs1), rs2=_reg(rs2)))

    def shli(self, rd: int | str, rs1: int | str, imm: int) -> None:
        self._emit(Instruction(Opcode.SHLI, rd=_reg(rd), rs1=_reg(rs1), imm=imm))

    def shri(self, rd: int | str, rs1: int | str, imm: int) -> None:
        self._emit(Instruction(Opcode.SHRI, rd=_reg(rd), rs1=_reg(rs1), imm=imm))

    def load(self, rd: int | str, base: int | str, imm: int = 0) -> None:
        self._emit(Instruction(Opcode.LOAD, rd=_reg(rd), rs1=_reg(base), imm=imm))

    def store(self, value: int | str, base: int | str, imm: int = 0) -> None:
        self._emit(
            Instruction(Opcode.STORE, rs1=_reg(base), rs2=_reg(value), imm=imm)
        )

    def beq(self, rs1: int | str, rs2: int | str, label: Label) -> None:
        self._emit_branch(Opcode.BEQ, label, rs1, rs2)

    def bne(self, rs1: int | str, rs2: int | str, label: Label) -> None:
        self._emit_branch(Opcode.BNE, label, rs1, rs2)

    def blt(self, rs1: int | str, rs2: int | str, label: Label) -> None:
        self._emit_branch(Opcode.BLT, label, rs1, rs2)

    def bge(self, rs1: int | str, rs2: int | str, label: Label) -> None:
        self._emit_branch(Opcode.BGE, label, rs1, rs2)

    def jmp(self, label: Label) -> None:
        self._emit_branch(Opcode.JMP, label)

    def call(self, label: Label) -> None:
        self._emit_branch(Opcode.CALL, label)

    def ret(self) -> None:
        self._emit(Instruction(Opcode.RET))

    def nop(self, count: int = 1) -> None:
        for _ in range(count):
            self._emit(Instruction(Opcode.NOP))

    def halt(self) -> None:
        self._emit(Instruction(Opcode.HALT))

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def assemble(self) -> Program:
        """Resolve labels and return the finished :class:`Program`."""
        instructions = list(self._instructions)
        for index, label_name in self._fixups:
            if label_name not in self._labels:
                raise AssemblyError(f"label {label_name!r} never placed")
            original = instructions[index]
            instructions[index] = Instruction(
                original.op,
                rd=original.rd,
                rs1=original.rs1,
                rs2=original.rs2,
                imm=original.imm,
                target=self._labels[label_name],
            )
        return Program(
            instructions=instructions,
            memory=dict(self._memory),
            base_pc=self._base_pc,
            name=self._name,
        )
