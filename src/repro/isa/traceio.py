"""Trace serialization: save/load dynamic traces as compact .npz files.

Functional execution is cheap, but sharing a trace between processes (or
pinning an exact trace for regression hunting) needs a stable on-disk
form.  Records are stored as parallel numpy arrays; the memory image as
two aligned arrays of addresses and values.
"""

from __future__ import annotations

import numpy as np

from repro.isa.trace import Trace, TraceRecord

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str) -> None:
    """Write ``trace`` to ``path`` (.npz)."""
    n = len(trace.records)
    pc = np.empty(n, dtype=np.int64)
    opc = np.empty(n, dtype=np.int8)
    addr = np.empty(n, dtype=np.int64)
    value = np.empty(n, dtype=np.int64)
    regs = np.empty((n, 3), dtype=np.int8)
    taken = np.empty(n, dtype=np.bool_)
    target_pc = np.empty(n, dtype=np.int64)
    ras_top = np.empty(n, dtype=np.int64)
    for i, r in enumerate(trace.records):
        pc[i] = r.pc
        opc[i] = r.opc
        addr[i] = r.addr
        value[i] = r.value  # machine values are already signed-64 wrapped
        regs[i, 0] = r.dst
        regs[i, 1] = r.src1
        regs[i, 2] = r.src2
        taken[i] = r.taken
        target_pc[i] = r.target_pc
        ras_top[i] = r.ras_top
    memory_addresses = np.fromiter(trace.memory.keys(), dtype=np.int64,
                                   count=len(trace.memory))
    memory_values = np.fromiter(
        (v if -(1 << 63) <= v < (1 << 63) else v - (1 << 64)
         for v in trace.memory.values()),
        dtype=np.int64,
        count=len(trace.memory),
    )
    np.savez_compressed(
        path,
        version=np.int32(_FORMAT_VERSION),
        name=np.str_(trace.name),
        pc=pc, opc=opc, addr=addr, value=value, regs=regs,
        taken=taken, target_pc=target_pc, ras_top=ras_top,
        memory_addresses=memory_addresses, memory_values=memory_values,
    )


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version}"
            )
        name = str(data["name"])
        pc = data["pc"]
        opc = data["opc"]
        addr = data["addr"]
        value = data["value"]
        regs = data["regs"]
        taken = data["taken"]
        target_pc = data["target_pc"]
        ras_top = data["ras_top"]
        records = [
            TraceRecord(
                int(pc[i]), int(opc[i]), addr=int(addr[i]),
                value=int(value[i]), dst=int(regs[i, 0]),
                src1=int(regs[i, 1]), src2=int(regs[i, 2]),
                taken=bool(taken[i]), target_pc=int(target_pc[i]),
                ras_top=int(ras_top[i]),
            )
            for i in range(len(pc))
        ]
        memory = {
            int(a): int(v)
            for a, v in zip(data["memory_addresses"],
                            data["memory_values"])
        }
    return Trace(name=name, records=records, memory=memory)
