"""Trace serialization: save/load dynamic traces as compact .npz files.

Functional execution is cheap, but sharing a trace between processes (or
pinning an exact trace for regression hunting) needs a stable on-disk
form.  Records are stored as parallel numpy arrays; the memory image as
two aligned arrays of addresses and values.

Both trace representations serialize to the same format: a compiled
:class:`~repro.isa.trace.CompiledTrace` writes its columns directly (one
vectorized conversion per field), an object :class:`~repro.isa.trace.Trace`
is walked record by record.  ``load_trace`` reconstructs the object form,
``load_compiled`` the columnar form — from the same file.

This is the *archival* format (compressed, numpy-portable).  The hot
read-through trace cache (:mod:`repro.workloads.tracecache`) uses its own
lighter container tuned for load speed.
"""

from __future__ import annotations

import numpy as np

from repro.isa.trace import CompiledTrace, Trace, TraceRecord

_FORMAT_VERSION = 1


def _arrays_from_trace(trace: Trace | CompiledTrace):
    """The eight npz arrays, built columnar-fast when possible."""
    if isinstance(trace, CompiledTrace):
        # Straight off the backing numpy columns (TRACE_FIELDS order:
        # pc, opc, addr, value, dst, src1, src2, taken, target_pc,
        # ras_top) — no tolist round-trip through Python objects, and
        # shared-memory trace views export without materializing their
        # lazy list columns.
        n = len(trace)
        (pc, opc, addr, value, dst, src1, src2, taken, target_pc,
         ras_top) = trace.array_columns()
        regs = np.empty((n, 3), dtype=np.int8)
        regs[:, 0] = dst
        regs[:, 1] = src1
        regs[:, 2] = src2
        return (
            np.asarray(pc, dtype=np.int64),
            np.asarray(opc, dtype=np.int8),
            np.asarray(addr, dtype=np.int64),
            np.asarray(value, dtype=np.int64),
            regs,
            np.asarray(taken, dtype=np.bool_),
            np.asarray(target_pc, dtype=np.int64),
            np.asarray(ras_top, dtype=np.int64),
        )
    n = len(trace.records)
    pc = np.empty(n, dtype=np.int64)
    opc = np.empty(n, dtype=np.int8)
    addr = np.empty(n, dtype=np.int64)
    value = np.empty(n, dtype=np.int64)
    regs = np.empty((n, 3), dtype=np.int8)
    taken = np.empty(n, dtype=np.bool_)
    target_pc = np.empty(n, dtype=np.int64)
    ras_top = np.empty(n, dtype=np.int64)
    for i, r in enumerate(trace.records):
        pc[i] = r.pc
        opc[i] = r.opc
        addr[i] = r.addr
        value[i] = r.value  # machine values are already signed-64 wrapped
        regs[i, 0] = r.dst
        regs[i, 1] = r.src1
        regs[i, 2] = r.src2
        taken[i] = r.taken
        target_pc[i] = r.target_pc
        ras_top[i] = r.ras_top
    return pc, opc, addr, value, regs, taken, target_pc, ras_top


def save_trace(trace: Trace | CompiledTrace, path: str) -> None:
    """Write ``trace`` (object or compiled) to ``path`` (.npz)."""
    pc, opc, addr, value, regs, taken, target_pc, ras_top = (
        _arrays_from_trace(trace)
    )
    memory_addresses = np.fromiter(trace.memory.keys(), dtype=np.int64,
                                   count=len(trace.memory))
    memory_values = np.fromiter(
        (v if -(1 << 63) <= v < (1 << 63) else v - (1 << 64)
         for v in trace.memory.values()),
        dtype=np.int64,
        count=len(trace.memory),
    )
    np.savez_compressed(
        path,
        version=np.int32(_FORMAT_VERSION),
        name=np.str_(trace.name),
        pc=pc, opc=opc, addr=addr, value=value, regs=regs,
        taken=taken, target_pc=target_pc, ras_top=ras_top,
        memory_addresses=memory_addresses, memory_values=memory_values,
    )


def _load_arrays(path: str):
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version}"
            )
        name = str(data["name"])
        arrays = {key: data[key] for key in
                  ("pc", "opc", "addr", "value", "regs", "taken",
                   "target_pc", "ras_top")}
        memory = {
            int(a): int(v)
            for a, v in zip(data["memory_addresses"],
                            data["memory_values"])
        }
    return name, arrays, memory


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace` as an object trace."""
    name, a, memory = _load_arrays(path)
    pc, opc, addr, value = a["pc"], a["opc"], a["addr"], a["value"]
    regs, taken = a["regs"], a["taken"]
    target_pc, ras_top = a["target_pc"], a["ras_top"]
    records = [
        TraceRecord(
            int(pc[i]), int(opc[i]), addr=int(addr[i]),
            value=int(value[i]), dst=int(regs[i, 0]),
            src1=int(regs[i, 1]), src2=int(regs[i, 2]),
            taken=bool(taken[i]), target_pc=int(target_pc[i]),
            ras_top=int(ras_top[i]),
        )
        for i in range(len(pc))
    ]
    return Trace(name=name, records=records, memory=memory)


def load_compiled(path: str) -> CompiledTrace:
    """Read a trace written by :func:`save_trace` as a compiled trace.

    The loaded numpy arrays become the trace's canonical columns
    directly (no ``tolist()`` round-trip); scalar consumers materialize
    list views lazily while the vectorized batch tier reads the arrays
    as-is.
    """
    name, a, memory = _load_arrays(path)
    regs = a["regs"]
    arrays = (
        a["pc"],
        a["opc"],
        a["addr"],
        a["value"],
        np.ascontiguousarray(regs[:, 0]),
        np.ascontiguousarray(regs[:, 1]),
        np.ascontiguousarray(regs[:, 2]),
        a["taken"].astype(np.bool_),
        a["target_pc"],
        a["ras_top"],
    )
    return CompiledTrace.from_arrays(name, arrays, memory)
