"""Micro-ISA substrate.

The paper evaluates prefetchers with gem5 running SPEC/CRONO/STARBENCH/NPB
binaries.  Those binaries (and gem5) are not available here, so this package
provides the closest synthetic equivalent: a tiny register machine whose
programs produce dynamic instruction traces with everything the paper's
prefetcher mechanisms observe on a real core:

* program counters and I-cache-line locality (T2's per-instruction state),
* backward loop branches and call/return (T2's loop hardware and the
  ``mPC = PC xor RAS.top`` call-site disambiguation),
* register dataflow (P1's taint-propagation unit),
* load values (P1's pointer-chain and array-of-pointers patterns),
* effective addresses (every prefetcher, the cache hierarchy).

The public surface is :class:`~repro.isa.program.Assembler` /
:class:`~repro.isa.program.Program` for building programs,
:class:`~repro.isa.machine.Machine` for running them, and
:class:`~repro.isa.trace.Trace` for the recorded result.
"""

from repro.isa.instructions import Instruction, Opcode, OpClass
from repro.isa.program import Assembler, Program
from repro.isa.machine import Machine, MachineError
from repro.isa.trace import Trace, TraceRecord, TraceStats

__all__ = [
    "Assembler",
    "Instruction",
    "Machine",
    "MachineError",
    "OpClass",
    "Opcode",
    "Program",
    "Trace",
    "TraceRecord",
    "TraceStats",
]
