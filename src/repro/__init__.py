"""repro — a reproduction of *Division of Labor: A More Effective Approach
to Prefetching* (Kondguli & Huang, ISCA 2018).

The package implements the paper's composite prefetcher **TPC** (T2 stride
component, P1 pointer component, C1 region component, plus the coordinator),
seven monolithic baseline prefetchers, and every substrate needed to
evaluate them: a micro-ISA workload substrate, a trace-driven simplified
out-of-order timing model, a three-level cache hierarchy with MSHRs and
shadow tags, and a DDR3-style DRAM model.

Quickstart::

    from repro import simulate, make_prefetcher
    from repro.workloads import get_workload

    trace = get_workload("spec.stream_triad").trace()
    result = simulate(trace, prefetcher=make_prefetcher("tpc"))
    print(result.ipc, result.l1d.demand_misses)
"""

__all__ = [
    "SimulationResult",
    "SystemConfig",
    "available_prefetchers",
    "make_prefetcher",
    "simulate",
]

__version__ = "1.0.0"


def __getattr__(name):
    """Lazily resolve the public API to keep import-time light."""
    if name in ("SimulationResult", "simulate"):
        from repro.engine import system

        return getattr(system, name)
    if name == "SystemConfig":
        from repro.engine.config import SystemConfig

        return SystemConfig
    if name in ("available_prefetchers", "make_prefetcher"):
        from repro import prefetcher_registry

        return getattr(prefetcher_registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
