"""Wall-clock benchmark harness behind ``repro bench``.

Times the three layers this repository's performance story rests on and
writes a machine-readable ``BENCH_simulator.json``:

* **serial** — instructions simulated per second over a fixed
  (workload x prefetcher) matrix, traces pre-built so the number
  measures the simulator hot loop and not trace generation;
* **kernels** — the same matrix re-run under ``REPRO_KERNEL=generic``,
  reporting the specialized-vs-generic speedup, per-cell kernel
  variants, and whether the figures were bit-identical (they must be;
  ``--check`` and ``--require-specialized`` gate on this section).
  Its ``batch`` subsection re-times the cells that selected the
  vectorized batch tier (:mod:`repro.engine.batch`) against the
  ``REPRO_KERNEL=scalar`` comparator, reporting
  ``speedup_vs_scalar`` and in-run bit-identity (``--require-batch``
  gates on it); its ``segmented`` subsection does the same for the
  hooked cells that selected the segmented tier (the paper's
  ``bop``/``tpc`` prefetchers), per cell — coverage fraction,
  seconds, speedup, identity — plus the aggregate
  ``speedup_vs_scalar`` that ``--require-segmented`` gates on
  (>= 1.5x, bit-identical everywhere);
* **parallel** — the same matrix through :func:`repro.parallel.run_jobs`
  at ``--jobs N``, reported as speedup over the serial pass; on hosts
  where the pool would lose (``<= 2`` CPUs, tiny matrix) the pass
  auto-falls back to serial and records ``parallel.fallback``;
* **cache** — a cold run populating a scratch on-disk result cache vs a
  warm run reading it back, with the warm run's fresh-simulation count
  (which must be zero) recorded alongside the times.

The report also carries a ``phases`` breakdown — trace-build seconds
(and how many traces were actually generated vs read from the trace
cache), pure simulate seconds, and the parallel pass's warm/simulate/
merge split — so a slow run can be attributed to the right layer.

``--check BASELINE.json`` turns the run into a regression gate: it fails
(exit 1) when serial throughput drops more than ``--tolerance`` (default
30%) below the committed baseline, or when the parallel pass at
``jobs >= 2`` on a multi-core host comes out *slower* than serial
(``speedup_vs_serial < 1.0`` — the PR-2 pool paid more in spawn and
pickling than it won back; that must never happen again).  Single-core
hosts skip the parallel gate, annotated in the report.  The committed
baseline in ``benchmarks/BENCH_baseline.json`` was measured *before*
the hot-loop optimization, so ``improvement_vs_baseline`` in the output
doubles as the optimization's scoreboard on comparable hardware.

``--chaos`` switches the harness into degraded-mode verification (see
docs/robustness.md): it measures a clean serial reference, then re-runs
the matrix through the fault-tolerant stack with deterministic chaos
injected — one worker killed mid-cell, one cell slowed past the
per-cell timeout, one result-cache entry corrupted on disk — and a
resume pass on the journal.  The gate fails (exit 1) unless the matrix
completes with zero failed cells, final figures bit-identical to the
clean reference, and the resume pass re-simulating only the corrupted
cell.  This is the CI proof that the robustness layer degrades instead
of breaking.

``--fuzz`` switches the harness into identity-property verification
(see docs/workloads.md): the stress suite plus ``--fuzz-seeds`` seeded
adversarial traces are replayed under every registered prefetcher and
must produce bit-identical figures across kernel tiers, fused vs
singleton execution, and warm vs cold trace caches.  The gate fails
(exit 1) on any violation; the JSON report names the seed, prefetcher,
invariant, and diverging fields so the break replays by hand.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import shutil
import sys
import tempfile
import time

from repro.engine.config import EXPERIMENT_CONFIG
from repro.log import get_logger

FULL_WORKLOADS = ["spec.libquantum", "spec.mcf", "spec.milc", "spec.astar"]
FULL_PREFETCHERS = ["none", "bop", "tpc"]
QUICK_WORKLOADS = ["spec.libquantum", "spec.mcf"]
QUICK_PREFETCHERS = ["bop", "tpc"]

DEFAULT_OUTPUT = "BENCH_simulator.json"
DEFAULT_TOLERANCE = 0.30
DEFAULT_LOG = "runs/bench_log.jsonl"


def append_bench_log(record: dict, path: str | None = None) -> str | None:
    """Append one timestamped JSON line to the shared bench log.

    This is the single machine-readable channel for everything the
    benchmark tooling produces: ``repro bench`` reports land here and so
    do the tables the ``benchmarks/`` pytest harness renders (via
    ``benchmarks/_bench_util.show``).  The path comes from the
    ``REPRO_BENCH_LOG`` environment variable (default ``runs/
    bench_log.jsonl``); setting it to an empty string disables logging.
    Returns the path written, or ``None`` when disabled.
    """
    if path is None:
        path = os.environ.get("REPRO_BENCH_LOG", DEFAULT_LOG)
    if not path:
        return None
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    stamped = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        **record,
    }
    with open(path, "a") as handle:
        handle.write(json.dumps(stamped, sort_keys=True) + "\n")
    return path


def _matrix(quick: bool) -> list[tuple[str, str]]:
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    prefetchers = QUICK_PREFETCHERS if quick else FULL_PREFETCHERS
    return [(w, p) for w in workloads for p in prefetchers]


def _warm_traces(matrix) -> dict:
    """Pre-build the matrix's compiled traces; returns the phase cost
    (seconds plus how many traces were generated rather than read from
    the trace cache).

    After warming, everything alive (modules, memoized traces, memory
    images) is moved to the GC's permanent generation: these objects
    live for the whole process, and rescanning millions of trace
    elements on every generational pass showed up as a near-10% tax on
    the simulate loop."""
    import gc

    from repro.workloads import get_workload
    from repro.workloads.tracecache import trace_counters

    builds_before = trace_counters()["builds"]
    started = time.perf_counter()
    for workload in {w for w, _ in matrix}:
        trace = get_workload(workload).trace()
        # Materialize the per-record views here too: instruction-feed
        # prefetchers (tpc) need them, they are built once per process,
        # and paying that inside the first timed pass would make
        # fastest-of-N effectively fastest-of-(N-1).
        trace.records
    gc.collect()
    gc.freeze()
    return {
        "seconds": round(time.perf_counter() - started, 3),
        "trace_builds": trace_counters()["builds"] - builds_before,
    }


def bench_serial(matrix, config, repeats: int = 3) -> dict:
    """Time the matrix cell by cell on the canonical simulation path.

    Runs one untimed settle pass, then ``repeats`` timed passes and
    keeps the fastest — wall-clock noise only ever slows a pass down,
    so the minimum is the stable estimate (the committed baseline was
    measured the same way).

    Besides the timing the result carries the per-cell identity figures
    and the replay-kernel variant each cell selected (see
    :mod:`repro.engine.kernel`); ``run_bench`` compares both against a
    ``REPRO_KERNEL=generic`` pass.
    """
    from repro.experiments.runner import simulate_spec

    # Untimed settle pass: the first execution of each cell pays
    # one-time per-process costs (exec-compiling the replay kernels,
    # the interpreter's adaptive-bytecode warm-up) that are not
    # steady-state throughput.  Without it, pass 1 of fastest-of-N is
    # always the loser and the protocol degrades to fastest-of-(N-1).
    for workload, spec in matrix:
        simulate_spec(workload, spec, "", config)

    best = None
    instructions = 0
    figures: list = []
    variants: dict = {}
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        instructions = 0
        figures = []
        for workload, spec in matrix:
            result = simulate_spec(workload, spec, "", config)
            instructions += result.core.instructions
            figures.append(_cell_figures(result))
            variants[f"{workload}/{spec}"] = result.kernel
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return {
        "seconds": round(best, 3),
        "instructions": instructions,
        "instr_per_sec": round(instructions / best) if best else 0,
        "cell_figures": figures,
        "kernel_variants": variants,
    }


def bench_generic(matrix, config) -> dict:
    """One serial pass with specialization disabled (the escape hatch).

    Runs the exact matrix under ``REPRO_KERNEL=generic`` and returns its
    wall clock plus per-cell figures, so ``run_bench`` can report the
    specialized-vs-generic speedup *and* prove bit-identity in the same
    run.  A single pass (no fastest-of-N): the comparison only has to be
    conservative, the identity check is exact either way.
    """
    from repro.engine.kernel import GENERIC, KERNEL_ENV
    from repro.experiments.runner import simulate_spec

    previous = os.environ.get(KERNEL_ENV)
    os.environ[KERNEL_ENV] = GENERIC
    try:
        started = time.perf_counter()
        figures = [
            _cell_figures(simulate_spec(workload, spec, "", config))
            for workload, spec in matrix
        ]
        elapsed = time.perf_counter() - started
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = previous
    return {"seconds": round(elapsed, 3), "cell_figures": figures}


def bench_batch(matrix, config, variants: dict) -> dict:
    """The kernels section's ``batch`` subsection.

    Re-times the cells whose serial pass selected the vectorized batch
    tier (the hookless ``none``/baseline cells) against the
    ``REPRO_KERNEL=scalar`` comparator — the scalar specialized kernels
    with only the batch tier disabled — and proves in-run bit-identity
    between the two.  Each leg gets one untimed settle pass (the scalar
    kernels for these cells may not be exec-compiled yet; the batch
    plans are memoized from the serial pass) and then fastest-of-3.
    """
    from repro.engine.batch import BATCH_VARIANT
    from repro.engine.kernel import KERNEL_ENV, SCALAR
    from repro.experiments.runner import simulate_spec

    cells = [(w, s) for w, s in matrix
             if variants.get(f"{w}/{s}") == BATCH_VARIANT]
    section: dict = {
        "variant": BATCH_VARIANT,
        "cells": [f"{w}/{s}" for w, s in cells],
    }
    if not cells:
        section.update({
            "batch_seconds": 0.0,
            "scalar_seconds": 0.0,
            "speedup_vs_scalar": 0.0,
            "identical": True,
        })
        return section

    def timed_pass() -> tuple[float, list]:
        for workload, spec in cells:
            simulate_spec(workload, spec, "", config)
        best = None
        figures: list = []
        for _ in range(3):
            started = time.perf_counter()
            figures = [
                _cell_figures(simulate_spec(workload, spec, "", config))
                for workload, spec in cells
            ]
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        return best, figures

    batch_seconds, batch_figures = timed_pass()
    previous = os.environ.get(KERNEL_ENV)
    os.environ[KERNEL_ENV] = SCALAR
    try:
        scalar_seconds, scalar_figures = timed_pass()
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = previous
    section.update({
        "batch_seconds": round(batch_seconds, 3),
        "scalar_seconds": round(scalar_seconds, 3),
        "speedup_vs_scalar": (
            round(scalar_seconds / batch_seconds, 2)
            if batch_seconds else 0.0
        ),
        "identical": batch_figures == scalar_figures,
    })
    return section


def bench_segmented(matrix, config, variants: dict) -> dict:
    """The kernels section's ``segmented`` subsection.

    Re-times the cells whose serial pass selected the segmented tier
    (the hooked leanmem cells — the paper's ``bop``/``tpc``
    prefetchers) against the ``REPRO_KERNEL=scalar`` comparator and
    proves in-run bit-identity.  Each cell is timed individually
    (settle pass, then fastest-of-3) so the section carries per-cell
    seconds and speedups alongside the aggregate; the per-cell
    ``coverage`` figure is the trace's segment-event fraction — the
    share of instructions that run as scalar islands rather than
    hook-free stretches — which bounds how much the tier can win.
    """
    from repro.engine.batch import SEGMENT_PREFIX
    from repro.engine.kernel import KERNEL_ENV, SCALAR
    from repro.experiments.runner import simulate_spec
    from repro.workloads import get_workload

    cells = [(w, s) for w, s in matrix
             if (variants.get(f"{w}/{s}") or "").startswith(SEGMENT_PREFIX)]
    section: dict = {
        "cells": [f"{w}/{s}" for w, s in cells],
    }
    if not cells:
        section.update({
            "segmented_seconds": 0.0,
            "scalar_seconds": 0.0,
            "speedup_vs_scalar": 0.0,
            "identical": True,
            "per_cell": {},
        })
        return section

    def timed_cells() -> tuple[dict, dict]:
        for workload, spec in cells:
            simulate_spec(workload, spec, "", config)
        seconds: dict = {}
        figures: dict = {}
        for workload, spec in cells:
            best = None
            for _ in range(3):
                started = time.perf_counter()
                result = simulate_spec(workload, spec, "", config)
                elapsed = time.perf_counter() - started
                if best is None or elapsed < best:
                    best = elapsed
            seconds[(workload, spec)] = best
            figures[(workload, spec)] = _cell_figures(result)
        return seconds, figures

    seg_seconds, seg_figures = timed_cells()
    previous = os.environ.get(KERNEL_ENV)
    os.environ[KERNEL_ENV] = SCALAR
    try:
        sca_seconds, sca_figures = timed_cells()
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = previous

    per_cell: dict = {}
    for workload, spec in cells:
        trace = get_workload(workload).trace()
        n = len(trace)
        seg = seg_seconds[(workload, spec)]
        sca = sca_seconds[(workload, spec)]
        per_cell[f"{workload}/{spec}"] = {
            "kernel": variants[f"{workload}/{spec}"],
            "coverage": round(len(trace.segment_events()) / n, 4) if n
            else 1.0,
            "segmented_seconds": round(seg, 3),
            "scalar_seconds": round(sca, 3),
            "speedup_vs_scalar": round(sca / seg, 2) if seg else 0.0,
            "identical": seg_figures[(workload, spec)]
            == sca_figures[(workload, spec)],
        }
    seg_total = sum(seg_seconds.values())
    sca_total = sum(sca_seconds.values())
    section.update({
        "segmented_seconds": round(seg_total, 3),
        "scalar_seconds": round(sca_total, 3),
        "speedup_vs_scalar": (
            round(sca_total / seg_total, 2) if seg_total else 0.0
        ),
        "identical": all(c["identical"] for c in per_cell.values()),
        "per_cell": per_cell,
    })
    return section


def bench_parallel(matrix, config, jobs: int, serial_seconds: float) -> dict:
    """Time the matrix through the pool, with fabric observability on.

    Besides the wall clock and phase split, the section reports the host
    CPU count, per-worker busy/idle seconds (from the sweep's unit
    spans), and the straggler attribution — so a weak
    ``speedup_vs_serial`` is diagnosable from the report alone.
    """
    from repro.obs import FabricObs
    from repro.obs.report import pool_report
    from repro.parallel import run_jobs

    obs = FabricObs("bench-parallel")
    timings: dict = {}
    started = time.perf_counter()
    run_jobs(matrix, config, jobs, timings=timings, obs=obs,
             auto_serial=True)
    elapsed = time.perf_counter() - started
    obs.finish()
    report = pool_report(obs.records())
    fallback = bool(timings.get("fallback"))
    section = {
        "jobs": jobs,
        "cpus": os.cpu_count() or 1,
        "seconds": round(elapsed, 3),
        # A serial fallback never measured a pool, so a "speedup" here
        # would be serial-vs-serial timing noise dressed up as a
        # result.  null means "not measured"; check_regression reads
        # the null itself to skip the gate (no side channel).
        "speedup_vs_serial": (
            None if fallback
            else round(serial_seconds / elapsed, 2) if elapsed else 0.0
        ),
        "phases": timings,
        "workers": report["workers"],
        "utilization": {
            "unit_imbalance": report["unit_imbalance"],
            "steals": report["steals"],
            "critical_cell": report["critical_cell"],
            "straggler_worker": report["straggler_worker"],
        },
    }
    if fallback:
        section["fallback"] = timings["fallback"]
        section["fallback_reason"] = timings.get("fallback_reason")
    return section


def bench_cache(matrix, config) -> dict:
    """Cold run filling a scratch cache, then a warm run reading it."""
    from repro.experiments.runner import ExperimentRunner

    scratch = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cold_runner = ExperimentRunner(config, cache_dir=scratch)
        started = time.perf_counter()
        for workload, spec in matrix:
            cold_runner.run(workload, spec)
        cold = time.perf_counter() - started

        warm_runner = ExperimentRunner(config, cache_dir=scratch)
        started = time.perf_counter()
        for workload, spec in matrix:
            warm_runner.run(workload, spec)
        warm = time.perf_counter() - started
        return {
            "cold_seconds": round(cold, 3),
            "warm_seconds": round(warm, 3),
            "warm_fresh_simulations": warm_runner.counters["simulated"],
            "warm_speedup": round(cold / warm, 1) if warm else 0.0,
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _cell_figures(result) -> tuple:
    """The per-cell identity tuple the chaos gate compares on."""
    return (result.core.cycles, result.core.instructions,
            result.l1d.demand_misses, result.dram_traffic)


def run_chaos_bench(quick: bool = True, jobs: int = 0,
                    progress=None) -> dict:
    """Degraded-mode verification pass (``repro bench --chaos``).

    Clean serial reference first, then the same matrix through
    ``ExperimentRunner.prefill`` at ``jobs`` workers with deterministic
    chaos: the first cell's worker killed, the second slowed past the
    per-cell timeout, the third's result-cache entry corrupted.  A
    second runner then resumes from the journal, which must re-simulate
    only the corrupted cell.  Returns a report whose ``ok`` field is
    the gate.
    """
    from repro import parallel
    from repro.experiments.runner import ExperimentRunner, simulate_spec
    from repro.faults import (RetryPolicy, chaos, fault_counters,
                              reset_fault_counters)

    def say(line: str) -> None:
        if progress is not None:
            progress(line)

    config = EXPERIMENT_CONFIG
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    matrix = [(w, p) for w in workloads for p in FULL_PREFETCHERS]
    # The slow cell must dispatch *after* the kill has broken the first
    # pool, so it still carries attempt 0 (chaos fires on the first
    # attempt only).  With workload-affine fusion the kill cell
    # (matrix[0]) rides the first unit and the slow cell (matrix[-1])
    # the last; dispatch is windowed at ``jobs`` units when a timeout
    # is set, and capping the worker count below the matrix size keeps
    # the window smaller than the unit count at every fusion chunk
    # size, so the slow unit is always still pending at the break.
    jobs = jobs or parallel.default_jobs()
    jobs = max(2, min(jobs, len(matrix) - 2))

    say(f"chaos: clean serial reference over {len(matrix)} cells")
    _warm_traces(matrix)
    reference = {}
    slowest = 0.0
    for workload, spec in matrix:
        started = time.perf_counter()
        reference[(workload, spec)] = _cell_figures(
            simulate_spec(workload, spec, "", config))
        slowest = max(slowest, time.perf_counter() - started)

    timeout = max(4.0 * slowest, 2.0)
    kill_w, kill_s = matrix[0]
    corrupt_w, corrupt_s = matrix[1]
    slow_w, slow_s = matrix[-1]
    spec_text = (f"kill={kill_w}/{kill_s};"
                 f"slow={slow_w}/{slow_s}:{3.0 * timeout:.1f};"
                 f"corrupt={corrupt_w}/{corrupt_s}")
    policy = RetryPolicy(max_attempts=3, backoff_seconds=0.05,
                         timeout_seconds=timeout)

    scratch = tempfile.mkdtemp(prefix="repro-bench-chaos-")
    previous_env = os.environ.get(chaos.CHAOS_ENV)
    parallel.shutdown_pool()
    chaos.reset_chaos()
    reset_fault_counters()
    os.environ[chaos.CHAOS_ENV] = spec_text
    try:
        say(f"chaos: degraded pass at {jobs} jobs "
            f"(timeout {timeout:.1f}s) — {spec_text}")
        cache_dir = os.path.join(scratch, "cache")
        journal_dir = os.path.join(scratch, "journal")
        degraded = ExperimentRunner(config, cache_dir=cache_dir,
                                    journal_dir=journal_dir, jobs=jobs,
                                    retry=policy)
        degraded.prefill(matrix)
        degraded_ok = degraded.counters["failed_cells"] == 0
        degraded_identical = all(
            _cell_figures(degraded.run(w, s)) == reference[(w, s)]
            for w, s in matrix
        )

        say("chaos: resume pass (journal + corrupted cache entry)")
        resumed = ExperimentRunner(config, cache_dir=cache_dir,
                                   journal_dir=journal_dir, jobs=jobs,
                                   retry=policy)
        resumed.prefill(matrix)
        resumed_identical = all(
            _cell_figures(resumed.run(w, s)) == reference[(w, s)]
            for w, s in matrix
        )
        counters = fault_counters()
        report = {
            "quick": quick,
            "jobs": jobs,
            "cells": len(matrix),
            "chaos_spec": spec_text,
            "timeout_seconds": round(timeout, 2),
            "degraded": {
                "failed_cells": degraded.counters["failed_cells"],
                "fresh_simulations": degraded.counters["simulated"],
                "identical_to_serial": degraded_identical,
            },
            "resume": {
                # The corrupted entry is the only legitimate re-simulation.
                "fresh_simulations": resumed.counters["simulated"],
                "resume_hits": resumed.counters["resume_hits"],
                "identical_to_serial": resumed_identical,
            },
            "degradations": counters,
            "ok": (degraded_ok and degraded_identical and resumed_identical
                   and resumed.counters["simulated"] <= 1
                   and counters.get("worker_lost", 0) >= 1
                   and counters.get("cell_timeout", 0) >= 1
                   and counters.get("cache_corrupt", 0) >= 1),
        }
        return report
    finally:
        if previous_env is None:
            os.environ.pop(chaos.CHAOS_ENV, None)
        else:
            os.environ[chaos.CHAOS_ENV] = previous_env
        chaos.reset_chaos()
        parallel.shutdown_pool()
        shutil.rmtree(scratch, ignore_errors=True)


def run_fuzz_bench(seeds: int = 10, progress=None) -> dict:
    """Identity property gate (``repro bench --fuzz``).

    Runs the cross-tier identity sweep from
    :mod:`repro.workloads.fuzz` — the stress suite plus ``seeds``
    seeded adversarial traces, every registered prefetcher, the three
    invariants (kernel-vs-generic, fused-vs-singleton, warm-vs-cold) —
    and returns its report; ``ok`` is the gate.  A compact companion to
    the ``repro fuzz`` verb so CI can attach the report artifact the
    same way it attaches the timing report.
    """
    from repro.workloads.fuzz import run_fuzz

    return run_fuzz(seeds=seeds, stress=True, progress=progress)


def run_bench(quick: bool = False, jobs: int = 0,
              progress=None) -> dict:
    from repro.parallel import default_jobs

    def say(line: str) -> None:
        if progress is not None:
            progress(line)

    config = EXPERIMENT_CONFIG
    matrix = _matrix(quick)
    jobs = jobs or default_jobs()

    say(f"warming {len({w for w, _ in matrix})} traces")
    trace_phase = _warm_traces(matrix)
    say(f"serial pass over {len(matrix)} cells")
    serial = bench_serial(matrix, config)
    say(f"serial: {serial['instr_per_sec']} instr/sec")
    specialized_figures = serial.pop("cell_figures")
    variants = serial.pop("kernel_variants")
    say("generic-kernel reference pass (REPRO_KERNEL=generic)")
    generic = bench_generic(matrix, config)
    kernels = {
        "specialized_seconds": serial["seconds"],
        "generic_seconds": generic["seconds"],
        "speedup_vs_generic": (
            round(generic["seconds"] / serial["seconds"], 2)
            if serial["seconds"] else 0.0
        ),
        "identical": specialized_figures == generic["cell_figures"],
        "variants": variants,
        "generic_cells": sorted(
            cell for cell, variant in variants.items()
            if variant == "generic"
        ),
    }
    say(f"kernels: {kernels['speedup_vs_generic']}x vs generic, "
        f"identical={kernels['identical']}")
    say("batch-tier parity pass (REPRO_KERNEL=scalar comparator)")
    kernels["batch"] = bench_batch(matrix, config, variants)
    say(f"batch: {kernels['batch']['speedup_vs_scalar']}x vs scalar "
        f"over {len(kernels['batch']['cells'])} cells, "
        f"identical={kernels['batch']['identical']}")
    say("segmented-tier parity pass (REPRO_KERNEL=scalar comparator)")
    kernels["segmented"] = bench_segmented(matrix, config, variants)
    say(f"segmented: {kernels['segmented']['speedup_vs_scalar']}x vs "
        f"scalar over {len(kernels['segmented']['cells'])} cells, "
        f"identical={kernels['segmented']['identical']}")
    say(f"parallel pass at {jobs} jobs")
    parallel = bench_parallel(matrix, config, jobs, serial["seconds"])
    say("cache cold/warm passes")
    cache = bench_cache(matrix, config)
    # Note the parallel phase breakdown lives only under
    # ``parallel.phases`` (it used to be duplicated under
    # ``phases.parallel``); read it via :func:`parallel_phases`, which
    # still understands old logs.
    return {
        "quick": quick,
        "cpus": os.cpu_count() or 1,
        "matrix": {
            "workloads": sorted({w for w, _ in matrix}),
            "prefetchers": sorted({p for _, p in matrix}),
            "cells": len(matrix),
        },
        "phases": {
            "trace_build_seconds": trace_phase["seconds"],
            "trace_builds": trace_phase["trace_builds"],
            "simulate_seconds": serial["seconds"],
        },
        "serial": serial,
        "kernels": kernels,
        "parallel": parallel,
        "cache": cache,
    }


def parallel_phases(report: dict) -> dict:
    """The parallel pass's phase breakdown from a bench report.

    Reads the current schema (``parallel.phases``) and falls back to the
    pre-dedupe form (``phases.parallel``), so tooling over the shared
    bench log keeps working on records written by older versions.
    """
    phases = (report.get("parallel") or {}).get("phases")
    if phases is not None:
        return phases
    return (report.get("phases") or {}).get("parallel", {})


def check_regression(report: dict, baseline_path: str,
                     tolerance: float = DEFAULT_TOLERANCE) -> str | None:
    """Compare against a committed baseline; returns an error message on
    a regression beyond ``tolerance``, else ``None`` (and annotates the
    report with the comparison either way).

    The baseline file stores one serial reference per matrix mode
    (``quick`` and ``full``), so the CI smoke run and the full bench are
    each compared against like-for-like numbers.

    A second gate covers the parallel layer: at ``jobs >= 2`` on a
    multi-core host, ``speedup_vs_serial`` below 1.0 means the pool made
    things *slower* and fails the check.  Single-core hosts cannot show
    a real speedup, so the gate is skipped (and the report says so), as
    is a pass whose ``speedup_vs_serial`` is ``null`` — the honest
    record of a serial fallback, which measured no pool at all; falling
    back *is* the fix on such hosts.

    Two more gates cover the replay kernels: the specialized pass must
    be bit-identical to the ``REPRO_KERNEL=generic`` reference (this is
    the invariant, never tolerance-scaled), and the specialized-vs-
    generic speedup must not fall below 1.0 — a specialization that no
    longer pays for itself is a regression.  The same pair applies to
    the batch tier when any cell selected it: ``batch.identical`` must
    hold and ``batch.speedup_vs_scalar`` must not fall below 1.0 (the
    stricter >= 2.0 target is ``--require-batch``'s gate).
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    mode = "quick" if report["quick"] else "full"
    reference = baseline[mode]["instr_per_sec"]
    current = report["serial"]["instr_per_sec"]
    parallel = report["parallel"]
    # A fallback pass records speedup_vs_serial: null (it measured no
    # pool); the gate decision derives from that value alone.
    fallback = parallel.get("speedup_vs_serial") is None
    gate_applies = (parallel["jobs"] >= 2
                    and (os.cpu_count() or 1) >= 2
                    and not fallback)
    if fallback:
        parallel_gate = "skipped (serial fallback)"
    elif gate_applies:
        parallel_gate = "enforced"
    else:
        parallel_gate = "skipped (single-core host)"
    report["baseline"] = {
        "path": baseline_path,
        "mode": mode,
        "instr_per_sec": reference,
        "improvement_vs_baseline": (
            round(current / reference, 2) if reference else 0.0
        ),
        "tolerance": tolerance,
        "parallel_gate": parallel_gate,
    }
    floor = (1.0 - tolerance) * reference
    if current < floor:
        return (
            f"serial throughput regressed: {current} instr/sec < "
            f"{floor:.0f} ({(1 - tolerance) * 100:.0f}% of baseline "
            f"{reference})"
        )
    if gate_applies and parallel["speedup_vs_serial"] < 1.0:
        return (
            f"parallel pass slower than serial: speedup "
            f"{parallel['speedup_vs_serial']} < 1.0 at "
            f"{parallel['jobs']} jobs on a {os.cpu_count()}-core host"
        )
    kernels = report.get("kernels")
    if kernels is not None:
        if not kernels["identical"]:
            return (
                "specialized kernels are not bit-identical to the "
                "generic path (REPRO_KERNEL=generic) — figures diverged"
            )
        if kernels["speedup_vs_generic"] < 1.0:
            return (
                f"specialized kernels slower than the generic loop: "
                f"{kernels['speedup_vs_generic']}x < 1.0"
            )
        batch = kernels.get("batch")
        if batch is not None and batch["cells"]:
            if not batch["identical"]:
                return (
                    "batch tier is not bit-identical to the scalar "
                    "kernels (REPRO_KERNEL=scalar) — figures diverged"
                )
            if batch["speedup_vs_scalar"] < 1.0:
                return (
                    f"batch tier slower than the scalar kernels: "
                    f"{batch['speedup_vs_scalar']}x < 1.0"
                )
        segmented = kernels.get("segmented")
        if segmented is not None and segmented["cells"]:
            if not segmented["identical"]:
                return (
                    "segmented tier is not bit-identical to the scalar "
                    "kernels (REPRO_KERNEL=scalar) — figures diverged"
                )
            if segmented["speedup_vs_scalar"] < 1.0:
                return (
                    f"segmented tier slower than the scalar kernels: "
                    f"{segmented['speedup_vs_scalar']}x < 1.0"
                )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="simulator wall-clock benchmark (see docs/performance.md)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="2x2 matrix instead of the full one")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel-pass workers (0 = one per CPU)")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help=f"report path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--check", default=None, metavar="BASELINE.json",
                        help="fail on regression vs this baseline report")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression (default 0.30)")
    parser.add_argument("--chaos", action="store_true",
                        help="degraded-mode verification instead of timing: "
                             "inject worker kill / slow cell / corrupted "
                             "cache entry and gate on bit-identical figures")
    parser.add_argument("--fuzz", action="store_true",
                        help="cross-tier identity property gate instead "
                             "of timing: stress suite + fuzzed traces "
                             "under every prefetcher, fail on any "
                             "bit-identity violation")
    parser.add_argument("--fuzz-seeds", type=int, default=10, metavar="N",
                        help="fuzzed traces for --fuzz (default 10)")
    parser.add_argument("--require-specialized", action="store_true",
                        help="fail if any matrix cell fell back to the "
                             "generic replay kernel (CI kernel-parity "
                             "gate)")
    parser.add_argument("--require-batch", action="store_true",
                        help="fail unless the hookless cells ran the "
                             "vectorized batch tier bit-identically at "
                             ">= 2x over REPRO_KERNEL=scalar (CI "
                             "kernel-parity gate)")
    parser.add_argument("--require-segmented", action="store_true",
                        help="fail unless the hooked bop/tpc cells ran "
                             "the segmented tier bit-identically at "
                             ">= 1.5x aggregate over REPRO_KERNEL="
                             "scalar (CI kernel-parity gate)")
    args = parser.parse_args(argv)
    log = get_logger("bench")

    if args.chaos:
        report = run_chaos_bench(quick=args.quick, jobs=args.jobs,
                                 progress=log.info)
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        append_bench_log({"kind": "bench-chaos", "output": args.output,
                          "report": report})
        log.info(f"wrote {args.output}")
        print(json.dumps(report, indent=2, sort_keys=True))
        if not report["ok"]:
            log.error("FAIL: chaos gate — degraded or resume pass did not "
                      "reproduce the clean-serial figures (see report)")
            return 1
        return 0

    if args.fuzz:
        report = run_fuzz_bench(seeds=args.fuzz_seeds, progress=log.info)
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        append_bench_log({"kind": "bench-fuzz", "output": args.output,
                          "report": report})
        log.info(f"wrote {args.output}")
        print(json.dumps({k: v for k, v in report.items()
                          if k != "per_workload"},
                         indent=2, sort_keys=True))
        if not report["ok"]:
            log.error(f"FAIL: fuzz identity gate — "
                      f"{len(report['violations'])} violation(s) across "
                      f"tiers (see report)")
            return 1
        return 0

    report = run_bench(quick=args.quick, jobs=args.jobs,
                       progress=log.info)
    error = None
    if args.require_specialized:
        if report["kernels"]["generic_cells"]:
            error = (
                "generic fallback selected for standard cells: "
                + ", ".join(report["kernels"]["generic_cells"])
            )
        elif not report["kernels"]["identical"]:
            error = ("specialized kernels are not bit-identical to the "
                     "generic loop")
    if args.require_batch and error is None:
        batch = report["kernels"]["batch"]
        if not batch["cells"]:
            error = ("no matrix cell selected the batch tier "
                     f"({batch['variant']}) — hookless cells missing "
                     "or fell back to scalar")
        elif not batch["identical"]:
            error = ("batch tier is not bit-identical to the scalar "
                     "kernels (REPRO_KERNEL=scalar)")
        elif batch["speedup_vs_scalar"] < 2.0:
            error = (f"batch tier below the 2x target: "
                     f"{batch['speedup_vs_scalar']}x vs scalar")
    if args.require_segmented and error is None:
        segmented = report["kernels"]["segmented"]
        broken = sorted(cell for cell, fig in segmented["per_cell"].items()
                        if not fig["identical"])
        if not segmented["cells"]:
            error = ("no matrix cell selected the segmented tier — "
                     "hooked bop/tpc cells missing or fell back to "
                     "scalar")
        elif broken:
            error = ("segmented tier is not bit-identical to the "
                     "scalar kernels (REPRO_KERNEL=scalar) on: "
                     + ", ".join(broken))
        elif segmented["speedup_vs_scalar"] < 1.5:
            error = (f"segmented tier below the 1.5x aggregate target: "
                     f"{segmented['speedup_vs_scalar']}x vs scalar")
    if args.check and error is None:
        error = check_regression(report, args.check, args.tolerance)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    append_bench_log({"kind": "bench", "output": args.output,
                      "report": report})
    log.info(f"wrote {args.output}")
    print(json.dumps(report, indent=2, sort_keys=True))
    if error:
        log.error(f"FAIL: {error}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
