"""P1 — the pointer component (paper Sec. IV-B, Fig. 4).

P1 targets two pointer patterns with timely prefetches:

**Array of pointers** (Sec. IV-B-1): a load *j* whose address is the
*value* of a strided load *i* plus a constant offset.  Detection arms the
taint propagation unit on a candidate trigger *i*; tainted loads found in
one loop iteration are verified over the following iterations (the
``addr_j - value_i`` delta must stay constant for 4 instances).  In steady
state, when *i* executes, P1 picks up the value of *i*'s stream
``lookahead`` iterations ahead (in hardware: snooped from the doubled-
distance stride prefetch fill; here: read from the memory image, see
DESIGN.md) and prefetches that value plus the offset.

**Pointer chains** (Sec. IV-B-2): a load *i* whose address register
transitively depends on its own previous destination.  The chain FSM keeps
a *frontier* — the predicted trigger address ``depth`` iterations ahead —
and advances it one link per trigger execution (two during catch-up,
reflecting the serialized nature of chain prefetches).  A correction
mechanism compares recent predictions against actual trigger addresses and
resets the frontier after ``miss_timeout`` consecutive disagreements
(the paper's anti-pollution timeout).

Table II configuration: 1-entry PtrPC (one taint walk at a time),
8-entry SIT, 64-bit TPU, 1 KB of state bits; 1.07 KB total.
"""

from __future__ import annotations

from collections import deque

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest
from repro.core.sit import StrideIdentifierTable
from repro.core.taint import TaintUnit

_VERIFY_THRESHOLD = 4    # consecutive constant deltas to confirm a pattern
_MAX_WALKS = 12          # taint walks before giving up on a trigger
_WORD_MASK = ~7


class _PairTracker:
    """Verifies one (trigger, dependent) array-of-pointers candidate."""

    __slots__ = ("delta", "count")

    def __init__(self) -> None:
        self.delta: int | None = None
        self.count = 0

    def observe(self, delta: int) -> None:
        if delta == self.delta:
            self.count += 1
        else:
            self.delta = delta
            self.count = 1

    @property
    def confirmed(self) -> bool:
        return self.count >= _VERIFY_THRESHOLD


class _ChainState:
    """Steady-state FSM for one confirmed pointer chain.

    ``next_hop_ready`` enforces the serialization the paper describes:
    "the FSM can only issue the next prefetch after the previous prefetch
    returns the value."  A hop to a line the FSM already requested is free
    (the pointer arrived with that fill); a hop to a new line must wait
    one memory round trip.
    """

    __slots__ = ("offset", "frontier", "depth", "recent", "miss_streak",
                 "next_hop_ready", "requested_lines")

    def __init__(self, offset: int) -> None:
        self.offset = offset
        self.frontier: int | None = None
        self.depth = 0
        self.recent: deque[int] = deque(maxlen=16)
        self.miss_streak = 0
        self.next_hop_ready = 0
        self.requested_lines: deque[int] = deque(maxlen=32)

    def reset_frontier(self) -> None:
        self.frontier = None
        self.depth = 0
        self.recent.clear()
        self.miss_streak = 0
        self.next_hop_ready = 0
        self.requested_lines.clear()


class P1Prefetcher(Prefetcher):
    name = "p1"
    component_tag = "P1"
    needs_instruction_stream = True
    wants_memory_image = True
    always_observe = True

    def __init__(self, sit_entries: int = 8, lookahead: int = 8,
                 chain_depth: int = 4, miss_timeout: int = 8,
                 target_level: int = 1) -> None:
        self.lookahead = lookahead
        self.chain_depth = chain_depth
        self.miss_timeout = miss_timeout
        self.target_level = target_level
        self.sit = StrideIdentifierTable(sit_entries)
        self.taint = TaintUnit()
        self._memory: dict[int, int] = {}
        # Detection state.
        self._candidates: dict[int, int] = {}    # pc -> primary-miss count
        self._resolved: set[int] = set()
        self._walks = 0
        self._last_trigger_value: dict[int, int] = {}
        # pc of trigger -> {dependent pc -> tracker}
        self._aop_verify: dict[int, dict[int, _PairTracker]] = {}
        self._chain_verify: dict[int, _PairTracker] = {}
        # Confirmed patterns.
        self._aop_pairs: dict[int, list[tuple[int, int]]] = {}
        self._chains: dict[int, _ChainState] = {}
        self.pointer_trigger_pcs: set[int] = set()
        self._rtt = 150.0  # memory round-trip estimate for hop serialization

    def reset(self) -> None:
        self.sit.reset()
        self.taint.reset()
        self._memory = {}
        self._candidates = {}
        self._resolved = set()
        self._walks = 0
        self._last_trigger_value = {}
        self._aop_verify = {}
        self._chain_verify = {}
        self._aop_pairs = {}
        self._chains = {}
        self.pointer_trigger_pcs = set()
        self._rtt = 150.0

    def set_memory(self, memory: dict[int, int]) -> None:
        self._memory = memory

    # ------------------------------------------------------------------
    def claims(self, pc: int) -> bool:
        if pc in self._aop_pairs or pc in self._chains:
            return True
        for pairs in self._aop_pairs.values():
            for dependent_pc, _ in pairs:
                if dependent_pc == pc:
                    return True
        return False

    # ------------------------------------------------------------------
    # Detection: taint walks over the instruction stream
    # ------------------------------------------------------------------
    def observe_instruction(self, record, cycle: int) -> None:
        if self.taint.trigger_pc is None:
            return
        completed = self.taint.observe(record)
        if not completed:
            return
        trigger = self.taint.trigger_pc
        self._walks += 1
        if self.taint.trigger_self_dependent and trigger not in self._chains:
            self._chain_verify.setdefault(trigger, _PairTracker())
        verify = self._aop_verify.setdefault(trigger, {})
        for load_pc in self.taint.completed_loads:
            if load_pc != trigger and load_pc not in verify:
                verify[load_pc] = _PairTracker()
        if self._walks >= _MAX_WALKS:
            self._finish_walks(trigger)

    def _finish_walks(self, trigger: int) -> None:
        """Give up on an unproductive trigger and move to the next one."""
        if trigger not in self._aop_pairs and trigger not in self._chains:
            self._resolved.add(trigger)
        self._aop_verify.pop(trigger, None)
        self._chain_verify.pop(trigger, None)
        self.taint.trigger_pc = None
        self._walks = 0
        self._select_trigger()

    def _select_trigger(self) -> None:
        """Arm the TPU on the hottest unresolved recurring-miss load."""
        best_pc = None
        best_count = 1  # require at least 2 primary misses
        for pc, count in self._candidates.items():
            if pc in self._resolved or pc in self._aop_pairs or \
                    pc in self._chains:
                continue
            if count > best_count:
                best_count = count
                best_pc = pc
        if best_pc is not None:
            self._walks = 0
            self.taint.arm(best_pc)

    # ------------------------------------------------------------------
    # Access stream
    # ------------------------------------------------------------------
    def on_access(self, event: AccessEvent):
        if not event.is_load:
            return None
        pc = event.pc

        # Candidate discovery: recurring slow loads.  A chain load often
        # merges into an in-flight miss of a sibling field on the same
        # line (never a *primary* miss), so high observed latency also
        # qualifies.
        slow = event.primary_miss or event.latency >= 16
        if slow and pc not in self._resolved:
            self._candidates[pc] = self._candidates.get(pc, 0) + 1
            if self.taint.trigger_pc is None:
                self._select_trigger()

        # Track stride state for every interesting load (trigger streams).
        entry = self.sit.get(event.mpc)
        if entry is None and (
            pc == self.taint.trigger_pc or pc in self._aop_pairs
        ):
            entry = self.sit.allocate(event.mpc, event.addr)
        elif entry is not None:
            entry.observe(event.addr)

        if pc == self.taint.trigger_pc:
            self._verify_trigger(event)
        self._check_dependent(event)

        # The request list is allocated only on the (rare) paths that can
        # actually prefetch; most loads return without touching it.
        requests: list[PrefetchRequest] | None = None

        pairs = self._aop_pairs.get(pc)
        if pairs is not None and entry is not None:
            requests = []
            self._aop_prefetch(event, entry, pairs, requests)

        chain = self._chains.get(pc)
        if chain is not None:
            if requests is None:
                requests = []
            self._chain_prefetch(event, chain, requests)

        return requests or None

    # ------------------------------------------------------------------
    def _verify_trigger(self, event: AccessEvent) -> None:
        """Per-iteration verification of the armed trigger's candidates."""
        pc = event.pc
        previous_value = self._last_trigger_value.get(pc)
        self._last_trigger_value[pc] = event.value

        # Pointer-chain check: addr_n - value_{n-1} constant?
        tracker = self._chain_verify.get(pc)
        if tracker is not None and previous_value is not None and \
                previous_value != 0:
            tracker.observe(event.addr - previous_value)
            if tracker.confirmed:
                self._chains[pc] = _ChainState(tracker.delta)
                self.pointer_trigger_pcs.add(pc)
                self._chain_verify.pop(pc, None)
                self._disarm(pc)
                return

        # Array-of-pointers check for each tainted dependent load happens
        # in the dependent's own access (it needs addr_j); here we only
        # refresh value_i.  Dependent verification is driven below.

    def _disarm(self, pc: int) -> None:
        self._aop_verify.pop(pc, None)
        self.taint.trigger_pc = None
        self._walks = 0
        self._select_trigger()

    def _check_dependent(self, event: AccessEvent) -> None:
        """Called for loads that are under AoP verification."""
        if not self._aop_verify:
            return
        for trigger_pc, verify in list(self._aop_verify.items()):
            tracker = verify.get(event.pc)
            if tracker is None:
                continue
            trigger_value = self._last_trigger_value.get(trigger_pc)
            if trigger_value is None or trigger_value == 0:
                continue
            tracker.observe(event.addr - trigger_value)
            if tracker.confirmed:
                pairs = self._aop_pairs.setdefault(trigger_pc, [])
                pairs.append((event.pc, tracker.delta))
                self.pointer_trigger_pcs.add(trigger_pc)
                verify.pop(event.pc, None)
                if trigger_pc == self.taint.trigger_pc:
                    self._disarm(trigger_pc)
                return

    # ------------------------------------------------------------------
    def _aop_prefetch(self, event: AccessEvent, entry, pairs,
                      requests: list[PrefetchRequest]) -> None:
        """Steady-state array-of-pointers prefetching."""
        if not entry.stable or entry.delta == 0:
            return
        future_addr = event.addr + self.lookahead * entry.delta
        if future_addr < 0:
            return
        future_value = self._memory.get(future_addr & _WORD_MASK)
        if not future_value:
            return
        for _, offset in pairs:
            target = future_value + offset
            if target >= 0:
                requests.append(
                    PrefetchRequest(target >> 6, self.target_level, "P1")
                )

    def _chain_prefetch(self, event: AccessEvent, chain: _ChainState,
                        requests: list[PrefetchRequest]) -> None:
        """Steady-state pointer-chain prefetching with correction."""
        # Correction: did we predict this address?
        if chain.recent:
            if event.addr in chain.recent:
                chain.recent.remove(event.addr)
                chain.miss_streak = 0
            else:
                chain.miss_streak += 1
                if chain.miss_streak > self.miss_timeout:
                    chain.reset_frontier()

        # Track the memory round-trip time for hop serialization.
        if event.latency >= 16:
            self._rtt += 0.2 * (event.latency - self._rtt)

        if chain.frontier is None:
            if event.value == 0:
                return  # end of list
            chain.frontier = event.value + chain.offset
            chain.depth = 1
            if chain.frontier >= 0:
                line = chain.frontier >> 6
                chain.recent.append(chain.frontier)
                chain.requested_lines.append(line)
                chain.next_hop_ready = event.cycle + int(self._rtt)
                requests.append(
                    PrefetchRequest(line, self.target_level, "P1")
                )
            return

        # The trigger advanced one node: the frontier is now one less deep.
        if chain.depth > 0:
            chain.depth -= 1
        hops = 2 if chain.depth < self.chain_depth else 1
        now = event.cycle
        for _ in range(hops):
            if chain.depth >= self.chain_depth:
                break
            next_value = self._memory.get(chain.frontier & _WORD_MASK, 0)
            if next_value == 0:
                break  # null link: end of chain
            next_frontier = next_value + chain.offset
            if next_frontier < 0:
                break
            line = next_frontier >> 6
            if line in chain.requested_lines:
                # The pointer arrived with an earlier fill: free hop.
                pass
            elif now >= chain.next_hop_ready:
                # Previous prefetch has returned; this hop costs one RTT.
                chain.next_hop_ready = now + int(self._rtt)
            else:
                break  # still waiting on the previous fill
            chain.frontier = next_frontier
            chain.depth += 1
            chain.recent.append(next_frontier)
            if line not in chain.requested_lines:
                chain.requested_lines.append(line)
                requests.append(
                    PrefetchRequest(line, self.target_level, "P1")
                )

    @property
    def storage_bits(self) -> int:
        # Table II: 1 PtrPC (32b) + 8-entry SIT + TPU (64b) + 1 KB state.
        sit_bits = self.sit.entries * (32 + 58 + 16 + 10 + 17)
        return 32 + sit_bits + 64 + 1024 * 8
