"""T2's loop hardware (paper Sec. IV-A-1, Fig. 3-a).

The loop hardware identifies *inner* loops by watching for back-to-back
instances of the same backward branch:

* a single **loop-branch register** (LR) holds the PC and target of the
  most recent backward branch candidate;
* when a newly encountered backward branch matches the LR, the loop is
  identified and each subsequent match marks an iteration boundary;
* backward branches that repeatedly displace the LR without ever matching
  are remembered in the **non-loop PC table** (NLPCT) and skipped, which
  shortens the time to lock onto a stable loop.

Besides the loop identity, the hardware tracks the average execution time
per iteration (``T_iter``), which T2's prefetch-distance formula
``d = (AMAT + m) / T_iter`` consumes.
"""

from __future__ import annotations


class LoopDetector:
    """Loop-branch register + NLPCT + iteration timing."""

    def __init__(self, nlpct_entries: int = 16,
                 nlpct_strike_limit: int = 2,
                 ewma_weight: float = 0.25) -> None:
        self.nlpct_entries = nlpct_entries
        self.nlpct_strike_limit = nlpct_strike_limit
        self.ewma_weight = ewma_weight
        self._lr_pc: int | None = None
        self._lr_target: int | None = None
        self._lr_confirmed = False
        self._nlpct: dict[int, None] = {}
        self._strikes: dict[int, int] = {}
        self._last_iteration_cycle: int | None = None
        self._iteration_time: float = 0.0
        self._iteration_time_fast: float = 0.0
        self.loop_pc: int | None = None
        self.iterations = 0

    def reset(self) -> None:
        self.__init__(self.nlpct_entries, self.nlpct_strike_limit,
                      self.ewma_weight)

    # ------------------------------------------------------------------
    @property
    def in_loop(self) -> bool:
        """True once a loop branch has been confirmed and is still live."""
        return self.loop_pc is not None

    @property
    def iteration_time(self) -> float:
        """Cycles per iteration of the current loop (0 if unknown).

        This is the *fast* (near-minimum) estimate: memory stalls inflate
        the average iteration time, and a prefetch distance computed from
        the stalled pace under-provisions for the pace the loop reaches
        once prefetching works.  The estimate drifts upward slowly so
        phase changes are still tracked.
        """
        return self._iteration_time_fast if self.in_loop else 0.0

    @property
    def average_iteration_time(self) -> float:
        """Plain EWMA of cycles per iteration (diagnostics)."""
        return self._iteration_time if self.in_loop else 0.0

    def is_non_loop(self, pc: int) -> bool:
        return pc in self._nlpct

    # ------------------------------------------------------------------
    def observe_backward_branch(self, pc: int, target_pc: int,
                                cycle: int) -> bool:
        """Feed one *taken backward* branch; returns True at an iteration
        boundary of the identified loop."""
        if pc in self._nlpct:
            return False

        if self._lr_pc == pc and self._lr_target == target_pc:
            # Back-to-back instance: the loop is identified.
            self._lr_confirmed = True
            self.loop_pc = pc
            self._strikes.pop(pc, None)
            if self._last_iteration_cycle is not None:
                delta = cycle - self._last_iteration_cycle
                if self._iteration_time == 0.0:
                    self._iteration_time = float(delta)
                else:
                    w = self.ewma_weight
                    self._iteration_time += w * (delta - self._iteration_time)
                fast = self._iteration_time_fast
                if fast == 0.0 or delta <= fast:
                    self._iteration_time_fast = float(delta)
                else:
                    self._iteration_time_fast += 0.02 * (delta - fast)
            self._last_iteration_cycle = cycle
            self.iterations += 1
            return True

        # A different backward branch displaces the LR.
        if self._lr_pc is not None and not self._lr_confirmed:
            strikes = self._strikes.get(self._lr_pc, 0) + 1
            if strikes >= self.nlpct_strike_limit:
                self._insert_nlpct(self._lr_pc)
                self._strikes.pop(self._lr_pc, None)
            else:
                self._strikes[self._lr_pc] = strikes
        if self._lr_pc is not None and self._lr_confirmed:
            # Leaving a confirmed loop: clear loop context.
            self.loop_pc = None
            self._iteration_time = 0.0
        self._lr_pc = pc
        self._lr_target = target_pc
        self._lr_confirmed = False
        self._last_iteration_cycle = cycle
        return False

    def _insert_nlpct(self, pc: int) -> None:
        if len(self._nlpct) >= self.nlpct_entries:
            self._nlpct.pop(next(iter(self._nlpct)))
        self._nlpct[pc] = None

    @property
    def storage_bits(self) -> int:
        # LR (2 x 32b) + NLPCT (16 x 32b PC) per Table II's "LH" budget.
        return 64 + self.nlpct_entries * 32
