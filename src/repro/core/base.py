"""Prefetcher component protocol.

Every prefetcher — the paper's T2/P1/C1 components, the composite, and the
monolithic baselines — implements the same small interface so the timing
engine, the coordinator, and the experiment harness can treat them
uniformly:

``observe_instruction(record, cycle)``
    Called for every retired instruction when
    ``needs_instruction_stream`` is true.  This is how T2's loop hardware
    sees branches and how P1's taint unit sees register dataflow.  The
    monolithic baselines leave it off — they only watch the memory access
    stream, as their hardware does.

``on_access(event)``
    Called for every demand L1D access with its outcome; returns the
    prefetch requests to issue (or ``None``).

``on_fill(line, level)``
    Fill notification (BOP trains its recent-requests table on fills).

Components additionally report ``storage_bits`` for Table II and may
``claims(pc)`` a static instruction so the coordinator can divide labor.
"""

from __future__ import annotations

from repro.isa.trace import TraceRecord


class PrefetchRequest:
    """One line the prefetcher wants, and where to put it."""

    __slots__ = ("line", "target_level", "component")

    def __init__(self, line: int, target_level: int = 1,
                 component: str | None = None) -> None:
        self.line = line
        self.target_level = target_level
        self.component = component

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrefetchRequest(line={self.line:#x}, L{self.target_level}, "
            f"{self.component})"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PrefetchRequest)
            and self.line == other.line
            and self.target_level == other.target_level
            and self.component == other.component
        )

    def __hash__(self) -> int:
        return hash((self.line, self.target_level, self.component))


class AccessEvent:
    """A demand L1D access as seen by the prefetcher.

    ``mpc`` is the call-site-disambiguated PC (``pc ^ ras_top``) that T2's
    SIT is indexed with; ``latency`` is the observed load-to-use latency in
    cycles (T2's AMAT input); ``value`` is the loaded word (P1's pointer
    patterns); ``primary_miss`` distinguishes the miss that activates T2
    tracking from ordinary hits.
    """

    __slots__ = (
        "cycle",
        "pc",
        "mpc",
        "addr",
        "line",
        "is_load",
        "hit",
        "primary_miss",
        "served_by_prefetch",
        "serving_component",
        "latency",
        "value",
        "dst",
    )

    def __init__(self, cycle: int, pc: int, mpc: int, addr: int, line: int,
                 is_load: bool, hit: bool, primary_miss: bool,
                 latency: int, value: int, dst: int,
                 served_by_prefetch: bool = False,
                 serving_component: str | None = None) -> None:
        self.cycle = cycle
        self.pc = pc
        self.mpc = mpc
        self.addr = addr
        self.line = line
        self.is_load = is_load
        self.hit = hit
        self.primary_miss = primary_miss
        self.served_by_prefetch = served_by_prefetch
        self.serving_component = serving_component
        self.latency = latency
        self.value = value
        self.dst = dst


class Prefetcher:
    """Base class; the default implementation never prefetches."""

    name = "none"
    needs_instruction_stream = False
    wants_memory_image = False
    always_observe = False
    """Composite routing: when True, this component keeps observing
    accesses even after a higher-priority component claimed the
    instruction.  T2 and P1 share stride knowledge this way (the paper's
    "expanded SIT"): P1 must see the strided trigger's values although T2
    owns its stride prefetching."""

    def set_memory(self, memory: dict[int, int]) -> None:
        """Give the prefetcher read access to the data image.

        Pointer prefetchers dereference memory: in hardware the value
        arrives with the prefetched line itself; in this trace-driven model
        the engine hands the prefetcher the program's memory image instead
        (see DESIGN.md fidelity notes).
        """

    def observe_instruction(self, record: TraceRecord, cycle: int) -> None:
        """See one retired instruction (loop/taint hardware hook)."""

    def observe_access(self, event: AccessEvent) -> None:
        """Passive monitoring of *every* demand access.

        Unlike :meth:`on_access`, this fires even for accesses the
        coordinator routed to another component — e.g. C1's region monitor
        tracks spatial density of all accesses (paper: "on every cache
        access ... the corresponding bit is set") although C1 only
        *handles* unclaimed instructions.
        """

    def on_access(self, event: AccessEvent) -> list[PrefetchRequest] | None:
        """See one demand access; return prefetch requests (or ``None``)."""
        return None

    def on_fill(self, line: int, level: int,
                prefetched: bool = False) -> None:
        """A fill completed at ``level``.

        ``prefetched`` distinguishes prefetch completions (BOP inserts
        ``line - D`` into its recent-requests table on those) from demand
        fills.
        """

    def on_prefetch_hit(self, line: int, level: int) -> None:
        """A demand access first-used a line this prefetcher brought in.

        Feedback-driven designs (FDP's accuracy counters, BOP's
        prefetch-hit training) rely on this notification; real hardware
        gets it from the prefetch bit in the cache line.
        """

    def claims(self, pc: int) -> bool:
        """True if this component has taken ownership of instruction ``pc``.

        Used by the coordinator for division of labor: accesses from a
        claimed PC are not offered to lower-priority components.
        """
        return False

    @property
    def component_tag(self) -> str:
        """The tag this prefetcher stamps on its requests.

        T2/P1/C1 tag requests with "T2"/"P1"/"C1" while their registry
        names are lowercase; telemetry joins events by this tag, so it
        must match ``PrefetchRequest.component``.  Defaults to ``name``.
        """
        return self.name

    @property
    def storage_bits(self) -> int:
        """Hardware storage cost in bits (Table II)."""
        return 0

    def reset(self) -> None:
        """Clear learned state (fresh run)."""


class NullPrefetcher(Prefetcher):
    """Explicit no-prefetch baseline."""

    name = "none"
