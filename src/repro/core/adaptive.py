"""Adaptive coordinator: the paper's Sec. IV-D conjectures, implemented.

The hardwired coordinator (T2 -> P1 -> C1) relies on each component
recognizing "the boundary of its expertise".  Sec. IV-D conjectures a
more general design:

* *"Expertise can be measured"* — even with overlapping expertise we can
  measure each component's effective accuracy and pick the best
  performing component for each pattern.
* *"Patterns are tied to static instructions"* — accuracy can be
  characterized per static instruction, so division of labor can be
  established empirically per PC.

:class:`AdaptiveCoordinator` does both: per static instruction it tracks
which component's prefetched lines actually serve the instruction's
demand accesses (the measurable signal hardware has: the component tag on
the hit line) and how often the instruction still misses.  Ownership of a
PC starts at the static priority order but is *reassigned* to the
component that demonstrably covers it, and an owner that keeps missing is
demoted so the next candidate gets an audition.
"""

from __future__ import annotations

from collections import Counter

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest


class _PcState:
    """Measurement record for one static instruction."""

    __slots__ = ("owner", "accesses", "misses", "served_by", "auditions")

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self.accesses = 0
        self.misses = 0
        self.served_by: Counter = Counter()
        self.auditions = 0

    def reset_window(self) -> None:
        self.accesses = 0
        self.misses = 0
        self.served_by.clear()


class AdaptiveCoordinator:
    """Measured-expertise coordinator (drop-in for
    :class:`~repro.core.coordinator.Coordinator`)."""

    def __init__(self, components: list[Prefetcher],
                 extras: list[Prefetcher] | None = None,
                 window: int = 64,
                 miss_tolerance: float = 0.3) -> None:
        self.components = components
        self.extras = list(extras) if extras else []
        self.engines: list[Prefetcher] = components + self.extras
        self.window = window
        self.miss_tolerance = miss_tolerance
        self._pc_state: dict[int, _PcState] = {}
        self._name_to_index = {
            engine.name: i for i, engine in enumerate(self.engines)
        }
        # Component request tags -> engine index ("T2" tag vs "t2" name).
        for i, engine in enumerate(self.engines):
            self._name_to_index.setdefault(engine.name.upper(), i)

    def reset(self) -> None:
        self._pc_state.clear()

    # ------------------------------------------------------------------
    def _state_for(self, pc: int) -> _PcState:
        state = self._pc_state.get(pc)
        if state is None:
            state = self._pc_state[pc] = _PcState(owner=0)
        return state

    def _evaluate(self, state: _PcState) -> None:
        """End of a measurement window: possibly reassign ownership."""
        state.auditions += 1
        if state.served_by:
            # The component whose lines actually serve this PC wins it.
            best_tag, _ = state.served_by.most_common(1)[0]
            best = self._name_to_index.get(best_tag)
            if best is not None and best != state.owner:
                state.owner = best
                state.reset_window()
                return
        if state.accesses and (
            state.misses / state.accesses > self.miss_tolerance
        ):
            # Owner is not covering this instruction: audition the next.
            state.owner = (state.owner + 1) % len(self.engines)
        state.reset_window()

    # ------------------------------------------------------------------
    def route(self, event: AccessEvent) -> list[PrefetchRequest] | None:
        state = self._state_for(event.pc)
        state.accesses += 1
        if event.primary_miss:
            state.misses += 1
        if event.served_by_prefetch and event.serving_component:
            state.served_by[event.serving_component] += 1
        if state.accesses >= self.window:
            self._evaluate(state)

        requests: list[PrefetchRequest] = []
        owner = state.owner
        for index, engine in enumerate(self.engines):
            if index != owner and not engine.always_observe:
                continue
            result = engine.on_access(event)
            if result and (index == owner or engine.always_observe):
                requests.extend(result)
        return requests or None

    def claims(self, pc: int) -> bool:
        state = self._pc_state.get(pc)
        if state is None:
            return False
        return self.engines[state.owner].claims(pc)

    def owner_of(self, pc: int) -> str | None:
        """Diagnostics: current owning component name for a PC."""
        state = self._pc_state.get(pc)
        if state is None:
            return None
        return self.engines[state.owner].name

    @property
    def storage_bits(self) -> int:
        # Per-PC state is bounded by the I-cache footprint in hardware;
        # budget ~2 KB of counters (comparable to T2's state bits).
        return 2048 * 8


def make_adaptive_tpc(extras: list[Prefetcher] | None = None,
                      window: int = 64,
                      name: str = "tpc-adaptive"):
    """TPC with the measured-expertise coordinator."""
    from repro.core.composite import CompositePrefetcher, make_tpc

    base = make_tpc(extras=extras)
    composite = CompositePrefetcher(base.components, extras=base.extras,
                                    name=name)
    composite.coordinator = AdaptiveCoordinator(
        base.components, base.extras, window=window
    )
    return composite
