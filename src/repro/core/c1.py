"""C1 — the high-spatial-locality ("carpet bombing") component (paper
Sec. IV-C, Fig. 6).

A *region* is a super cache line of 16 consecutive lines (1 KB).  Two
structures cooperate:

**Region Monitor (RM)** — 16 entries, each tracking one region with a
16-bit cache-line vector (which lines were touched) and a 16-bit
instruction vector (which monitored instructions touched the region).

**Instruction Monitor (IM)** — 16 entries, one per candidate instruction,
with ``TotalRegions``/``DenseRegions`` counters.  Entries are never
evicted; they leave only when a decision is made: after ``decide_after``
(4) regions, an instruction whose dense fraction is at least
``dense_probability`` (3/4) is marked a *dense* instruction.

When a marked instruction executes, C1 prefetches the entire surrounding
region.  Accuracy is inherently lower than T2/P1, so the coordinator
targets C1's prefetches at L2 (paper Sec. IV-D).
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest

REGION_LINES = 16
REGION_SHIFT = 4             # log2(REGION_LINES); line addrs are >= 0, so
REGION_MASK = REGION_LINES - 1  # shift/mask == floor-div/mod on this path
DENSE_LINE_THRESHOLD = 6     # "more than six bits set" => dense
DECIDE_AFTER = 4             # regions before deciding an instruction
DENSE_PROBABILITY = 0.75     # paper: > 3/4 dense probability


class _RegionEntry:
    __slots__ = ("region", "line_vector", "instruction_vector", "lru")

    def __init__(self, region: int, lru: int) -> None:
        self.region = region
        self.line_vector = 0
        self.instruction_vector = 0
        self.lru = lru


class _InstructionEntry:
    __slots__ = ("pc", "total_regions", "dense_regions")

    def __init__(self, pc: int) -> None:
        self.pc = pc
        self.total_regions = 0
        self.dense_regions = 0


class C1Prefetcher(Prefetcher):
    name = "c1"
    component_tag = "C1"

    def __init__(self, rm_entries: int = 16, im_entries: int = 16,
                 dense_line_threshold: int = DENSE_LINE_THRESHOLD,
                 decide_after: int = DECIDE_AFTER,
                 dense_probability: float = DENSE_PROBABILITY,
                 target_level: int = 2,
                 recent_regions: int = 32) -> None:
        self.rm_entries = rm_entries
        self.im_entries = im_entries
        self.dense_line_threshold = dense_line_threshold
        self.decide_after = decide_after
        self.dense_probability = dense_probability
        self.target_level = target_level
        self.recent_regions = recent_regions
        self._rm: dict[int, _RegionEntry] = {}
        self._im: list[_InstructionEntry | None] = [None] * im_entries
        self._im_index: dict[int, int] = {}      # pc -> IM slot
        self._decided_dense: set[int] = set()
        self._decided_sparse: set[int] = set()
        self._recent: dict[int, None] = {}       # regions recently prefetched
        self._clock = 0

    def reset(self) -> None:
        self._rm.clear()
        self._im = [None] * self.im_entries
        self._im_index.clear()
        self._decided_dense.clear()
        self._decided_sparse.clear()
        self._recent.clear()
        self._clock = 0

    # ------------------------------------------------------------------
    def claims(self, pc: int) -> bool:
        return pc in self._decided_dense

    @property
    def dense_pcs(self) -> frozenset[int]:
        return frozenset(self._decided_dense)

    # ------------------------------------------------------------------
    def _monitor_instruction(self, pc: int) -> int | None:
        """IM slot of ``pc``, allocating one if free; None if IM is full."""
        slot = self._im_index.get(pc)
        if slot is not None:
            return slot
        for i, entry in enumerate(self._im):
            if entry is None:
                self._im[i] = _InstructionEntry(pc)
                self._im_index[pc] = i
                return i
        return None

    def _evict_region(self, entry: _RegionEntry) -> None:
        """Region leaves the RM: update every monitored instruction."""
        dense = entry.line_vector.bit_count() > self.dense_line_threshold
        vector = entry.instruction_vector
        for slot in range(self.im_entries):
            if not vector & (1 << slot):
                continue
            instruction = self._im[slot]
            if instruction is None:
                continue
            instruction.total_regions += 1
            if dense:
                instruction.dense_regions += 1
            if instruction.total_regions >= self.decide_after:
                self._decide(slot, instruction)

    def _decide(self, slot: int, instruction: _InstructionEntry) -> None:
        fraction = instruction.dense_regions / instruction.total_regions
        if fraction >= self.dense_probability:
            self._decided_dense.add(instruction.pc)
        else:
            self._decided_sparse.add(instruction.pc)
        self._im[slot] = None
        self._im_index.pop(instruction.pc, None)

    # ------------------------------------------------------------------
    def observe_access(self, event: AccessEvent) -> None:
        """Region monitoring sees *every* access (paper Sec. IV-C)."""
        self._clock += 1
        line = event.line
        region = line >> REGION_SHIFT
        offset = line & REGION_MASK
        entry = self._rm.get(region)
        if entry is None:
            if len(self._rm) >= self.rm_entries:
                # LRU region; explicit scan (first minimum, like
                # min(key=)) avoids a lambda call per tracked region.
                victim_region = None
                victim_lru = None
                for tracked, candidate in self._rm.items():
                    if victim_lru is None or candidate.lru < victim_lru:
                        victim_lru = candidate.lru
                        victim_region = tracked
                self._evict_region(self._rm.pop(victim_region))
            entry = _RegionEntry(region, self._clock)
            self._rm[region] = entry
        entry.line_vector |= 1 << offset
        entry.lru = self._clock

    def on_access(self, event: AccessEvent):
        pc = event.pc
        region = event.line >> REGION_SHIFT
        entry = self._rm.get(region)

        # Instruction monitoring: candidates are undecided instructions
        # that miss (C1 watches what the cache cannot already serve).
        if pc not in self._decided_dense and pc not in self._decided_sparse:
            if entry is None:
                return None
            if event.primary_miss:
                slot = self._monitor_instruction(pc)
                if slot is not None:
                    entry.instruction_vector |= 1 << slot
            elif pc in self._im_index:
                entry.instruction_vector |= 1 << self._im_index[pc]
            return None

        if pc not in self._decided_dense:
            return None

        # Dense instruction: carpet-bomb the region (once per region while
        # it stays in the recent-regions window).
        if region in self._recent:
            return None
        if len(self._recent) >= self.recent_regions:
            self._recent.pop(next(iter(self._recent)))
        self._recent[region] = None
        region_base = region << REGION_SHIFT
        return [
            PrefetchRequest(region_base + i, self.target_level, "C1")
            for i in range(REGION_LINES)
            if region_base + i != event.line
        ]

    @property
    def storage_bits(self) -> int:
        # Table II: 16-entry IM (640 b) + 16-entry RM (1248 b) + 1 KB state.
        rm_bits = self.rm_entries * (46 + REGION_LINES + self.im_entries)
        im_bits = self.im_entries * (32 + 4 + 4)
        return rm_bits + im_bits + 1024 * 8
