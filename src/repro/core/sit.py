"""Stride Identifier Table and per-instruction I-cache state bits
(paper Sec. IV-A-2, Fig. 3-b).

Each memory instruction is labeled with one of four states, conceptually
stored as two bits per instruction in the I-cache:

* ``UNKNOWN`` (0) — ignored until it triggers a primary L1 miss,
* ``OBSERVATION`` (1) — every instance updates its SIT entry,
* ``STRIDED`` (2) — confirmed canonical stream, prefetched,
* ``NON_STRIDED`` (3) — given up on.

The SIT itself has 32 entries (Table II), indexed by the
call-site-disambiguated ``mPC`` (PC xor RAS top) and tracking the last
address and the delta between consecutive instances.

The labeling criteria come straight from the paper: sixteen consecutive
instances of the same delta -> ``STRIDED``; four consecutive instances of
a *changing* delta -> ``NON_STRIDED``; prefetching already begins in
``OBSERVATION`` after four consecutive identical deltas.
"""

from __future__ import annotations

import enum


class InstructionState(enum.IntEnum):
    UNKNOWN = 0
    OBSERVATION = 1
    STRIDED = 2
    NON_STRIDED = 3


STRIDED_THRESHOLD = 16
"""Consecutive identical deltas to label an instruction STRIDED."""

NON_STRIDED_THRESHOLD = 4
"""Consecutive changing deltas to label an instruction NON_STRIDED."""

EARLY_ISSUE_THRESHOLD = 4
"""Consecutive identical deltas before prefetching starts in OBSERVATION."""


class SitEntry:
    """One tracked memory instruction."""

    __slots__ = ("mpc", "last_addr", "delta", "same_count", "diff_count",
                 "lru", "pointer_delta", "is_pointer", "run_estimate")

    def __init__(self, mpc: int, addr: int, lru: int) -> None:
        self.mpc = mpc
        self.last_addr = addr
        self.delta = 0
        self.same_count = 0
        self.diff_count = 0
        self.lru = lru
        # P1 extension (paper Sec. IV-B-1): a strided instruction whose
        # *value* feeds a dependent load's address keeps that constant
        # offset here.
        self.pointer_delta: int | None = None
        self.is_pointer = False
        # Learned typical run length of this stream (0 = unknown / long).
        # A stream that repeatedly breaks after N stable deltas (e.g. a
        # 16-line region sweep) teaches T2 not to prefetch past N.
        self.run_estimate = 0.0

    def observe(self, addr: int) -> int:
        """Update with a new instance; returns the observed delta."""
        delta = addr - self.last_addr
        self.last_addr = addr
        if delta == self.delta:
            self.same_count += 1
            self.diff_count = 0
        else:
            if self.same_count >= 4:
                # A proven run just ended: learn its length.
                if self.run_estimate == 0.0:
                    self.run_estimate = float(self.same_count)
                else:
                    self.run_estimate += 0.5 * (
                        self.same_count - self.run_estimate
                    )
            self.delta = delta
            self.same_count = 1
            self.diff_count += 1
        return delta

    @property
    def stable(self) -> bool:
        """Delta stable enough to begin (early) prefetching."""
        return self.delta != 0 and self.same_count >= EARLY_ISSUE_THRESHOLD


class StrideIdentifierTable:
    """Bounded SIT with LRU replacement, plus the I-cache state bits."""

    def __init__(self, entries: int = 32) -> None:
        self.entries = entries
        self._table: dict[int, SitEntry] = {}
        self._states: dict[int, InstructionState] = {}
        self._clock = 0

    def reset(self) -> None:
        self._table.clear()
        self._states.clear()
        self._clock = 0

    # ------------------------------------------------------------------
    # I-cache state bits
    # ------------------------------------------------------------------
    def state_of(self, pc: int) -> InstructionState:
        return self._states.get(pc, InstructionState.UNKNOWN)

    def set_state(self, pc: int, state: InstructionState) -> None:
        self._states[pc] = state

    # ------------------------------------------------------------------
    # SIT entries
    # ------------------------------------------------------------------
    def get(self, mpc: int) -> SitEntry | None:
        entry = self._table.get(mpc)
        if entry is not None:
            self._clock += 1
            entry.lru = self._clock
        return entry

    def allocate(self, mpc: int, addr: int) -> SitEntry:
        self._clock += 1
        entry = self._table.get(mpc)
        if entry is not None:
            entry.lru = self._clock
            return entry
        if len(self._table) >= self.entries:
            victim = min(self._table, key=lambda k: self._table[k].lru)
            del self._table[victim]
        entry = SitEntry(mpc, addr, self._clock)
        self._table[mpc] = entry
        return entry

    def drop(self, mpc: int) -> None:
        self._table.pop(mpc, None)

    def __len__(self) -> int:
        return len(self._table)

    @property
    def storage_bits(self) -> int:
        # 32 x (32b tag + 58b last addr + 16b delta + 2x5b counters + ptr).
        return self.entries * (32 + 58 + 16 + 10 + 17)
