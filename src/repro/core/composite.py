"""Composite prefetchers: TPC and friends (paper Sec. IV, Fig. 7).

:class:`CompositePrefetcher` glues components together through the
:class:`~repro.core.coordinator.Coordinator` (division of labor).
:class:`ShuntPrefetcher` is the paper's contrast configuration
(Sec. V-C3): the same components running *unaware of each other*, every
access offered to everyone, all requests issued.

``make_tpc()`` builds the paper's proof-of-concept composite:
T2 (strided streams, -> L1), P1 (pointer patterns, -> L1), and C1 (dense
regions, -> L2), with T2's prefetch distance doubled for P1's confirmed
strided-pointer triggers.  Extra monolithic components can be appended
with ``extras=[...]`` (Sec. IV-E / Fig. 14 / Fig. 15).
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest
from repro.core.c1 import C1Prefetcher
from repro.core.coordinator import Coordinator
from repro.core.p1 import P1Prefetcher
from repro.core.t2 import T2Prefetcher


class CompositePrefetcher(Prefetcher):
    """Division-of-labor composite of prefetcher components."""

    needs_instruction_stream = True
    wants_memory_image = True

    def __init__(self, components: list[Prefetcher],
                 extras: list[Prefetcher] | None = None,
                 name: str = "composite") -> None:
        self.name = name
        self.components = components
        self.extras = list(extras) if extras else []
        self.coordinator = Coordinator(components, self.extras)
        self._all = components + self.extras
        # Per-event hooks are forwarded only to components that actually
        # override them: most are the base no-op, and skipping them (plus
        # the list concat per event) is a measurable hot-loop win.
        base = Prefetcher
        self._instruction_feeds = [
            p.observe_instruction for p in self._all
            if p.needs_instruction_stream
            and type(p).observe_instruction is not base.observe_instruction
        ]
        self._access_observers = [
            p.observe_access for p in self._all
            if type(p).observe_access is not base.observe_access
        ]
        self._fill_hooks = [
            p.on_fill for p in self._all
            if type(p).on_fill is not base.on_fill
        ]
        self._prefetch_hit_hooks = [
            p.on_prefetch_hit for p in self._all
            if type(p).on_prefetch_hit is not base.on_prefetch_hit
        ]
        # When exactly one component consumes a hook, shadow the class
        # forwarder with the component's bound method directly; when none
        # does, shadow it with the base no-op so the core's hook binding
        # sees "nothing to call" and skips the event entirely.  The core
        # binds these once per simulation, so the per-event wrapper call
        # disappears (TPC: only C1 observes every access, and no
        # component consumes fills or prefetch hits).
        self._flatten(self._instruction_feeds, "observe_instruction")
        self._flatten(self._access_observers, "observe_access")
        self._flatten(self._fill_hooks, "on_fill")
        self._flatten(self._prefetch_hit_hooks, "on_prefetch_hit")

    def _flatten(self, hooks: list, attr: str) -> None:
        if len(hooks) == 1:
            setattr(self, attr, hooks[0])
        elif not hooks:
            setattr(self, attr, getattr(Prefetcher, attr).__get__(self))

    def reset(self) -> None:
        for prefetcher in self._all:
            prefetcher.reset()
        self.coordinator.reset()
        self._wire_components()

    def _wire_components(self) -> None:
        """Cross-component knowledge: T2 doubles the distance for P1's
        strided-pointer triggers (paper Sec. IV-B-1)."""
        t2 = next((c for c in self.components if isinstance(c, T2Prefetcher)),
                  None)
        p1 = next((c for c in self.components if isinstance(c, P1Prefetcher)),
                  None)
        if t2 is not None and p1 is not None:
            t2.boosted_pcs = p1.pointer_trigger_pcs

    def set_memory(self, memory: dict[int, int]) -> None:
        for prefetcher in self._all:
            if prefetcher.wants_memory_image:
                prefetcher.set_memory(memory)

    def observe_instruction(self, record, cycle: int) -> None:
        for observe in self._instruction_feeds:
            observe(record, cycle)

    def observe_access(self, event: AccessEvent) -> None:
        for observe in self._access_observers:
            observe(event)

    def on_access(self, event: AccessEvent):
        return self.coordinator.route(event)

    def on_fill(self, line: int, level: int,
                prefetched: bool = False) -> None:
        for hook in self._fill_hooks:
            hook(line, level, prefetched)

    def on_prefetch_hit(self, line: int, level: int) -> None:
        for hook in self._prefetch_hit_hooks:
            hook(line, level)

    def claims(self, pc: int) -> bool:
        return self.coordinator.claims(pc)

    @property
    def storage_bits(self) -> int:
        return sum(
            p.storage_bits for p in self._all
        ) + self.coordinator.storage_bits


class ShuntPrefetcher(Prefetcher):
    """Multiple prefetchers working in parallel, unaware of each other.

    The paper's Sec. V-C3 contrast: "they both increase prefetching scope,
    [but shunting] has overlapping efforts instead of a division of
    labor."  Every component sees every access and all requests are
    issued.
    """

    needs_instruction_stream = True
    wants_memory_image = True

    def __init__(self, prefetchers: list[Prefetcher],
                 name: str = "shunt") -> None:
        self.name = name
        self.prefetchers = prefetchers

    def reset(self) -> None:
        for prefetcher in self.prefetchers:
            prefetcher.reset()

    def set_memory(self, memory: dict[int, int]) -> None:
        for prefetcher in self.prefetchers:
            if prefetcher.wants_memory_image:
                prefetcher.set_memory(memory)

    def observe_instruction(self, record, cycle: int) -> None:
        for prefetcher in self.prefetchers:
            if prefetcher.needs_instruction_stream:
                prefetcher.observe_instruction(record, cycle)

    def observe_access(self, event: AccessEvent) -> None:
        for prefetcher in self.prefetchers:
            prefetcher.observe_access(event)

    def on_access(self, event: AccessEvent):
        requests: list[PrefetchRequest] = []
        for prefetcher in self.prefetchers:
            result = prefetcher.on_access(event)
            if result:
                requests.extend(result)
        return requests or None

    def on_fill(self, line: int, level: int,
                prefetched: bool = False) -> None:
        for prefetcher in self.prefetchers:
            prefetcher.on_fill(line, level, prefetched)

    def on_prefetch_hit(self, line: int, level: int) -> None:
        for prefetcher in self.prefetchers:
            prefetcher.on_prefetch_hit(line, level)

    @property
    def storage_bits(self) -> int:
        return sum(p.storage_bits for p in self.prefetchers)


def make_tpc(extras: list[Prefetcher] | None = None,
             t2_kwargs: dict | None = None,
             p1_kwargs: dict | None = None,
             c1_kwargs: dict | None = None,
             components: str = "tpc",
             boost_pointer_triggers: bool = True,
             name: str | None = None) -> CompositePrefetcher:
    """Build the paper's TPC composite (or a prefix of it).

    ``components`` selects which components to enable: ``"t"`` (T2 only),
    ``"tp"`` (T2+P1), or ``"tpc"`` (full TPC) — used by the Fig. 12
    incremental experiment.  ``boost_pointer_triggers=False`` disables the
    distance-doubling cross-wire (an ablation knob).
    """
    if components not in ("t", "tp", "tpc"):
        raise ValueError(f"components must be 't', 'tp', or 'tpc', "
                         f"got {components!r}")
    parts: list[Prefetcher] = [T2Prefetcher(**(t2_kwargs or {}))]
    if "p" in components:
        parts.append(P1Prefetcher(**(p1_kwargs or {})))
    if components.endswith("c"):
        parts.append(C1Prefetcher(**(c1_kwargs or {})))
    if name is None:
        name = "tpc" if components == "tpc" else components
        if extras:
            name += "+" + "+".join(p.name for p in extras)
    composite = CompositePrefetcher(parts, extras=extras, name=name)
    if not boost_pointer_triggers:
        composite._wire_components = lambda: None  # ablation: no cross-wire
    composite._wire_components()
    return composite


def make_shunt(extras: list[Prefetcher], name: str | None = None
               ) -> ShuntPrefetcher:
    """TPC shunted (not composited) with extra prefetchers (Fig. 15)."""
    tpc = make_tpc()
    if name is None:
        name = "shunt:tpc+" + "+".join(p.name for p in extras)
    return ShuntPrefetcher([tpc] + list(extras), name=name)
