"""The coordinator (paper Sec. IV-D and IV-E).

The coordinator is hardwired decision logic, not a learned structure: it
presents each memory instruction to the specialized components in priority
order (T2 first, then P1, then C1 — "since T2 targets more cases").  An
instruction *claimed* by a component is never offered further down, which
is the division of labor: each component only spends capacity on accesses
no higher-priority expert already owns.

Destination policy (Sec. IV-D): T2 and P1 prefetch into L1 (their accuracy
warrants it); C1 into L2.

Existing monolithic prefetchers can be appended as *extra* components
(Sec. IV-E).  They only see accesses from instructions none of T2/P1/C1
recognizes.  With several extras, ownership of a PC is assigned round-
robin; when a demand access hits a line some extra prefetched, that extra
takes over the PC ("use the component that brought in the line to handle
the instruction going forward").
"""

from __future__ import annotations

from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest
from repro.telemetry.events import TRAINED


class Coordinator:
    """Steers accesses among specialized components and extras."""

    def __init__(self, components: list[Prefetcher],
                 extras: list[Prefetcher] | None = None) -> None:
        self.components = components
        self.extras = list(extras) if extras else []
        self._extra_owner: dict[int, int] = {}   # pc -> index into extras
        self._round_robin = 0
        self._extra_names = {p.name: i for i, p in enumerate(self.extras)}
        # (on_access, claims, always_observe, component) per component,
        # bound once: route() runs for every memory instruction.
        self._dispatch = [
            (c.on_access, c.claims, c.always_observe, c)
            for c in components
        ]
        self.telemetry = None
        """Optional telemetry hub; when set, the first claim of a PC by a
        specialized component emits a ``trained`` lifecycle event."""
        self._trained_pcs: set[int] = set()

    def reset(self) -> None:
        self._extra_owner.clear()
        self._round_robin = 0
        self._trained_pcs.clear()

    # ------------------------------------------------------------------
    def route(self, event: AccessEvent) -> list[PrefetchRequest] | None:
        """Offer the access to components in priority order.

        A claim by a higher-priority component gates lower-priority ones —
        except components marked ``always_observe`` (T2 and P1 share
        stride/value knowledge through the access stream, the paper's
        "expanded SIT").
        """
        requests: list[PrefetchRequest] = []
        claimed = False
        pc = event.pc
        for on_access, claims, always_observe, component in self._dispatch:
            if claimed and not always_observe:
                continue
            result = on_access(event)
            if result:
                requests.extend(result)
            if not claimed and claims(pc):
                claimed = True
                telemetry = self.telemetry
                if telemetry is not None and pc not in self._trained_pcs:
                    self._trained_pcs.add(pc)
                    telemetry.emit(TRAINED, event.cycle, line=event.line,
                                   component=component.component_tag,
                                   pc=pc)
        if claimed or requests:
            return requests or None
        if not self.extras:
            return None
        return self._route_extra(event)

    def _route_extra(self, event: AccessEvent) -> list[PrefetchRequest] | None:
        pc = event.pc
        # Rebinding: the component whose prefetched line served this access
        # owns the instruction from now on.
        if event.served_by_prefetch and event.serving_component is not None:
            serving = self._extra_names.get(event.serving_component)
            if serving is not None:
                self._extra_owner[pc] = serving

        owner = self._extra_owner.get(pc)
        if owner is None:
            owner = self._round_robin % len(self.extras)
            self._round_robin += 1
            self._extra_owner[pc] = owner
        return self.extras[owner].on_access(event)

    # ------------------------------------------------------------------
    def claims(self, pc: int) -> bool:
        return any(component.claims(pc) for component in self.components)

    @property
    def storage_bits(self) -> int:
        # Hardwired combinational steering: "no additional storage".
        return 0
