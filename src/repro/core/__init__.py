"""The paper's contribution: composite prefetching.

* :mod:`repro.core.base` — the prefetcher component protocol shared by the
  TPC components and the monolithic baselines.
* :mod:`repro.core.loop_detector` — T2's loop hardware (loop-branch
  register + non-loop-PC table).
* :mod:`repro.core.sit` — the stride identifier table.
* :mod:`repro.core.t2` / :mod:`repro.core.p1` / :mod:`repro.core.c1` — the
  three specialized components.
* :mod:`repro.core.taint` — P1's register taint-propagation unit.
* :mod:`repro.core.coordinator` / :mod:`repro.core.composite` — the glue
  that makes a set of components one prefetcher (TPC), optionally with
  existing monolithic prefetchers as extra components, and the "shunting"
  contrast mode.
"""

from repro.core.base import (
    AccessEvent,
    NullPrefetcher,
    Prefetcher,
    PrefetchRequest,
)

__all__ = [
    "AccessEvent",
    "NullPrefetcher",
    "Prefetcher",
    "PrefetchRequest",
]


def __getattr__(name):
    if name == "T2Prefetcher":
        from repro.core.t2 import T2Prefetcher

        return T2Prefetcher
    if name == "P1Prefetcher":
        from repro.core.p1 import P1Prefetcher

        return P1Prefetcher
    if name == "C1Prefetcher":
        from repro.core.c1 import C1Prefetcher

        return C1Prefetcher
    if name in ("CompositePrefetcher", "ShuntPrefetcher", "make_tpc"):
        from repro.core import composite

        return getattr(composite, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
