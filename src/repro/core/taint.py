"""P1's taint propagation unit (paper Sec. IV-B-1, "TPU" in Table II).

A single 32-bit vector (one bit per logical register, 64 bits budgeted in
Table II) tracks which registers transitively hold a value derived from
the *trigger* instruction's destination register:

* when the trigger executes, the vector is cleared and the trigger's
  destination bit is set;
* for every subsequent instruction, the destination bit is set iff any
  source bit is set;
* the walk stops when the trigger is encountered again.

Any **load** observed with a tainted address register during the walk is a
candidate dependent load: if the walk reaches the trigger again and the
candidate's address tracked the trigger's *value* at a constant offset,
the pair forms the array-of-pointers pattern.  If the trigger's own
address register is tainted when it re-executes, the trigger forms the
pointer-chain pattern.
"""

from __future__ import annotations

from repro.isa.instructions import OpClass
from repro.isa.trace import TraceRecord


class TaintUnit:
    """One-trigger-at-a-time register taint tracker."""

    def __init__(self) -> None:
        self.trigger_pc: int | None = None
        self._vector = 0
        self._active = False
        self.tainted_loads: list[int] = []   # PCs of tainted loads this walk
        self.completed_loads: list[int] = []  # snapshot of the last walk
        self.trigger_self_dependent = False

    def reset(self) -> None:
        self.trigger_pc = None
        self._vector = 0
        self._active = False
        self.tainted_loads = []
        self.completed_loads = []
        self.trigger_self_dependent = False

    # ------------------------------------------------------------------
    def arm(self, trigger_pc: int) -> None:
        """Start (or restart) watching dependents of ``trigger_pc``."""
        self.trigger_pc = trigger_pc
        self._vector = 0
        self._active = False
        self.tainted_loads = []
        self.completed_loads = []
        self.trigger_self_dependent = False

    def is_tainted(self, register: int) -> bool:
        return register >= 0 and bool(self._vector & (1 << register))

    def observe(self, record: TraceRecord) -> bool:
        """Feed one retired instruction.

        Returns True when the walk completed (the trigger re-executed),
        at which point ``tainted_loads`` and ``trigger_self_dependent``
        describe what was found.
        """
        if self.trigger_pc is None:
            return False

        if record.pc == self.trigger_pc:
            if self._active:
                # Walk complete: check self-dependence before restarting.
                self.trigger_self_dependent = self.is_tainted(record.src1)
                completed = True
            else:
                completed = False
            # (Re)start the walk: only the trigger's destination is tainted.
            self._vector = 1 << record.dst if record.dst >= 0 else 0
            self._active = True
            self.completed_loads = self.tainted_loads
            self.tainted_loads = []
            return completed

        if not self._active:
            return False

        tainted = (
            self.is_tainted(record.src1) or self.is_tainted(record.src2)
        )
        if record.opc == OpClass.LOAD:
            if self.is_tainted(record.src1):
                self.tainted_loads.append(record.pc)
        if record.dst >= 0:
            if tainted:
                self._vector |= 1 << record.dst
            else:
                self._vector &= ~(1 << record.dst)
        return False

    @property
    def storage_bits(self) -> int:
        return 64  # Table II: TPU (64 bits)
