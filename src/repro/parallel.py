"""Parallel fan-out of independent simulations across worker processes.

Every figure experiment walks a (workload x prefetcher spec x config
tag) matrix in which each cell is an independent, deterministic
simulation — the classic embarrassingly-parallel sweep shape.  This
module dispatches those cells over a **persistent** process pool and
merges the results **in submission order**, so the merged outcome is
bit-identical to running the same jobs serially.

What makes the fan-out a speedup rather than the PR-2 slowdown:

* **Persistent pool** — the executor is created once per process and
  reused across every ``run_jobs`` call (``report_all`` used to pay pool
  spin-up/tear-down per figure).  ``shutdown_pool()`` runs at interpreter
  exit, or sooner if the worker count changes.
* **No per-worker trace rebuilds** — the parent warms the compiled
  columnar traces (:mod:`repro.workloads.tracecache`) before dispatching;
  fork-based workers share the parent's already-loaded columns
  copy-on-write, and workers forked earlier read the on-disk trace cache
  instead of re-running the functional machine.
* **Chunked submission** — jobs ship through ``Executor.map`` with a
  chunksize sized to the pool, amortizing IPC per batch instead of per
  cell.
* **Slim result payloads** — workers pack the per-line footprint
  Counters and attempted-line sets into flat ``array('q')`` blobs
  (:func:`_pack_result`); the parent restores equal objects.  The stats
  dataclasses and per-component counters travel as-is; nothing
  telemetry-sized ever crosses the pipe (profiled runs are never
  fanned out).

Correctness properties preserved from the serial path:

* every simulation constructs its own prefetcher/hierarchy/DRAM state
  (the DRAM controller RNG is seeded per instance), so nothing leaks
  between jobs regardless of which worker runs them,
* completion order never matters: results are collected ``map``-style,
  aligned with the job list,
* specs that cannot cross a process boundary (closures over local
  state) fall back to serial execution in the parent — correctness
  never depends on picklability, only the achievable parallelism does,
* a broken pool (a worker killed mid-flight) degrades to in-process
  serial execution of the unfinished cells.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import time
from array import array
from collections import Counter
from typing import Sequence

from repro.engine.config import SystemConfig

SimJob = tuple  # (workload, spec, tag) — see ``normalize_job``

_EXECUTOR = None
_EXECUTOR_WORKERS = 0
_SHUTDOWN_REGISTERED = False


def default_jobs() -> int:
    """Worker count when ``--jobs 0`` is given: one per CPU."""
    return os.cpu_count() or 1


def normalize_job(job) -> tuple[str, object, str]:
    """Accept ``(workload, spec)`` or ``(workload, spec, tag)``."""
    if len(job) == 2:
        workload, spec = job
        return workload, spec, ""
    workload, spec, tag = job
    return workload, spec, tag


def _is_picklable(spec) -> bool:
    if isinstance(spec, str):
        return True
    try:
        pickle.dumps(spec)
        return True
    except Exception:
        return False


# ----------------------------------------------------------------------
# Persistent pool
# ----------------------------------------------------------------------
def pool_workers() -> int:
    """Worker count of the live persistent pool (0 when none)."""
    return _EXECUTOR_WORKERS if _EXECUTOR is not None else 0


def shutdown_pool(wait: bool = True) -> None:
    """Tear down the persistent pool (no-op when none is running)."""
    global _EXECUTOR, _EXECUTOR_WORKERS
    executor = _EXECUTOR
    _EXECUTOR = None
    _EXECUTOR_WORKERS = 0
    if executor is not None:
        executor.shutdown(wait=wait)


def _get_executor(workers: int):
    """The persistent pool, (re)created only when the size changes."""
    global _EXECUTOR, _EXECUTOR_WORKERS, _SHUTDOWN_REGISTERED
    if _EXECUTOR is not None and _EXECUTOR_WORKERS != workers:
        shutdown_pool()
    if _EXECUTOR is None:
        from concurrent.futures import ProcessPoolExecutor

        # Fork (where available) inherits the parent's warmed compiled
        # traces copy-on-write; spawn-based platforms re-import
        # everything and read the disk trace cache, which is merely
        # slower.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        _EXECUTOR = ProcessPoolExecutor(max_workers=workers,
                                        mp_context=context)
        _EXECUTOR_WORKERS = workers
        if not _SHUTDOWN_REGISTERED:
            atexit.register(shutdown_pool)
            _SHUTDOWN_REGISTERED = True
    return _EXECUTOR


# ----------------------------------------------------------------------
# Slim wire format
# ----------------------------------------------------------------------
def _pack_counter(counter) -> tuple[bytes, bytes]:
    return (array("q", counter.keys()).tobytes(),
            array("q", counter.values()).tobytes())


def _unpack_counter(packed: tuple[bytes, bytes]) -> Counter:
    keys = array("q")
    keys.frombytes(packed[0])
    values = array("q")
    values.frombytes(packed[1])
    counter: Counter = Counter()
    counter.update(dict(zip(keys.tolist(), values.tolist())))
    return counter


def _pack_lines(lines) -> bytes:
    return array("q", lines).tobytes()


def _unpack_lines(packed: bytes) -> set:
    lines = array("q")
    lines.frombytes(packed)
    return set(lines.tolist())


def _pack_result(result):
    """Strip the bulky per-line collections into flat array blobs.

    The pickled payload shrinks to the stats dataclasses plus
    per-component counters; the footprint Counters/sets — tens of
    thousands of boxed ints when pickled naively — travel as C buffers
    and are restored to equal objects by :func:`_unpack_result`.
    """
    core = result.core
    blobs = (
        _pack_counter(result.miss_lines_l1),
        _pack_counter(result.miss_lines_l2),
        _pack_counter(core.miss_pcs),
        _pack_counter(core.miss_latency_by_pc),
        _pack_lines(result.attempted_prefetch_lines),
        {component: _pack_lines(lines)
         for component, lines in result.attempted_by_component.items()},
    )
    result.miss_lines_l1 = Counter()
    result.miss_lines_l2 = Counter()
    core.miss_pcs = Counter()
    core.miss_latency_by_pc = Counter()
    result.attempted_prefetch_lines = set()
    result.attempted_by_component = {}
    return result, blobs


def _unpack_result(payload):
    result, blobs = payload
    (miss1, miss2, miss_pcs, miss_latency, attempted, by_component) = blobs
    result.miss_lines_l1 = _unpack_counter(miss1)
    result.miss_lines_l2 = _unpack_counter(miss2)
    result.core.miss_pcs = _unpack_counter(miss_pcs)
    result.core.miss_latency_by_pc = _unpack_counter(miss_latency)
    result.attempted_prefetch_lines = _unpack_lines(attempted)
    result.attempted_by_component = {
        component: _unpack_lines(lines)
        for component, lines in by_component.items()
    }
    return result


def _simulate_payload(payload: tuple[str, object, str, SystemConfig]):
    """Worker entry point: one independent simulation, slim-packed."""
    from repro.experiments.runner import simulate_spec

    workload, spec, tag, config = payload
    return _pack_result(simulate_spec(workload, spec, tag, config))


# ----------------------------------------------------------------------
def warm_traces(workloads) -> float:
    """Build/load the compiled traces for ``workloads`` in this process.

    Called by :func:`run_jobs` before dispatching so workers never
    regenerate traces: fork shares the parent's columns copy-on-write
    and the on-disk trace cache covers workers forked earlier.  Returns
    the seconds spent.
    """
    from repro.workloads import get_workload

    started = time.perf_counter()
    for workload in dict.fromkeys(workloads):
        get_workload(workload).trace()
    return time.perf_counter() - started


def run_jobs(jobs: Sequence[SimJob], config: SystemConfig,
             n_jobs: int, timings: dict | None = None) -> list:
    """Simulate ``jobs`` with up to ``n_jobs`` persistent workers.

    Returns results aligned with ``jobs``.  ``n_jobs <= 1`` runs
    everything serially in-process (same code path the workers use), as
    does a job list with at most one pool-eligible cell — a pool that
    could only ever run one job is pure overhead.  ``timings``, when
    given, is filled with a phase breakdown (``trace_warm_seconds``,
    ``simulate_seconds``, ``merge_seconds``).
    """
    from repro.experiments.runner import simulate_spec

    def serial(indices, results):
        for i in indices:
            workload, spec, tag = normalized[i]
            results[i] = simulate_spec(workload, spec, tag, config)

    normalized = [normalize_job(job) for job in jobs]
    results: list = [None] * len(normalized)
    remote: list[int] = []
    local: list[int] = []
    if n_jobs > 1 and len(normalized) > 1:
        for i, (_, spec, _) in enumerate(normalized):
            (remote if _is_picklable(spec) else local).append(i)
    if len(remote) <= 1:
        # Serial path: nothing (or a single cell) is pool-eligible.
        started = time.perf_counter()
        serial(range(len(normalized)), results)
        if timings is not None:
            timings["trace_warm_seconds"] = 0.0
            timings["simulate_seconds"] = round(
                time.perf_counter() - started, 3)
            timings["merge_seconds"] = 0.0
        return results

    from concurrent.futures.process import BrokenProcessPool

    warm_seconds = warm_traces(normalized[i][0] for i in remote)
    workers = min(n_jobs, len(remote))
    executor = _get_executor(workers)
    payloads = [normalized[i] + (config,) for i in remote]
    chunksize = max(1, len(payloads) // (workers * 4) or 1)
    merge_seconds = 0.0
    started = time.perf_counter()
    try:
        packed_iter = executor.map(_simulate_payload, payloads,
                                   chunksize=chunksize)
        # Overlap the non-picklable stragglers with the pool.
        serial(local, results)
        for i in remote:
            packed = next(packed_iter)
            merge_started = time.perf_counter()
            results[i] = _unpack_result(packed)
            merge_seconds += time.perf_counter() - merge_started
    except BrokenProcessPool:
        # A worker died (OOM-killed, signaled): degrade gracefully and
        # finish the missing cells in-process.
        shutdown_pool(wait=False)
        serial((i for i in range(len(normalized)) if results[i] is None),
               results)
    if timings is not None:
        timings["trace_warm_seconds"] = round(warm_seconds, 3)
        timings["simulate_seconds"] = round(
            time.perf_counter() - started - merge_seconds, 3)
        timings["merge_seconds"] = round(merge_seconds, 3)
    return results
