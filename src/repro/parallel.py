"""Parallel fan-out of independent simulations across worker processes.

Every figure experiment walks a (workload x prefetcher spec x config
tag) matrix in which each cell is an independent, deterministic
simulation — the classic embarrassingly-parallel sweep shape.  This
module dispatches those cells over a ``ProcessPoolExecutor`` and merges
the results **in submission order**, so the merged outcome is
bit-identical to running the same jobs serially:

* each worker regenerates the workload trace itself (trace generation is
  seeded and deterministic; the per-process registry cache keeps it to
  one build per workload per worker),
* every simulation constructs its own prefetcher/hierarchy/DRAM state
  (the DRAM controller RNG is seeded per instance), so nothing leaks
  between jobs regardless of which worker runs them,
* completion order never matters: results are collected ``map``-style,
  aligned with the job list.

Specs that cannot cross a process boundary (closures over local state)
fall back to serial execution in the parent, after the picklable jobs
have been handed to the pool — correctness never depends on
picklability, only the achievable parallelism does.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Sequence

from repro.engine.config import SystemConfig

SimJob = tuple  # (workload, spec, tag) — see ``normalize_job``


def default_jobs() -> int:
    """Worker count when ``--jobs 0`` is given: one per CPU."""
    return os.cpu_count() or 1


def normalize_job(job) -> tuple[str, object, str]:
    """Accept ``(workload, spec)`` or ``(workload, spec, tag)``."""
    if len(job) == 2:
        workload, spec = job
        return workload, spec, ""
    workload, spec, tag = job
    return workload, spec, tag


def _is_picklable(spec) -> bool:
    if isinstance(spec, str):
        return True
    try:
        pickle.dumps(spec)
        return True
    except Exception:
        return False


def _simulate_payload(payload: tuple[str, object, str, SystemConfig]):
    """Worker entry point: one independent simulation."""
    from repro.experiments.runner import simulate_spec

    workload, spec, tag, config = payload
    return simulate_spec(workload, spec, tag, config)


def run_jobs(jobs: Sequence[SimJob], config: SystemConfig,
             n_jobs: int) -> list:
    """Simulate ``jobs`` with up to ``n_jobs`` workers.

    Returns results aligned with ``jobs``.  ``n_jobs <= 1`` runs
    everything serially in-process (same code path the workers use).
    """
    from repro.experiments.runner import simulate_spec

    normalized = [normalize_job(job) for job in jobs]
    if n_jobs <= 1 or len(normalized) <= 1:
        return [
            simulate_spec(workload, spec, tag, config)
            for workload, spec, tag in normalized
        ]

    results: list = [None] * len(normalized)
    remote: list[int] = []
    local: list[int] = []
    for i, (_, spec, _) in enumerate(normalized):
        (remote if _is_picklable(spec) else local).append(i)

    futures = {}
    executor = _make_executor(min(n_jobs, max(len(remote), 1)))
    try:
        for i in remote:
            workload, spec, tag = normalized[i]
            futures[i] = executor.submit(
                _simulate_payload, (workload, spec, tag, config)
            )
        # Overlap the non-picklable stragglers with the pool.
        for i in local:
            workload, spec, tag = normalized[i]
            results[i] = simulate_spec(workload, spec, tag, config)
        for i in remote:
            results[i] = futures[i].result()
    finally:
        executor.shutdown(wait=True)
    return results


def _make_executor(workers: int):
    from concurrent.futures import ProcessPoolExecutor

    # Fork (where available) inherits the parent's warmed trace registry;
    # spawn-based platforms re-import everything, which is merely slower.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)
