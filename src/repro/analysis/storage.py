"""Table II: storage cost of the evaluated prefetchers.

Each prefetcher reports ``storage_bits`` computed from its structure
sizes; this module collects them and renders the table next to the
paper's published budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.prefetcher_registry import make_prefetcher

PAPER_STORAGE_KB = {
    "ghb": 4.0,
    "spp": 5.0,
    "vldp": 3.25,
    "bop": 4.0,
    "fdp": 2.5,
    "sms": 12.0,
    "ampm": 4.0,
    "t2": 2.3,
    "p1": 1.07,
    "c1": 1.2,
    "tpc": 4.57,
}
"""Paper Table II budgets in KB."""


@dataclass(frozen=True)
class StorageRow:
    name: str
    model_kb: float
    paper_kb: float

    @property
    def ratio(self) -> float:
        if self.paper_kb == 0:
            return 0.0
        return self.model_kb / self.paper_kb


def storage_kb(name: str) -> float:
    """Modeled storage of a registry prefetcher in KB."""
    return make_prefetcher(name).storage_bits / 8 / 1024


def storage_table(names=None) -> list[StorageRow]:
    """Table II rows: modeled vs paper storage budgets."""
    if names is None:
        names = list(PAPER_STORAGE_KB)
    return [
        StorageRow(name, storage_kb(name), PAPER_STORAGE_KB.get(name, 0.0))
        for name in names
    ]
