"""Windowed observation of prefetch behavior (paper Sec. III / Fig. 1).

The paper defines scope and effective accuracy "over a particular window
of observation" and strings windows together for global averages.  The
whole-run metrics in :mod:`repro.analysis.metrics` are the single-window
case; this module adds the per-window time series, which exposes phase
behavior (e.g. a prefetcher warming up, or losing the plot when the
working set shifts).

Usage::

    recorder = WindowRecorder(window_accesses=4096)
    result = simulate(trace, prefetcher, tracker=recorder)
    for window in recorder.windows:
        print(window.index, window.issued, window.useful_fraction)

The recorder implements the hierarchy tracker protocol, so it composes
with a simulation run directly; combine with a baseline run's windowed
miss counts for per-window scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Window:
    """Prefetch activity in one observation window."""

    index: int
    issued: int = 0
    useful: int = 0
    pollution: float = 0.0
    attempted_lines: set = field(default_factory=set)

    @property
    def useful_fraction(self) -> float:
        if self.issued == 0:
            return 0.0
        return self.useful / self.issued

    @property
    def net_credit(self) -> float:
        return self.useful - self.pollution


class WindowRecorder:
    """Tracker-protocol recorder that segments events into windows.

    Windows advance on *prefetch-relevant events* (issues, uses,
    pollution); tie the window length to demand accesses by calling
    :meth:`tick` from the caller if finer control is needed.
    """

    def __init__(self, window_events: int = 2048) -> None:
        self.window_events = window_events
        self.windows: list[Window] = [Window(index=0)]
        self._events = 0

    # ------------------------------------------------------------------
    def _advance(self) -> Window:
        self._events += 1
        current = self.windows[-1]
        if self._events >= self.window_events:
            self._events = 0
            current = Window(index=current.index + 1)
            self.windows.append(current)
        return self.windows[-1]

    def tick(self) -> None:
        """External per-access tick (optional, for access-based windows)."""
        self._advance()

    # ------------------------------------------------------------------
    # Hierarchy tracker protocol
    # ------------------------------------------------------------------
    def on_prefetch_issued(self, line: int, component) -> None:
        window = self._advance()
        window.issued += 1
        window.attempted_lines.add(line)

    def on_useful(self, line: int, component, level: int) -> None:
        window = self._advance()
        window.useful += 1

    def on_pollution(self, level: int, victims) -> None:
        if not victims:
            return
        window = self._advance()
        window.pollution += 1.0

    # ------------------------------------------------------------------
    def series(self) -> list[tuple[int, float]]:
        """(window index, useful fraction) time series."""
        return [(w.index, w.useful_fraction) for w in self.windows]

    def total_issued(self) -> int:
        return sum(w.issued for w in self.windows)

    def warmup_windows(self, threshold: float = 0.5) -> int:
        """How many leading windows before useful fraction crosses
        ``threshold`` (a warmup-time proxy)."""
        for i, window in enumerate(self.windows):
            if window.issued > 0 and window.useful_fraction >= threshold:
                return i
        return len(self.windows)


def windows_from_events(events, window_events: int = 2048
                        ) -> list[Window]:
    """Rebuild per-window prefetch activity from a telemetry trace.

    Accepts the stream a :class:`repro.telemetry.Telemetry` hub recorded
    (live ``LifecycleEvent`` objects or dicts loaded back from JSONL via
    :func:`repro.telemetry.read_jsonl`), so the windowed analyses above
    run off a saved trace file without re-simulating.  Only the three
    kinds the tracker protocol sees are replayed: ``issued``,
    ``first_use``, and ``pollution_hit``.
    """
    recorder = WindowRecorder(window_events)
    for event in events:
        if isinstance(event, dict):
            kind, line = event["kind"], event.get("line", -1)
            component, level = event.get("component"), event.get("level", 0)
        else:
            kind, line = event.kind, event.line
            component, level = event.component, event.level
        if kind == "issued":
            recorder.on_prefetch_issued(line, component)
        elif kind == "first_use":
            recorder.on_useful(line, component, level)
        elif kind == "pollution_hit":
            recorder.on_pollution(level, [(line, component)])
    return recorder.windows
