"""The paper's evaluation metrics (Sec. III).

All functions take the prefetcher run and the matching no-prefetch
baseline run of the *same trace*; the observation window is the whole run
(one "simpoint").
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.engine.system import SimulationResult


def scope(result: SimulationResult, baseline: SimulationResult,
          level: int = 1) -> float:
    """Prefetching scope ``S(P)`` (Sec. III).

    The fraction of the baseline miss footprint *attempted* by the
    prefetcher, weighted by per-line miss counts:

    ``S(P) = sum_{A_j in FP ∩ PFP} W_j / sum_{A_i in FP} W_i``
    """
    footprint = (
        baseline.miss_lines_l1 if level == 1 else baseline.miss_lines_l2
    )
    total_weight = sum(footprint.values())
    if total_weight == 0:
        return 0.0
    attempted = result.attempted_prefetch_lines
    covered_weight = sum(
        weight for line, weight in footprint.items() if line in attempted
    )
    return covered_weight / total_weight


def effective_accuracy(result: SimulationResult,
                       baseline: SimulationResult,
                       level: int = 1) -> float:
    """Misses avoided per prefetch issued (Sec. III).

    Negative when prefetching *causes* more misses than it removes —
    unlike the conventional accuracy metric, pollution is fully charged.
    """
    issued = result.prefetch.issued
    if issued == 0:
        return 0.0
    if level == 1:
        avoided = baseline.l1d.demand_misses - result.l1d.demand_misses
    else:
        avoided = baseline.l2.demand_misses - result.l2.demand_misses
    return avoided / issued


def effective_coverage(result: SimulationResult,
                       baseline: SimulationResult,
                       level: int = 1) -> float:
    """Percentage reduction of misses from engaging the prefetcher
    (Sec. V-C1, Fig. 12)."""
    if level == 1:
        base = baseline.l1d.demand_misses
        now = result.l1d.demand_misses
    else:
        base = baseline.l2.demand_misses
        now = result.l2.demand_misses
    if base == 0:
        return 0.0
    return (base - now) / base


def traffic_overhead(result: SimulationResult,
                     baseline: SimulationResult) -> float:
    """Memory traffic normalized to the no-prefetch baseline (Fig. 9)."""
    if baseline.dram_traffic == 0:
        return 1.0
    return result.dram_traffic / baseline.dram_traffic


def speedup(result: SimulationResult, baseline: SimulationResult) -> float:
    """Cycles(baseline) / cycles(prefetcher)."""
    if result.cycles == 0:
        return 0.0
    return baseline.cycles / result.cycles


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's suite-wide summary statistic)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def weighted_average(pairs: Iterable[tuple[float, float]]) -> float:
    """Weighted average of (value, weight) pairs (MPKI-weighted suite
    summaries in Fig. 10/12)."""
    total_weight = 0.0
    total = 0.0
    for value, weight in pairs:
        total += value * weight
        total_weight += weight
    if total_weight == 0:
        return 0.0
    return total / total_weight
