"""Per-instruction attribution: which static instructions miss, what
pattern they follow, which component (if any) covers them.

This is the practical face of the paper's "patterns are tied to static
instructions" conjecture — the report a performance engineer would pull
up to see where the remaining misses live and which specialist should own
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.classify import OfflineClassifier
from repro.analysis.report import format_table
from repro.engine.system import SimulationResult
from repro.isa.trace import Trace


@dataclass
class AttributionRow:
    pc: int
    baseline_misses: int
    remaining_misses: int
    stall_cycles: int
    pattern: str             # "strided" / "other"
    covered_by: str          # component name or "-"

    @property
    def coverage(self) -> float:
        if self.baseline_misses == 0:
            return 0.0
        return 1.0 - self.remaining_misses / self.baseline_misses


def attribute(trace: Trace, baseline: SimulationResult,
              result: SimulationResult, prefetcher,
              classifier: OfflineClassifier | None = None,
              top: int = 20) -> list[AttributionRow]:
    """Build the per-PC report for one (baseline, prefetcher) run pair.

    ``prefetcher`` must be the *same instance* used for ``result`` (its
    learned claims identify the owning component); composite prefetchers
    are introspected per component.
    """
    classifier = classifier or OfflineClassifier(trace)
    components = getattr(prefetcher, "components", None)
    extras = getattr(prefetcher, "extras", [])

    def owner_of(pc: int) -> str:
        if components is None:
            return prefetcher.name if prefetcher.claims(pc) else "-"
        for component in list(components) + list(extras):
            if component.claims(pc):
                return component.name
        return "-"

    rows = []
    hot = baseline.core.miss_pcs.most_common(top)
    for pc, misses in hot:
        rows.append(
            AttributionRow(
                pc=pc,
                baseline_misses=misses,
                remaining_misses=result.core.miss_pcs.get(pc, 0),
                stall_cycles=result.core.miss_latency_by_pc.get(pc, 0),
                pattern=(
                    "strided" if pc in classifier.strided_pcs else "other"
                ),
                covered_by=owner_of(pc),
            )
        )
    return rows


def render(rows: list[AttributionRow]) -> str:
    return format_table(
        ["pc", "base misses", "remaining", "coverage", "stall cyc",
         "pattern", "owner"],
        [
            (f"{r.pc:#x}", r.baseline_misses, r.remaining_misses,
             r.coverage, r.stall_cycles, r.pattern, r.covered_by)
            for r in rows
        ],
    )
