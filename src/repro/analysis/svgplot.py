"""Dependency-free SVG rendering for the paper's figure types.

The environment has no plotting libraries, so this module writes the two
chart shapes the paper uses directly as SVG:

* :func:`scatter_svg` — accuracy-vs-scope scatters (Figs. 1, 10, 13, 14):
  one dot per application with area proportional to a weight, plus a
  cross-marked summary point per series.
* :func:`bars_svg` — grouped bar charts with min/max "I-beams"
  (Figs. 8, 9, 11, 15, 16).

Both return the SVG text; callers write it wherever they like.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_COLORS = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#000000",
]

_WIDTH = 640
_HEIGHT = 420
_MARGIN = 56


def _color(index: int) -> str:
    return _COLORS[index % len(_COLORS)]


def _escape(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;")
        .replace(">", "&gt;")
    )


@dataclass
class ScatterSeries:
    """One prefetcher's dots for :func:`scatter_svg`."""

    label: str
    points: list[tuple[float, float, float]]   # (x, y, weight)

    def summary(self) -> tuple[float, float]:
        total = sum(w for _, _, w in self.points) or 1.0
        return (
            sum(x * w for x, _, w in self.points) / total,
            sum(y * w for _, y, w in self.points) / total,
        )


def _axes(x_label: str, y_label: str, x_range, y_range,
          title: str) -> list[str]:
    x0, x1 = x_range
    y0, y1 = y_range
    parts = [
        f'<rect x="0" y="0" width="{_WIDTH}" height="{_HEIGHT}" '
        f'fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="20" text-anchor="middle" '
        f'font-size="14" font-family="sans-serif">{_escape(title)}</text>',
        f'<line x1="{_MARGIN}" y1="{_HEIGHT - _MARGIN}" '
        f'x2="{_WIDTH - 16}" y2="{_HEIGHT - _MARGIN}" stroke="black"/>',
        f'<line x1="{_MARGIN}" y1="{_HEIGHT - _MARGIN}" '
        f'x2="{_MARGIN}" y2="28" stroke="black"/>',
        f'<text x="{_WIDTH / 2}" y="{_HEIGHT - 12}" text-anchor="middle" '
        f'font-size="12" font-family="sans-serif">{_escape(x_label)}</text>',
        f'<text x="14" y="{_HEIGHT / 2}" text-anchor="middle" '
        f'font-size="12" font-family="sans-serif" '
        f'transform="rotate(-90 14 {_HEIGHT / 2})">'
        f'{_escape(y_label)}</text>',
    ]
    for i in range(5):
        fx = x0 + (x1 - x0) * i / 4
        fy = y0 + (y1 - y0) * i / 4
        px = _MARGIN + (_WIDTH - _MARGIN - 16) * i / 4
        py = _HEIGHT - _MARGIN - (_HEIGHT - _MARGIN - 28) * i / 4
        parts.append(
            f'<text x="{px:.0f}" y="{_HEIGHT - _MARGIN + 16}" '
            f'text-anchor="middle" font-size="10" '
            f'font-family="sans-serif">{fx:.2f}</text>'
        )
        parts.append(
            f'<text x="{_MARGIN - 6}" y="{py:.0f}" text-anchor="end" '
            f'font-size="10" font-family="sans-serif">{fy:.2f}</text>'
        )
    return parts


def _project(x, y, x_range, y_range):
    x0, x1 = x_range
    y0, y1 = y_range
    spanx = (x1 - x0) or 1.0
    spany = (y1 - y0) or 1.0
    px = _MARGIN + (x - x0) / spanx * (_WIDTH - _MARGIN - 16)
    py = _HEIGHT - _MARGIN - (y - y0) / spany * (_HEIGHT - _MARGIN - 28)
    return px, py


def scatter_svg(series: list[ScatterSeries], *, title: str = "",
                x_label: str = "scope", y_label: str = "eff. accuracy",
                x_range=(0.0, 1.0), y_range=(-0.2, 1.0)) -> str:
    """Render accuracy-vs-scope style scatters."""
    parts = ['<svg xmlns="http://www.w3.org/2000/svg" '
             f'width="{_WIDTH}" height="{_HEIGHT}">']
    parts += _axes(x_label, y_label, x_range, y_range, title)
    max_weight = max(
        (w for s in series for _, _, w in s.points), default=1.0
    ) or 1.0
    for index, s in enumerate(series):
        color = _color(index)
        for x, y, weight in s.points:
            px, py = _project(x, y, x_range, y_range)
            radius = 2.0 + 8.0 * math.sqrt(weight / max_weight)
            parts.append(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="{radius:.1f}" '
                f'fill="{color}" fill-opacity="0.35" stroke="{color}"/>'
            )
        sx, sy = s.summary()
        px, py = _project(sx, sy, x_range, y_range)
        parts.append(
            f'<circle cx="{px:.1f}" cy="{py:.1f}" r="9" fill="none" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<path d="M {px - 9:.1f} {py:.1f} H {px + 9:.1f} '
            f'M {px:.1f} {py - 9:.1f} V {py + 9:.1f}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{_WIDTH - 20}" y="{40 + 16 * index}" '
            f'text-anchor="end" font-size="12" fill="{color}" '
            f'font-family="sans-serif">{_escape(s.label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def bars_svg(values: dict[str, float], *, title: str = "",
             y_label: str = "speedup",
             ranges: dict[str, tuple[float, float]] | None = None,
             baseline: float | None = 1.0) -> str:
    """Render a bar series with optional min/max I-beams."""
    names = list(values)
    if not names:
        raise ValueError("bars_svg needs at least one bar")
    highs = [
        max(values[n], *(ranges[n] if ranges and n in ranges else
                         (values[n],)))
        for n in names
    ]
    y_top = max(highs) * 1.1
    y_range = (0.0, y_top)
    parts = ['<svg xmlns="http://www.w3.org/2000/svg" '
             f'width="{_WIDTH}" height="{_HEIGHT}">']
    parts += _axes("", y_label, (0, len(names)), y_range, title)
    slot = (_WIDTH - _MARGIN - 16) / len(names)
    for index, name in enumerate(names):
        color = _color(index)
        x_center = _MARGIN + slot * (index + 0.5)
        _, py = _project(0, values[name], (0, 1), y_range)
        _, py0 = _project(0, 0, (0, 1), y_range)
        width = slot * 0.6
        parts.append(
            f'<rect x="{x_center - width / 2:.1f}" y="{py:.1f}" '
            f'width="{width:.1f}" height="{py0 - py:.1f}" '
            f'fill="{color}" fill-opacity="0.8"/>'
        )
        if ranges and name in ranges:
            low, high = ranges[name]
            _, pl = _project(0, low, (0, 1), y_range)
            _, ph = _project(0, high, (0, 1), y_range)
            parts.append(
                f'<path d="M {x_center:.1f} {pl:.1f} V {ph:.1f} '
                f'M {x_center - 5:.1f} {pl:.1f} H {x_center + 5:.1f} '
                f'M {x_center - 5:.1f} {ph:.1f} H {x_center + 5:.1f}" '
                f'stroke="black"/>'
            )
        parts.append(
            f'<text x="{x_center:.1f}" y="{_HEIGHT - _MARGIN + 28}" '
            f'text-anchor="middle" font-size="10" '
            f'font-family="sans-serif">{_escape(name)}</text>'
        )
    if baseline is not None and baseline <= y_top:
        _, py = _project(0, baseline, (0, 1), y_range)
        parts.append(
            f'<line x1="{_MARGIN}" y1="{py:.1f}" x2="{_WIDTH - 16}" '
            f'y2="{py:.1f}" stroke="gray" stroke-dasharray="4 3"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def lines_svg(series: dict[str, list[tuple[float, float]]], *,
              title: str = "", x_label: str = "", y_label: str = "",
              x_range: tuple[float, float] | None = None,
              y_range: tuple[float, float] | None = None) -> str:
    """Render (x, y) series as polylines — time-series telemetry charts.

    Ranges default to the data's bounding box (y padded down to 0 when
    all values are nonnegative, the natural baseline for rates/counts).
    """
    points = [p for s in series.values() for p in s]
    if not points:
        raise ValueError("lines_svg needs at least one point")
    if x_range is None:
        xs = [x for x, _ in points]
        x_range = (min(xs), max(xs) or 1.0)
    if y_range is None:
        ys = [y for _, y in points]
        low, high = min(ys), max(ys)
        if low >= 0.0:
            low = 0.0
        if high <= low:
            high = low + 1.0
        y_range = (low, high * 1.05 if high > 0 else high)
    if x_range[1] <= x_range[0]:
        x_range = (x_range[0], x_range[0] + 1.0)
    parts = ['<svg xmlns="http://www.w3.org/2000/svg" '
             f'width="{_WIDTH}" height="{_HEIGHT}">']
    parts += _axes(x_label, y_label, x_range, y_range, title)
    for index, (label, data) in enumerate(series.items()):
        color = _color(index)
        if data:
            coords = " ".join(
                f"{px:.1f},{py:.1f}"
                for px, py in (_project(x, y, x_range, y_range)
                               for x, y in data)
            )
            parts.append(
                f'<polyline points="{coords}" fill="none" '
                f'stroke="{color}" stroke-width="1.5"/>'
            )
        parts.append(
            f'<text x="{_WIDTH - 20}" y="{40 + 16 * index}" '
            f'text-anchor="end" font-size="12" fill="{color}" '
            f'font-family="sans-serif">{_escape(label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
