"""Result comparison and regression detection.

Development on a prefetcher is a loop of "change something, re-run the
suite, find out what moved".  This module diffs two result sets (e.g.
before/after a T2 change) and classifies the movements, so a regression
on one workload isn't hidden inside an improved geomean.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.engine.system import SimulationResult


class Movement(enum.Enum):
    IMPROVED = "improved"
    REGRESSED = "regressed"
    UNCHANGED = "unchanged"


@dataclass
class ResultDiff:
    """Cycle/miss/traffic movement for one workload."""

    workload: str
    cycles_before: int
    cycles_after: int
    misses_before: int
    misses_after: int
    traffic_before: int
    traffic_after: int

    @property
    def speedup(self) -> float:
        if self.cycles_after == 0:
            return 0.0
        return self.cycles_before / self.cycles_after

    def movement(self, tolerance: float = 0.01) -> Movement:
        if self.speedup > 1.0 + tolerance:
            return Movement.IMPROVED
        if self.speedup < 1.0 - tolerance:
            return Movement.REGRESSED
        return Movement.UNCHANGED


def diff(before: SimulationResult, after: SimulationResult) -> ResultDiff:
    """Diff two runs of the same workload."""
    if before.workload != after.workload:
        raise ValueError(
            f"workload mismatch: {before.workload!r} vs {after.workload!r}"
        )
    return ResultDiff(
        workload=before.workload,
        cycles_before=before.cycles,
        cycles_after=after.cycles,
        misses_before=before.l1d.demand_misses,
        misses_after=after.l1d.demand_misses,
        traffic_before=before.dram_traffic,
        traffic_after=after.dram_traffic,
    )


@dataclass
class SuiteDiff:
    """Aggregate of per-workload diffs."""

    diffs: list[ResultDiff]
    tolerance: float = 0.01

    @property
    def geomean_speedup(self) -> float:
        speedups = [d.speedup for d in self.diffs if d.speedup > 0]
        return geometric_mean(speedups) if speedups else 0.0

    def by_movement(self) -> dict[Movement, list[ResultDiff]]:
        buckets: dict[Movement, list[ResultDiff]] = {
            movement: [] for movement in Movement
        }
        for result_diff in self.diffs:
            buckets[result_diff.movement(self.tolerance)].append(result_diff)
        return buckets

    @property
    def has_regressions(self) -> bool:
        return bool(self.by_movement()[Movement.REGRESSED])


def diff_suite(before: dict[str, SimulationResult],
               after: dict[str, SimulationResult],
               tolerance: float = 0.01) -> SuiteDiff:
    """Diff two workload->result maps (common keys only)."""
    common = sorted(set(before) & set(after))
    return SuiteDiff(
        diffs=[diff(before[name], after[name]) for name in common],
        tolerance=tolerance,
    )


def render(suite_diff: SuiteDiff) -> str:
    rows = []
    for result_diff in sorted(suite_diff.diffs, key=lambda d: d.speedup):
        rows.append(
            (
                result_diff.workload,
                result_diff.speedup,
                result_diff.misses_before,
                result_diff.misses_after,
                result_diff.traffic_after - result_diff.traffic_before,
                result_diff.movement(suite_diff.tolerance).value,
            )
        )
    body = format_table(
        ["workload", "speedup", "misses before", "after", "traffic Δ",
         "movement"],
        rows,
    )
    return body + (
        f"\n\ngeomean speedup: {suite_diff.geomean_speedup:.3f}"
        f" | regressions: {len(suite_diff.by_movement()[Movement.REGRESSED])}"
    )
