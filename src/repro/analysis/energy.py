"""First-order energy model for the prefetching cost-benefit analysis.

The paper's introduction frames prefetcher value as a cost-benefit ratio
("The benefits include cycles saved and the concomitant energy savings...
the energy cost is almost always outweighed by the energy savings
resulting from successful prefetches") but never quantifies it.  This
module makes that statement checkable with a standard first-order model:

``E = E_static + E_dyn``

* static/background energy ∝ execution cycles (leakage + clock tree —
  the term successful prefetching shrinks),
* dynamic energy = per-event costs: L1/L2/L3 accesses, DRAM line
  transfers (the term wasteful prefetching grows), and the prefetcher's
  own metadata accesses + storage leakage.

Constants are typical 22–32 nm class figures (order-of-magnitude
correct; the *comparison* between prefetchers is the point, not joules).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.system import SimulationResult

# Energy constants (nanojoules).
STATIC_NJ_PER_CYCLE = 0.30       # per-core background power at 3 GHz
L1_ACCESS_NJ = 0.05
L2_ACCESS_NJ = 0.30
L3_ACCESS_NJ = 1.20
DRAM_LINE_NJ = 20.0              # 64 B line transfer + activation share
PREFETCHER_EVENT_NJ = 0.01       # one metadata table update/lookup
PREFETCHER_LEAK_NJ_PER_KCYCLE_PER_KB = 0.02


@dataclass
class EnergyBreakdown:
    """Per-run energy estimate in microjoules."""

    static_uj: float
    cache_uj: float
    dram_uj: float
    prefetcher_uj: float

    @property
    def total_uj(self) -> float:
        return (
            self.static_uj + self.cache_uj + self.dram_uj
            + self.prefetcher_uj
        )


def estimate(result: SimulationResult,
             prefetcher_storage_bits: int = 0) -> EnergyBreakdown:
    """Estimate the energy of one simulation run."""
    cycles = result.cycles
    static = cycles * STATIC_NJ_PER_CYCLE

    l1_accesses = result.l1d.demand_accesses + result.prefetch.issued
    l2_accesses = result.l2.demand_accesses + result.prefetch.issued
    l3_accesses = result.l3.demand_accesses
    cache = (
        l1_accesses * L1_ACCESS_NJ
        + l2_accesses * L2_ACCESS_NJ
        + l3_accesses * L3_ACCESS_NJ
    )
    dram = result.dram.total_traffic * DRAM_LINE_NJ

    storage_kb = prefetcher_storage_bits / 8 / 1024
    prefetcher = (
        (result.l1d.demand_accesses + result.prefetch.issued)
        * PREFETCHER_EVENT_NJ
        + cycles / 1000.0 * storage_kb * PREFETCHER_LEAK_NJ_PER_KCYCLE_PER_KB
    )
    return EnergyBreakdown(
        static_uj=static / 1000.0,
        cache_uj=cache / 1000.0,
        dram_uj=dram / 1000.0,
        prefetcher_uj=prefetcher / 1000.0,
    )


def net_benefit(result: SimulationResult, baseline: SimulationResult,
                prefetcher_storage_bits: int = 0) -> float:
    """Energy saved by engaging the prefetcher, in microjoules.

    Positive = the paper's claim holds for this run: the savings from
    shorter runtime outweigh the prefetcher's own costs and any traffic
    it wastes.
    """
    with_pf = estimate(result, prefetcher_storage_bits)
    without = estimate(baseline, 0)
    return without.total_uj - with_pf.total_uj
