"""Analysis: the paper's evaluation metrics and accounting machinery.

* :mod:`repro.analysis.metrics` — scope, effective accuracy, effective
  coverage, traffic, speedup (Sec. III definitions).
* :mod:`repro.analysis.classify` — the offline LHF/MHF/HHF ground-truth
  classifier (Sec. V-C1, Fig. 13).
* :mod:`repro.analysis.credit` — per-prefetch credit accounting with
  shared negative credit for prefetch-induced misses (Sec. V-C1).
* :mod:`repro.analysis.storage` — Table II storage-cost model.
* :mod:`repro.analysis.report` — plain-text table/series renderers.
"""

from repro.analysis.metrics import (
    effective_accuracy,
    effective_coverage,
    geometric_mean,
    scope,
    traffic_overhead,
)
from repro.analysis.classify import Category, OfflineClassifier
from repro.analysis.credit import CreditTracker

__all__ = [
    "Category",
    "CreditTracker",
    "OfflineClassifier",
    "effective_accuracy",
    "effective_coverage",
    "geometric_mean",
    "scope",
    "traffic_overhead",
]
