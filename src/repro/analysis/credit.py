"""Per-prefetch credit accounting (paper Sec. V-C1).

"Any prefetched line is marked.  If it serves an on-demand access later,
the line earns a positive credit.  If it causes an additional miss, then
it earns a negative credit. ... When an access misses in the cache but
finds its tag in the alternative-reality cache tags, we have a
prefetching-induced miss.  In this case, one negative credit is equally
divided among the prefetched lines currently in the set."

:class:`CreditTracker` implements the hierarchy's tracker protocol
(``on_prefetch_issued`` / ``on_useful`` / ``on_pollution``) and aggregates
credits per *component* and per *category* (via an optional classifier),
which is exactly what Fig. 13 and Fig. 14 plot.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable


@dataclass
class CreditBucket:
    """Credits for one (component, category) combination."""

    issued: int = 0
    positive: float = 0.0
    negative: float = 0.0

    @property
    def credit(self) -> float:
        return self.positive - self.negative

    @property
    def effective_accuracy(self) -> float:
        """Net misses avoided per prefetch issued; can be negative."""
        if self.issued == 0:
            return 0.0
        return self.credit / self.issued


class CreditTracker:
    """Aggregates prefetch credits; plugs into ``Hierarchy.tracker``.

    Parameters
    ----------
    categorize:
        Optional ``line -> hashable category`` function (e.g.
        ``OfflineClassifier(...).category``).  Without it everything lands
        in the single category ``"all"``.
    level:
        Which cache level's useful/pollution events to account (1 or 2),
        or ``None`` to accept both — required when a composite routes
        different components to different destination levels (T2/P1 serve
        demand at L1, C1 at L2).
    """

    def __init__(self, categorize: Callable | None = None,
                 level: int | None = None) -> None:
        self._categorize = categorize or (lambda line: "all")
        self.level = level
        self.buckets: dict[tuple, CreditBucket] = defaultdict(CreditBucket)
        self._line_category: dict[int, object] = {}

    # ------------------------------------------------------------------
    # Tracker protocol
    # ------------------------------------------------------------------
    def on_prefetch_issued(self, line: int, component: str | None) -> None:
        category = self._categorize(line)
        self._line_category[line] = category
        self.buckets[(component, category)].issued += 1

    def on_useful(self, line: int, component: str | None,
                  level: int) -> None:
        if self.level is not None and level != self.level:
            return
        category = self._line_category.get(line)
        if category is None:
            category = self._categorize(line)
        self.buckets[(component, category)].positive += 1.0

    def on_pollution(self, level: int, victims) -> None:
        if not victims:
            return
        if self.level is not None and level != self.level:
            return
        share = 1.0 / len(victims)
        for line, component in victims:
            category = self._line_category.get(line)
            if category is None:
                category = self._categorize(line)
            self.buckets[(component, category)].negative += share

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def bucket(self, component: str | None = None,
               category=None) -> CreditBucket:
        """Sum over all buckets matching the given component/category."""
        total = CreditBucket()
        for (bucket_component, bucket_category), bucket in \
                self.buckets.items():
            if component is not None and bucket_component != component:
                continue
            if category is not None and bucket_category != category:
                continue
            total.issued += bucket.issued
            total.positive += bucket.positive
            total.negative += bucket.negative
        return total

    def by_category(self) -> dict:
        """Category -> aggregated bucket (over all components)."""
        categories = {category for _, category in self.buckets}
        return {c: self.bucket(category=c) for c in categories}

    def by_component(self) -> dict:
        components = {component for component, _ in self.buckets}
        return {c: self.bucket(component=c) for c in components}
