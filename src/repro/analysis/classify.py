"""Offline LHF/MHF/HHF ground-truth classifier (paper Sec. V-C1).

The paper divides all accesses "subjectively into three categories with
increasing difficulty of prefetch":

* **LHF** (low-hanging fruit) — strided accesses,
* **MHF** — non-strided accesses with high spatial locality,
* **HHF** — everything else.

"The division is done offline to have a better approximation to ground
truth."  This module replays a trace once and labels cache lines:

* a PC is *strided* when it has enough dynamic instances and a dominant
  repeated delta; lines it touches are LHF;
* a 16-line region is *dense* when more than 6 of its lines are touched
  within a bounded temporal window (a region revisited slowly over the
  whole run is not spatial locality any real region monitor could
  exploit); lines in dense regions that are not already LHF are MHF;
* every other line is HHF.

Every prefetch is then labeled with the category of its target line.
"""

from __future__ import annotations

import enum
from collections import Counter, defaultdict

from repro.isa.trace import Trace

REGION_LINES = 16
DENSE_THRESHOLD = 6
MIN_INSTANCES = 8
STRIDED_FRACTION = 0.75
DENSITY_WINDOW = 512
"""Accesses after which an idle region's generation ends."""


class Category(enum.Enum):
    LHF = "LHF"
    MHF = "MHF"
    HHF = "HHF"


class OfflineClassifier:
    """Line-address -> category map built from one trace replay."""

    def __init__(self, trace: Trace,
                 min_instances: int = MIN_INSTANCES,
                 strided_fraction: float = STRIDED_FRACTION,
                 dense_threshold: int = DENSE_THRESHOLD,
                 density_window: int = DENSITY_WINDOW) -> None:
        self.min_instances = min_instances
        self.strided_fraction = strided_fraction
        self.dense_threshold = dense_threshold
        self.density_window = density_window
        self._lhf_lines: set[int] = set()
        self._mhf_lines: set[int] = set()
        self.strided_pcs: set[int] = set()
        self._build(trace)

    # ------------------------------------------------------------------
    def _build(self, trace: Trace) -> None:
        last_addr: dict[int, int] = {}
        delta_counts: dict[int, Counter] = defaultdict(Counter)
        instances: Counter = Counter()
        lines_by_pc: dict[int, set[int]] = defaultdict(set)
        # Windowed per-region generations: (current line set, last access
        # index); a region idle longer than the window starts over.
        generations: dict[int, tuple[set[int], int]] = {}
        dense_regions: set[int] = set()
        access_index = 0

        for record in trace.records:
            if not record.is_mem:
                continue
            pc = record.pc
            line = record.addr >> 6
            instances[pc] += 1
            lines_by_pc[pc].add(line)
            access_index += 1
            region = line // REGION_LINES
            if region not in dense_regions:
                generation = generations.get(region)
                if (
                    generation is None
                    or access_index - generation[1] > self.density_window
                ):
                    generation = (set(), access_index)
                lines, _ = generation
                lines.add(line)
                if len(lines) > self.dense_threshold:
                    dense_regions.add(region)
                    generations.pop(region, None)
                else:
                    generations[region] = (lines, access_index)
            previous = last_addr.get(pc)
            if previous is not None:
                delta = record.addr - previous
                if delta != 0:
                    delta_counts[pc][delta] += 1
            last_addr[pc] = record.addr

        # Strided PCs -> LHF lines.
        for pc, count in instances.items():
            if count < self.min_instances:
                continue
            deltas = delta_counts.get(pc)
            if not deltas:
                continue
            total = sum(deltas.values())
            dominant = deltas.most_common(1)[0][1]
            if total and dominant / total >= self.strided_fraction:
                self.strided_pcs.add(pc)
                self._lhf_lines.update(lines_by_pc[pc])

        # Dense regions -> MHF lines (minus LHF).
        for region in dense_regions:
            base = region * REGION_LINES
            for line in range(base, base + REGION_LINES):
                if line not in self._lhf_lines:
                    self._mhf_lines.add(line)

    # ------------------------------------------------------------------
    def category(self, line: int) -> Category:
        """Category of one cache-line address."""
        if line in self._lhf_lines:
            return Category.LHF
        if line in self._mhf_lines:
            return Category.MHF
        return Category.HHF

    def category_counts(self, lines) -> dict[Category, int]:
        """Histogram of categories over an iterable of line addresses."""
        counts = {c: 0 for c in Category}
        for line in lines:
            counts[self.category(line)] += 1
        return counts

    @property
    def lhf_lines(self) -> frozenset[int]:
        return frozenset(self._lhf_lines)

    @property
    def mhf_lines(self) -> frozenset[int]:
        return frozenset(self._mhf_lines)
