"""Plain-text rendering for experiment output (tables and figure series).

The paper's figures are bar charts and scatter plots; the harness prints
the same data as aligned text tables so results can be compared row by
row with the paper and diffed between runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 floatfmt: str = "{:.3f}") -> str:
    """Render an aligned text table."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    string_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(w) for v, w in zip(values, widths)).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in string_rows)
    return "\n".join(out)


def format_scatter(points: Iterable[tuple[str, float, float, float]],
                   x_label: str = "scope",
                   y_label: str = "accuracy") -> str:
    """Render (label, x, y, weight) scatter points as a table.

    The paper's scatter figures (1, 10, 13, 14) plot per-application dots
    with area proportional to a weight; this is the textual equivalent.
    """
    return format_table(
        ["app", x_label, y_label, "weight"],
        [(label, x, y, w) for label, x, y, w in points],
    )


def format_bars(series: dict[str, float], unit: str = "") -> str:
    """Render a name -> value bar series with a crude ASCII bar."""
    if not series:
        return "(empty)"
    peak = max(abs(v) for v in series.values()) or 1.0
    width = max(len(name) for name in series)
    lines = []
    for name, value in series.items():
        bar = "#" * max(0, int(24 * abs(value) / peak))
        lines.append(f"{name.ljust(width)}  {value:8.3f}{unit}  {bar}")
    return "\n".join(lines)
