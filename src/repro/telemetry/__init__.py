"""``repro.telemetry`` — observability for the simulation stack.

Three capabilities, all zero-overhead when not attached:

* **Lifecycle tracing** — :class:`Telemetry` collects named counters and
  per-prefetch lifecycle events (trained / issued / filtered /
  dropped_mshr / dropped_dram / filled / first_use / evicted_unused /
  pollution_hit) emitted by the hierarchy, the core, the DRAM
  controller, and the TPC coordinator; exportable as JSONL and Chrome
  ``trace_event`` JSON.
* **Time-series sampling** — :class:`TimeSeriesSampler` snapshots IPC,
  MPKI, MSHR occupancy, DRAM queue depth, and per-component accuracy
  every N instructions.
* **Run manifests** — :class:`RunManifest` provenance stamps
  (workload, prefetcher spec, config tag, git SHA, counter snapshot)
  serialized under ``runs/<run_id>/manifest.json``.

See ``docs/observability.md`` for the full schema and CLI walkthrough.
"""

from repro.telemetry import events
from repro.telemetry.chrome import chrome_trace, write_chrome
from repro.telemetry.events import KINDS, LifecycleEvent
from repro.telemetry.hub import Telemetry
from repro.telemetry.manifest import (
    RunManifest,
    build_manifest,
    current_git_sha,
    read_manifest,
    write_manifest,
)
from repro.telemetry.sampler import Sample, TimeSeriesSampler
from repro.telemetry.trace_io import (
    filter_events,
    normalize_record,
    read_jsonl,
    summarize,
    write_jsonl,
)

__all__ = [
    "events",
    "KINDS",
    "LifecycleEvent",
    "Telemetry",
    "TimeSeriesSampler",
    "Sample",
    "RunManifest",
    "build_manifest",
    "write_manifest",
    "read_manifest",
    "current_git_sha",
    "chrome_trace",
    "write_chrome",
    "write_jsonl",
    "read_jsonl",
    "filter_events",
    "normalize_record",
    "summarize",
]
