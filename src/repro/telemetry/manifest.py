"""Run manifests: provenance stamps for every simulation result.

A manifest answers "what exactly produced this number" months later:
workload, prefetcher (both display name and the runner's stable spec
key), configuration tag, the git SHA of the tree that ran, headline
metrics, and — when telemetry was attached — the full counter snapshot.

``simulate()`` stamps one onto every ``SimulationResult``; the
experiment runner and the ``profile`` CLI verb additionally serialize
them to ``runs/<run_id>/manifest.json``.  The run id is a content hash,
so re-running an identical configuration lands in the same directory
instead of littering one per invocation.
"""

from __future__ import annotations

import hashlib
import json
import re
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

MANIFEST_VERSION = 1

_GIT_SHA_SENTINEL = "unresolved"
_git_sha_cache: str | None = _GIT_SHA_SENTINEL


def current_git_sha() -> str | None:
    """HEAD commit of the repo containing this file; ``None`` outside git.

    Resolved by one subprocess call per process, then cached — manifests
    are stamped on every ``simulate()`` call.
    """
    global _git_sha_cache
    if _git_sha_cache == _GIT_SHA_SENTINEL:
        try:
            _git_sha_cache = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True, text=True, timeout=10, check=True,
            ).stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            _git_sha_cache = None
    return _git_sha_cache


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "run"


@dataclass
class RunManifest:
    """Everything needed to identify and audit one simulation run."""

    workload: str
    prefetcher: str
    spec: str                      # the runner's stable cache key
    config_tag: str
    git_sha: str | None
    metrics: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    kernel: str = "generic"
    version: int = MANIFEST_VERSION

    @property
    def run_id(self) -> str:
        """Deterministic id: slugged identity + content digest.

        The replay-kernel variant is excluded from the digest: kernels
        are bit-identical by contract, so specialized and generic runs
        of the same configuration share a run directory.
        """
        payload = self.as_dict(with_id=False)
        payload.pop("kernel", None)
        payload = json.dumps(payload, sort_keys=True)
        digest = hashlib.sha1(payload.encode()).hexdigest()[:10]
        return f"{_slug(self.workload)}__{_slug(self.spec)}__{digest}"

    def as_dict(self, with_id: bool = True) -> dict:
        record = {
            "version": self.version,
            "workload": self.workload,
            "prefetcher": self.prefetcher,
            "spec": self.spec,
            "config_tag": self.config_tag,
            "git_sha": self.git_sha,
            "kernel": self.kernel,
            "metrics": self.metrics,
            "counters": self.counters,
        }
        if with_id:
            record["run_id"] = self.run_id
        return record


def build_manifest(result, *, spec: str | None = None, config_tag: str = "",
                   telemetry=None) -> RunManifest:
    """Stamp a :class:`~repro.engine.system.SimulationResult`.

    ``result`` is duck-typed (avoids an import cycle with the engine).
    """
    return RunManifest(
        workload=result.workload,
        prefetcher=result.prefetcher,
        spec=spec if spec is not None else result.prefetcher,
        config_tag=config_tag,
        git_sha=current_git_sha(),
        kernel=getattr(result, "kernel", "generic"),
        metrics={
            "instructions": result.core.instructions,
            "cycles": result.cycles,
            "ipc": round(result.ipc, 4),
            "l1_mpki": round(result.l1_mpki, 3),
            "l2_mpki": round(result.l2_mpki, 3),
            "dram_traffic": result.dram_traffic,
            "prefetch_issued": result.prefetch.issued,
            "prefetch_filtered": result.prefetch.filtered,
            "prefetch_dropped_mshr": result.prefetch.dropped_mshr,
            "prefetch_dropped_dram": result.prefetch.dropped_dram,
            "useful_l1": result.l1d.useful_prefetches,
            "useful_l2": result.l2.useful_prefetches,
        },
        counters=telemetry.snapshot() if telemetry is not None else {},
    )


def write_manifest(manifest: RunManifest, runs_dir="runs") -> Path:
    """Serialize to ``<runs_dir>/<run_id>/manifest.json``; returns the path."""
    run_dir = Path(runs_dir) / manifest.run_id
    run_dir.mkdir(parents=True, exist_ok=True)
    path = run_dir / "manifest.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def read_manifest(path) -> dict:
    """Load a manifest file back as a plain dict."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
