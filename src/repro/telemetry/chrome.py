"""Chrome ``trace_event`` export for about://tracing / Perfetto.

Maps the lifecycle trace onto the trace-viewer model:

* one process (pid 0) per simulated core,
* one thread per prefetcher component (plus one for untagged events),
  named via ``M``etadata events,
* ``issued`` events become complete (``X``) slices whose duration is the
  issue-to-fill latency — the viewer then shows prefetch memory-level
  parallelism directly,
* every other kind becomes an instant (``i``) event.

Cycles are written as microseconds (1 cycle = 1 us): absolute time is
meaningless in trace-viewer space and this keeps the UI zoomable.

:func:`fabric_chrome_trace` maps a *sweep's* fabric spans
(``runs/<id>/spans.jsonl``, see :mod:`repro.obs`) onto the same model:
one lane per pool worker (lane 0 is the parent — trace warms, cache
traffic, merges), cells and fused units as ``X`` slices in wall-clock
microseconds.  ``repro trace <run>`` writes it; open in
ui.perfetto.dev.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.telemetry.events import ISSUED

_UNTAGGED = "(untagged)"


def chrome_trace(events: Iterable) -> dict:
    """Build the ``{"traceEvents": [...]}`` object from an event stream."""
    tids: dict[str, int] = {}
    trace_events: list[dict] = []

    def tid_for(component: str | None) -> int:
        name = component if component is not None else _UNTAGGED
        tid = tids.get(name)
        if tid is None:
            tid = tids[name] = len(tids) + 1
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
                "args": {"name": name},
            })
        return tid

    for event in events:
        if isinstance(event, dict):
            kind, cycle = event["kind"], event["cycle"]
            component, level = event.get("component"), event.get("level", 0)
            line, pc = event.get("line", -1), event.get("pc", -1)
            dur = event.get("dur", 0)
        else:
            kind, cycle = event.kind, event.cycle
            component, level = event.component, event.level
            line, pc, dur = event.line, event.pc, event.dur
        args = {"level": level}
        if line != -1:
            args["line"] = f"{line:#x}"
        if pc != -1:
            args["pc"] = f"{pc:#x}"
        record = {
            "name": kind,
            "cat": "prefetch",
            "pid": 0,
            "tid": tid_for(component),
            "ts": cycle,
            "args": args,
        }
        if kind == ISSUED:
            record["ph"] = "X"
            record["dur"] = max(dur, 1)
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(events: Iterable, path) -> int:
    """Write a Chrome trace JSON file; returns the trace-event count."""
    trace = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, separators=(",", ":"))
    return len(trace["traceEvents"])


def fabric_chrome_trace(spans: Iterable[dict]) -> dict:
    """Build a trace-viewer object from fabric span records.

    Each span's ``worker`` picks its lane (tid): 0 is the parent
    process, 1..N the pool workers, named via metadata events.  Spans
    are ``X`` slices on a wall-clock axis rebased to the sweep's
    earliest start (Perfetto dislikes epoch-sized timestamps).
    """
    spans = [s for s in spans if "start" in s]
    base = min((s["start"] for s in spans), default=0.0)
    lanes: set[int] = set()
    trace_events: list[dict] = []
    for span in spans:
        worker = span.get("worker", 0)
        lanes.add(worker)
        workload = span.get("workload") or ""
        component = span.get("component") or ""
        if span.get("kind") == "cell" and workload:
            name = f"{workload}/{component}"
        elif workload:
            name = f"{span.get('kind')} {workload}"
        else:
            name = span.get("kind", "span")
        args = {"span": span.get("span"),
                "attempt": span.get("level", 0)}
        for key in ("kernel", "instructions", "cells", "hit", "error",
                    "reason", "queue_seconds"):
            if key in span:
                args[key] = span[key]
        trace_events.append({
            "name": name,
            "cat": "fabric",
            "ph": "X",
            "pid": 0,
            "tid": worker,
            "ts": round((span["start"] - base) * 1e6, 1),
            "dur": max(round(span.get("seconds", 0.0) * 1e6, 1), 1),
            "args": args,
        })
    metadata = [
        {"ph": "M", "name": "thread_name", "pid": 0, "tid": lane,
         "args": {"name": "parent" if lane == 0 else f"worker {lane}"}}
        for lane in sorted(lanes)
    ]
    return {"traceEvents": metadata + trace_events,
            "displayTimeUnit": "ms"}


def write_fabric_chrome(spans: Iterable[dict], path) -> int:
    """Write the fabric sweep trace; returns the slice count."""
    trace = fabric_chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, separators=(",", ":"))
    return sum(1 for e in trace["traceEvents"] if e["ph"] == "X")
