"""Chrome ``trace_event`` export for about://tracing / Perfetto.

Maps the lifecycle trace onto the trace-viewer model:

* one process (pid 0) per simulated core,
* one thread per prefetcher component (plus one for untagged events),
  named via ``M``etadata events,
* ``issued`` events become complete (``X``) slices whose duration is the
  issue-to-fill latency — the viewer then shows prefetch memory-level
  parallelism directly,
* every other kind becomes an instant (``i``) event.

Cycles are written as microseconds (1 cycle = 1 us): absolute time is
meaningless in trace-viewer space and this keeps the UI zoomable.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.telemetry.events import ISSUED

_UNTAGGED = "(untagged)"


def chrome_trace(events: Iterable) -> dict:
    """Build the ``{"traceEvents": [...]}`` object from an event stream."""
    tids: dict[str, int] = {}
    trace_events: list[dict] = []

    def tid_for(component: str | None) -> int:
        name = component if component is not None else _UNTAGGED
        tid = tids.get(name)
        if tid is None:
            tid = tids[name] = len(tids) + 1
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
                "args": {"name": name},
            })
        return tid

    for event in events:
        if isinstance(event, dict):
            kind, cycle = event["kind"], event["cycle"]
            component, level = event.get("component"), event.get("level", 0)
            line, pc = event.get("line", -1), event.get("pc", -1)
            dur = event.get("dur", 0)
        else:
            kind, cycle = event.kind, event.cycle
            component, level = event.component, event.level
            line, pc, dur = event.line, event.pc, event.dur
        args = {"level": level}
        if line != -1:
            args["line"] = f"{line:#x}"
        if pc != -1:
            args["pc"] = f"{pc:#x}"
        record = {
            "name": kind,
            "cat": "prefetch",
            "pid": 0,
            "tid": tid_for(component),
            "ts": cycle,
            "args": args,
        }
        if kind == ISSUED:
            record["ph"] = "X"
            record["dur"] = max(dur, 1)
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(events: Iterable, path) -> int:
    """Write a Chrome trace JSON file; returns the trace-event count."""
    trace = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, separators=(",", ":"))
    return len(trace["traceEvents"])
