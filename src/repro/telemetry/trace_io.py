"""JSONL reading/writing/filtering for lifecycle traces.

The on-disk format is one JSON object per line with the fixed key set of
:meth:`~repro.telemetry.events.LifecycleEvent.as_dict` — greppable,
streamable, and diffable.  Readers accept both live ``LifecycleEvent``
objects and dicts loaded back from disk, so the same filters serve the
CLI (``python -m repro events``) and in-process analysis.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, Iterator


def _field(event, name: str):
    if isinstance(event, dict):
        return event.get(name)
    return getattr(event, name)


def write_jsonl(events: Iterable, path) -> int:
    """Write events as JSON Lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            record = event if isinstance(event, dict) else event.as_dict()
            fh.write(json.dumps(record, separators=(",", ":")))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path) -> Iterator[dict]:
    """Yield event dicts from a JSONL trace file (blank lines skipped)."""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def normalize_record(record: dict) -> dict:
    """Adapt a matrix-journal record to the lifecycle key set.

    The resumable-matrix journal (:mod:`repro.faults.journal`) stores
    ``status/workload/spec/tag/attempts/seconds/kernel`` lines; mapping
    them onto the lifecycle keys (``kind=cell_<status>``,
    ``component=spec``, ``level=attempts``, ``dur=seconds``, matching
    the fault-log field conventions of docs/robustness.md) lets
    ``python -m repro events`` read a journal file directly and
    attribute per-cell timings to the replay kernel that produced them.
    Lifecycle records pass through untouched.
    """
    if "cycle" in record:
        return record
    out = dict(record)
    status = out.pop("status", None)
    if "kind" not in out:
        out["kind"] = f"cell_{status}" if status else "record"
    if out.get("component") is None:
        out["component"] = out.get("spec")
    out.setdefault("cycle", 0)
    out.setdefault("level", out.get("attempts", 0))
    out.setdefault("line", -1)
    out.setdefault("pc", -1)
    out.setdefault("dur", out.get("seconds", 0))
    return out


def filter_events(events: Iterable, *, kind: str | None = None,
                  component: str | None = None, pc: int | None = None,
                  line: int | None = None, level: int | None = None,
                  min_cycle: int | None = None,
                  max_cycle: int | None = None) -> Iterator:
    """Lazily filter an event stream on any combination of tags."""
    for event in events:
        if kind is not None and _field(event, "kind") != kind:
            continue
        if component is not None and _field(event, "component") != component:
            continue
        if pc is not None and _field(event, "pc") != pc:
            continue
        if line is not None and _field(event, "line") != line:
            continue
        if level is not None and _field(event, "level") != level:
            continue
        cycle = _field(event, "cycle")
        if min_cycle is not None and cycle < min_cycle:
            continue
        if max_cycle is not None and cycle > max_cycle:
            continue
        yield event


def summarize(events: Iterable) -> dict:
    """Aggregate a stream: totals by kind, by component, and cycle span.

    Returns ``{"total", "by_kind", "by_component", "first_cycle",
    "last_cycle"}``; the Counters are plain dicts sorted by count.
    """
    by_kind: Counter = Counter()
    by_component: Counter = Counter()
    by_kernel: Counter = Counter()
    first = None
    last = None
    total = 0
    for event in events:
        total += 1
        by_kind[_field(event, "kind")] += 1
        component = _field(event, "component")
        if component is not None:
            by_component[component] += 1
        if isinstance(event, dict):
            kernel = event.get("kernel")
            if kernel:
                by_kernel[kernel] += 1
        cycle = _field(event, "cycle")
        if first is None or cycle < first:
            first = cycle
        if last is None or cycle > last:
            last = cycle
    summary = {
        "total": total,
        "by_kind": dict(by_kind.most_common()),
        "by_component": dict(by_component.most_common()),
        "first_cycle": first,
        "last_cycle": last,
    }
    if by_kernel:
        # Journal records carry the replay-kernel variant; lifecycle
        # events do not, so the key only appears when it has content.
        summary["by_kernel"] = dict(by_kernel.most_common())
    return summary
