r"""Prefetch lifecycle event vocabulary.

Every prefetch the system attempts moves through a small state machine;
the telemetry layer records each transition as one event so a trace can
be replayed, filtered, and reconciled against the aggregate counters:

```
           trained                    (coordinator claims the trigger PC)
              |
            issued ----------------.  (hierarchy accepted the request)
           /  |   \                 \
    filtered  |  dropped_mshr   dropped_dram
              v
            filled                    (data arrived at the target level)
           /  |   \
   first_use  |  evicted_unused
              v
        pollution_hit                 (a shadow-tag miss blamed on prefetching)
```

``filtered`` / ``dropped_mshr`` / ``dropped_dram`` are terminal outcomes
of an *attempt* (the request never becomes a fill); ``first_use`` /
``evicted_unused`` are terminal outcomes of a *fill*.  ``pollution_hit``
is attributed to the demand access that missed because prefetched lines
crowded the set, not to a single prefetch.

Two controller-internal kinds round out the DRAM picture:
``dram_queue_stall`` (a demand request waited for a full channel queue)
and ``dram_drop_victim`` (the controller evicted an already-queued
prefetch to admit a new request, Sec. V-C1's low-priority-first policy).

Events are plain slotted objects — millions may be recorded per run —
tagged with component, cache level, trigger PC, line address, and cycle.
"""

from __future__ import annotations

TRAINED = "trained"
ISSUED = "issued"
FILTERED = "filtered"
DROPPED_MSHR = "dropped_mshr"
DROPPED_DRAM = "dropped_dram"
FILLED = "filled"
FIRST_USE = "first_use"
EVICTED_UNUSED = "evicted_unused"
POLLUTION_HIT = "pollution_hit"
DRAM_QUEUE_STALL = "dram_queue_stall"
DRAM_DROP_VICTIM = "dram_drop_victim"

KINDS = (
    TRAINED,
    ISSUED,
    FILTERED,
    DROPPED_MSHR,
    DROPPED_DRAM,
    FILLED,
    FIRST_USE,
    EVICTED_UNUSED,
    POLLUTION_HIT,
    DRAM_QUEUE_STALL,
    DRAM_DROP_VICTIM,
)

TERMINAL_ATTEMPT_KINDS = (FILTERED, DROPPED_MSHR, DROPPED_DRAM)
TERMINAL_FILL_KINDS = (FIRST_USE, EVICTED_UNUSED)


class LifecycleEvent:
    """One lifecycle transition.

    ``line`` and ``pc`` are ``-1`` when unknown (e.g. the DRAM controller
    does not see trigger PCs); ``level`` is 0 when the event is not tied
    to a cache level; ``dur`` is nonzero only for ``issued`` events, where
    it is the issue-to-fill latency in cycles (drives the Chrome trace's
    duration bars).
    """

    __slots__ = ("kind", "cycle", "line", "component", "level", "pc", "dur")

    def __init__(self, kind: str, cycle: int, line: int = -1,
                 component: str | None = None, level: int = 0,
                 pc: int = -1, dur: int = 0) -> None:
        self.kind = kind
        self.cycle = cycle
        self.line = line
        self.component = component
        self.level = level
        self.pc = pc
        self.dur = dur

    def as_dict(self) -> dict:
        """JSONL schema: one flat object, fixed key set."""
        return {
            "kind": self.kind,
            "cycle": self.cycle,
            "line": self.line,
            "component": self.component,
            "level": self.level,
            "pc": self.pc,
            "dur": self.dur,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LifecycleEvent({self.kind}, cycle={self.cycle}, "
            f"line={self.line:#x}, {self.component}, L{self.level})"
        )
