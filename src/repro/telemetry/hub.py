"""The telemetry hub: named counters plus a structured event sink.

One :class:`Telemetry` object is shared by every emitter in a simulation
(hierarchy, core, DRAM controller, coordinator).  The design contract is
*zero overhead when absent*: emitters hold ``telemetry = None`` by
default and guard every emission with an ``is not None`` check, so a run
without telemetry executes the exact seed code path and produces
bit-identical timing.

Counters are free-form names; :meth:`emit` maintains two automatically
for every event — ``<kind>`` and ``<kind>.<component>`` — which is what
the reconciliation check and the per-component accuracy sampler consume.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import TYPE_CHECKING, Iterable

from repro.telemetry.events import (
    DROPPED_DRAM,
    DROPPED_MSHR,
    FILTERED,
    ISSUED,
    LifecycleEvent,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.sampler import TimeSeriesSampler


class Telemetry:
    """Hub collecting counters, lifecycle events, and samples for one run.

    Parameters
    ----------
    record_events:
        When False, only counters (and the sampler, if any) are kept —
        for long runs where the per-event list would be too large.
    sampler:
        Optional :class:`~repro.telemetry.sampler.TimeSeriesSampler`;
        the core binds and drives it when the telemetry is attached.
    """

    def __init__(self, *, record_events: bool = True,
                 sampler: "TimeSeriesSampler | None" = None) -> None:
        self.counters: Counter = Counter()
        self.events: list[LifecycleEvent] = []
        self.record_events = record_events
        self.sampler = sampler

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, cycle: int, *, line: int = -1,
             component: str | None = None, level: int = 0,
             pc: int = -1, dur: int = 0) -> None:
        """Record one lifecycle transition (see :mod:`.events`)."""
        counters = self.counters
        counters[kind] += 1
        if component is not None:
            counters[kind + "." + component] += 1
        if self.record_events:
            self.events.append(
                LifecycleEvent(kind, cycle, line, component, level, pc, dur)
            )

    def incr(self, name: str, amount: int = 1) -> None:
        """Bump a named counter outside the event vocabulary."""
        self.counters[name] += amount

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """Counter state as a plain sorted dict (manifest serialization)."""
        return dict(sorted(self.counters.items()))

    def components(self) -> list[str]:
        """Component tags seen so far (from ``issued.<component>`` keys)."""
        prefix = ISSUED + "."
        return sorted(
            key[len(prefix):] for key in self.counters if key.startswith(prefix)
        )

    def reconcile(self, prefetch_stats) -> dict[str, tuple[int, int]]:
        """Check event counts against hierarchy ``PrefetchStats``.

        Returns ``{kind: (event_count, stats_count)}`` for every kind
        that disagrees; an empty dict means the trace and the aggregate
        counters tell the same story.
        """
        expected = {
            ISSUED: prefetch_stats.issued,
            FILTERED: prefetch_stats.filtered,
            DROPPED_MSHR: prefetch_stats.dropped_mshr,
            DROPPED_DRAM: prefetch_stats.dropped_dram,
        }
        return {
            kind: (self.count(kind), stat)
            for kind, stat in expected.items()
            if self.count(kind) != stat
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def write_jsonl(self, path) -> int:
        """Write the event list as JSON Lines; returns the event count."""
        from repro.telemetry.trace_io import write_jsonl

        return write_jsonl(self.events, path)

    def write_chrome(self, path) -> int:
        """Write a Chrome ``trace_event`` file for about://tracing."""
        from repro.telemetry.chrome import write_chrome

        return write_chrome(self.events, path)

    def summary_rows(self) -> list[tuple[str, int]]:
        """(counter, value) rows for the CLI table, kinds first."""
        snap = self.snapshot()
        plain = [(k, v) for k, v in snap.items() if "." not in k]
        tagged = [(k, v) for k, v in snap.items() if "." in k]
        return plain + tagged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Telemetry({len(self.events)} events, "
            f"{len(self.counters)} counters)"
        )


def summarize_events(events: Iterable) -> dict:
    """Aggregate an event stream (objects or JSONL dicts); see trace_io."""
    from repro.telemetry.trace_io import summarize

    return summarize(events)


def dump_counters(counters: dict, path) -> None:
    """Write a counter snapshot as pretty JSON (debug helper)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(dict(sorted(counters.items())), fh, indent=2)
        fh.write("\n")
