"""Time-series sampling: phase-resolved system state every N instructions.

The whole-run aggregates answer *whether* a prefetcher won; the sampler
answers *when* — warmup, phase changes, queue-pressure episodes.  Every
``interval`` retired instructions it snapshots:

* window IPC (instructions / cycles within the window),
* window L1/L2 MPKI (demand misses per kilo-instruction),
* instantaneous L1/L2 MSHR occupancy and DRAM queue depth,
* window prefetch issue/first-use counts and per-component accuracy
  (derived from the telemetry hub's ``issued.<c>`` / ``first_use.<c>``
  counters, the same stream :mod:`repro.analysis.windows` consumes).

The sampler is bound by :meth:`repro.engine.ooo.OoOCore.attach_telemetry`
and driven from the core's retire loop; it never mutates simulation
state, so sampled and unsampled runs retire identical cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Sample:
    """One row of the time series (cumulative positions, window rates)."""

    index: int
    instructions: int          # cumulative retired instructions
    cycle: int                 # core commit cycle at sample time
    ipc: float                 # window IPC
    l1_mpki: float             # window L1 demand MPKI
    l2_mpki: float             # window L2 demand MPKI
    mshr_l1: int               # instantaneous occupancy
    mshr_l2: int
    dram_queue: int            # instantaneous depth, all channels
    issued: int                # window prefetch issues
    first_uses: int            # window prefetch first uses
    component_accuracy: dict[str, float] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Window-level used/issued across all components."""
        return self.first_uses / self.issued if self.issued else 0.0

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "instructions": self.instructions,
            "cycle": self.cycle,
            "ipc": round(self.ipc, 4),
            "l1_mpki": round(self.l1_mpki, 3),
            "l2_mpki": round(self.l2_mpki, 3),
            "mshr_l1": self.mshr_l1,
            "mshr_l2": self.mshr_l2,
            "dram_queue": self.dram_queue,
            "issued": self.issued,
            "first_uses": self.first_uses,
            "component_accuracy": {
                k: round(v, 4) for k, v in self.component_accuracy.items()
            },
        }


class TimeSeriesSampler:
    """Samples core + hierarchy + telemetry state every N instructions."""

    def __init__(self, interval: int = 8192) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval}")
        self.interval = interval
        self.samples: list[Sample] = []
        self._core = None
        self._hierarchy = None
        self._telemetry = None
        self._pending = 0
        # Window baselines (previous sample's cumulative values).
        self._prev_instructions = 0
        self._prev_cycle = 0
        self._prev_l1_misses = 0
        self._prev_l2_misses = 0
        self._prev_counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    def bind(self, core, hierarchy, telemetry) -> None:
        """Attach to one run; called by ``OoOCore.attach_telemetry``."""
        self._core = core
        self._hierarchy = hierarchy
        self._telemetry = telemetry
        self._pending = 0
        self._prev_instructions = core.stats.instructions
        self._prev_cycle = core.stats.cycles
        self._prev_l1_misses = hierarchy.l1d.stats.demand_misses
        self._prev_l2_misses = hierarchy.l2.stats.demand_misses
        self._prev_counters = dict(telemetry.counters)

    def on_instruction(self) -> None:
        """Hot-path hook: one retired instruction."""
        self._pending += 1
        if self._pending >= self.interval:
            self._pending = 0
            self._take_sample()

    # ------------------------------------------------------------------
    def _take_sample(self) -> None:
        core, hierarchy = self._core, self._hierarchy
        stats = core.stats
        now = stats.cycles
        instructions = stats.instructions
        d_instr = instructions - self._prev_instructions
        d_cycle = now - self._prev_cycle
        d_l1 = hierarchy.l1d.stats.demand_misses - self._prev_l1_misses
        d_l2 = hierarchy.l2.stats.demand_misses - self._prev_l2_misses

        counters = self._telemetry.counters
        prev = self._prev_counters

        def delta(name: str) -> int:
            return counters.get(name, 0) - prev.get(name, 0)

        accuracy = {}
        for component in self._telemetry.components():
            issued_c = delta("issued." + component)
            if issued_c:
                accuracy[component] = (
                    delta("first_use." + component) / issued_c
                )

        self.samples.append(Sample(
            index=len(self.samples),
            instructions=instructions,
            cycle=now,
            ipc=d_instr / d_cycle if d_cycle else 0.0,
            l1_mpki=1000.0 * d_l1 / d_instr if d_instr else 0.0,
            l2_mpki=1000.0 * d_l2 / d_instr if d_instr else 0.0,
            mshr_l1=hierarchy.mshr_occupancy(1, now),
            mshr_l2=hierarchy.mshr_occupancy(2, now),
            dram_queue=hierarchy.dram.queue_depth(now),
            issued=delta("issued"),
            first_uses=delta("first_use"),
            component_accuracy=accuracy,
        ))
        self._prev_instructions = instructions
        self._prev_cycle = now
        self._prev_l1_misses = hierarchy.l1d.stats.demand_misses
        self._prev_l2_misses = hierarchy.l2.stats.demand_misses
        self._prev_counters = dict(counters)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def series(self, metric: str) -> list[tuple[float, float]]:
        """(instructions, value) points for one Sample field/property."""
        return [
            (float(s.instructions), float(getattr(s, metric)))
            for s in self.samples
        ]

    def to_svg(self, metrics: tuple[str, ...] = ("ipc", "l1_mpki", "accuracy"),
               title: str = "time series") -> str:
        """Render selected metrics as an SVG line chart."""
        from repro.analysis.svgplot import lines_svg

        return lines_svg(
            {metric: self.series(metric) for metric in metrics},
            title=title, x_label="instructions", y_label="value",
        )

    def as_dicts(self) -> list[dict]:
        return [sample.as_dict() for sample in self.samples]
