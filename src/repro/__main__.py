"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``   run one workload under one prefetcher and print the stats
``compare``    run one workload under several prefetchers side by side
``workloads``  list the registered workloads
``prefetchers`` list the registered prefetchers
``report``     regenerate every table/figure (see experiments.report_all)
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import format_table


def _cmd_simulate(args) -> None:
    from repro import make_prefetcher, simulate
    from repro.workloads import get_workload

    trace = get_workload(args.workload).trace()
    baseline = simulate(trace)
    result = simulate(trace, make_prefetcher(args.prefetcher))
    rows = [
        ("instructions", result.core.instructions),
        ("cycles", result.cycles),
        ("IPC", round(result.ipc, 3)),
        ("speedup vs no-prefetch", round(result.speedup_over(baseline), 3)),
        ("L1D misses", result.l1d.demand_misses),
        ("L1 MPKI", round(result.l1_mpki, 2)),
        ("prefetches issued", result.prefetch.issued),
        ("useful (L1)", result.l1d.useful_prefetches),
        ("useful (L2)", result.l2.useful_prefetches),
        ("DRAM traffic (lines)", result.dram_traffic),
        ("by component", dict(result.prefetch.by_component)),
    ]
    print(format_table(["metric", "value"], rows))


def _cmd_compare(args) -> None:
    from repro import make_prefetcher, simulate
    from repro.workloads import get_workload

    trace = get_workload(args.workload).trace()
    baseline = simulate(trace)
    rows = []
    for name in args.prefetchers:
        result = simulate(trace, make_prefetcher(name))
        rows.append(
            (
                name,
                round(result.speedup_over(baseline), 3),
                result.l1d.demand_misses,
                result.prefetch.issued,
                result.l1d.useful_prefetches,
                result.dram_traffic,
            )
        )
    print(format_table(
        ["prefetcher", "speedup", "L1 misses", "issued", "useful",
         "traffic"],
        rows,
    ))


def _cmd_workloads(args) -> None:
    from repro.workloads import all_suites

    for suite, workloads in sorted(all_suites().items()):
        print(f"{suite}:")
        for workload in sorted(workloads, key=lambda w: w.name):
            print(f"  {workload.name:28s} {workload.description}")


def _cmd_prefetchers(args) -> None:
    from repro import available_prefetchers, make_prefetcher

    for name in available_prefetchers():
        bits = make_prefetcher(name).storage_bits
        print(f"  {name:10s} {bits / 8 / 1024:7.2f} KB")


def _cmd_report(args) -> None:
    from repro.experiments import report_all

    report_all.main([args.output] if args.output else [])


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Division-of-labor composite prefetching reproduction",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate_parser = commands.add_parser(
        "simulate", help="run one workload under one prefetcher"
    )
    simulate_parser.add_argument("workload")
    simulate_parser.add_argument("prefetcher", nargs="?", default="tpc")
    simulate_parser.set_defaults(func=_cmd_simulate)

    compare_parser = commands.add_parser(
        "compare", help="compare several prefetchers on one workload"
    )
    compare_parser.add_argument("workload")
    compare_parser.add_argument(
        "prefetchers", nargs="*",
        default=["none", "bop", "spp", "sms", "tpc"],
    )
    compare_parser.set_defaults(func=_cmd_compare)

    workloads_parser = commands.add_parser(
        "workloads", help="list registered workloads"
    )
    workloads_parser.set_defaults(func=_cmd_workloads)

    prefetchers_parser = commands.add_parser(
        "prefetchers", help="list registered prefetchers"
    )
    prefetchers_parser.set_defaults(func=_cmd_prefetchers)

    report_parser = commands.add_parser(
        "report", help="regenerate every table and figure"
    )
    report_parser.add_argument("-o", "--output", default=None)
    report_parser.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    try:
        args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)


if __name__ == "__main__":
    main(sys.argv[1:])
