"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``   run one workload under one prefetcher and print the stats
``compare``    run one workload under several prefetchers side by side
``profile``    one run with full telemetry: lifecycle trace, time series,
               Chrome trace, and a run manifest (docs/observability.md)
``events``     filter/summarize a JSONL lifecycle trace file
``workloads``  list the registered workloads
``prefetchers`` list the registered prefetchers
``report``     regenerate every table/figure (see experiments.report_all)
``cache``      inspect or clear the on-disk result and trace caches
``fuzz``       cross-tier identity property sweep (stress suite +
               seeded adversarial traces); exit 1 on any violation
``bench``      wall-clock benchmark -> BENCH_simulator.json
``trace``      export a sweep's fabric spans as a Chrome trace (one lane
               per pool worker) plus a pool-utilization report
``metrics``    print a sweep's metrics registry (runs/<id>/metrics.json)

Sweeps that fan out (``--jobs`` != 1; force with ``REPRO_OBS=1``, off
with ``REPRO_OBS=0``) snapshot fabric observability to
``runs/<sweep-id>/spans.jsonl`` + ``metrics.json``; ``repro trace
latest`` and ``repro metrics latest`` read them back.

``simulate``/``compare``/``profile``/``report`` accept ``--jobs N``
(parallel fan-out, bit-identical to serial), ``--cache-dir DIR``
(persistent result reuse), and ``--journal-dir DIR`` (resumable
matrices: an interrupted run resumed with the same cache + journal
re-simulates nothing that completed); see docs/performance.md and
docs/robustness.md.  Parallel cells are fault-isolated with bounded
retry/backoff and an optional per-cell timeout (``REPRO_RETRY_MAX`` /
``REPRO_RETRY_BACKOFF`` / ``REPRO_CELL_TIMEOUT``); degradations are
JSONL-logged to ``runs/journal/faults.jsonl``, which ``repro events``
reads like any lifecycle trace.

Parallel sweeps share each compiled trace's numpy columns over named
shared-memory segments and dispatch fine-grained units with work
stealing (see docs/performance.md): ``REPRO_SHM=0`` disables segment
publication, ``REPRO_STEAL=0`` pins the legacy static FIFO chunks,
``REPRO_FUSION=0`` disables cell fusion, and ``REPRO_MP_CONTEXT``
selects the pool start method (``fork`` default / ``spawn`` /
``forkserver`` — figures are bit-identical across all of them).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import format_table


def _obs_for(args):
    """A FabricObs when this invocation should be observed, else None.

    Only the sweep verbs snapshot observability (``report`` wires its
    own through :mod:`repro.experiments.report_all`).
    """
    from repro.obs import FabricObs, obs_enabled

    if args.command not in ("simulate", "compare"):
        return None
    if not obs_enabled(getattr(args, "jobs", 1)):
        return None
    return FabricObs(label=args.command)


def _finish_obs(runner) -> None:
    """Snapshot the runner's obs (if any) under runs/ and say where."""
    if getattr(runner, "obs", None) is None:
        return
    out = runner.obs.write()
    print(f"fabric observability: {out}/spans.jsonl — inspect with "
          f"`repro trace {out.name}` / `repro metrics {out.name}`",
          file=sys.stderr)


def _runner_for(args):
    from repro.experiments.runner import ExperimentRunner

    return ExperimentRunner(jobs=getattr(args, "jobs", 1),
                            cache_dir=getattr(args, "cache_dir", None),
                            journal_dir=getattr(args, "journal_dir", None),
                            obs=_obs_for(args))


def _cmd_simulate(args) -> None:
    runner = _runner_for(args)
    runner.prefill([(args.workload, "none"),
                    (args.workload, args.prefetcher)])
    baseline = runner.baseline(args.workload)
    result = runner.run(args.workload, args.prefetcher)
    rows = [
        ("instructions", result.core.instructions),
        ("cycles", result.cycles),
        ("IPC", round(result.ipc, 3)),
        ("speedup vs no-prefetch", round(result.speedup_over(baseline), 3)),
        ("L1D misses", result.l1d.demand_misses),
        ("L1 MPKI", round(result.l1_mpki, 2)),
        ("prefetches issued", result.prefetch.issued),
        ("useful (L1)", result.l1d.useful_prefetches),
        ("useful (L2)", result.l2.useful_prefetches),
        ("DRAM traffic (lines)", result.dram_traffic),
        ("by component", dict(result.prefetch.by_component)),
    ]
    print(format_table(["metric", "value"], rows))
    _finish_obs(runner)


def _cmd_compare(args) -> None:
    # The runner memoizes on (workload, spec, tag): the no-prefetch
    # baseline is simulated once, not once per compared prefetcher.
    runner = _runner_for(args)
    runner.prefill([(args.workload, "none")]
                   + [(args.workload, name) for name in args.prefetchers])
    baseline = runner.baseline(args.workload)
    rows = []
    for name in args.prefetchers:
        result = runner.run(args.workload, name)
        rows.append(
            (
                name,
                round(result.speedup_over(baseline), 3),
                result.l1d.demand_misses,
                result.prefetch.issued,
                result.l1d.useful_prefetches,
                result.dram_traffic,
            )
        )
    print(format_table(
        ["prefetcher", "speedup", "L1 misses", "issued", "useful",
         "traffic"],
        rows,
    ))
    _finish_obs(runner)


def _cmd_profile(args) -> None:
    from repro.telemetry import Telemetry, TimeSeriesSampler, write_manifest

    sampler = TimeSeriesSampler(interval=args.sample_interval)
    telemetry = Telemetry(record_events=not args.counters_only,
                          sampler=sampler)
    # Profiled runs are never cached (the event stream is the product),
    # so --jobs/--cache-dir only matter for the runner's other uses; the
    # flags exist for CLI uniformity.
    runner = _runner_for(args)
    result = runner.run_profiled(args.workload, args.prefetcher, telemetry)

    mismatches = telemetry.reconcile(result.prefetch)
    rows = [
        ("instructions", result.core.instructions),
        ("cycles", result.cycles),
        ("IPC", round(result.ipc, 3)),
        ("events recorded", len(telemetry.events)),
        ("samples", len(sampler.samples)),
        ("reconciliation", "ok" if not mismatches else f"FAIL {mismatches}"),
    ]
    rows += telemetry.summary_rows()
    print(format_table(["metric", "value"], rows))

    if args.trace:
        count = telemetry.write_jsonl(args.trace)
        print(f"wrote {count} lifecycle events to {args.trace}")
    if args.chrome:
        count = telemetry.write_chrome(args.chrome)
        print(f"wrote {count} trace events to {args.chrome} "
              f"(load in about://tracing or ui.perfetto.dev)")
    if args.svg and sampler.samples:
        with open(args.svg, "w", encoding="utf-8") as fh:
            fh.write(sampler.to_svg(
                title=f"{args.workload} / {args.prefetcher}"
            ))
        print(f"wrote time-series chart to {args.svg}")
    if args.runs_dir:
        path = write_manifest(result.manifest, args.runs_dir)
        print(f"wrote manifest to {path}")
    if mismatches:
        sys.exit(1)


def _cmd_events(args) -> None:
    from repro.telemetry import (filter_events, normalize_record,
                                 read_jsonl, summarize)

    filters = dict(
        kind=args.kind,
        component=args.component,
        level=args.level,
        pc=int(args.pc, 0) if args.pc else None,
        line=int(args.line, 0) if args.line else None,
        min_cycle=args.min_cycle,
        max_cycle=args.max_cycle,
    )
    # normalize_record lets this verb read matrix-journal files too
    # (cell_ok/cell_failed records with per-cell kernel attribution).
    events = filter_events(
        (normalize_record(record) for record in read_jsonl(args.trace)),
        **filters)

    if args.list:
        shown = 0
        for event in events:
            kernel = event.get("kernel")
            print(
                f"{event['cycle']:>12}  {event['kind']:<16} "
                f"{event['component'] or '-':<10} L{event['level']} "
                f"line={event['line']:#x} pc={event['pc']:#x}"
                + (f" kernel={kernel}" if kernel else "")
            )
            shown += 1
            if args.limit and shown >= args.limit:
                break
        if not shown:
            print("no matching events")
        return

    summary = summarize(events)
    rows = [("total", summary["total"]),
            ("first cycle", summary["first_cycle"]),
            ("last cycle", summary["last_cycle"])]
    rows += [(f"kind {k}", v) for k, v in summary["by_kind"].items()]
    rows += [(f"component {k}", v)
             for k, v in summary["by_component"].items()]
    rows += [(f"kernel {k}", v)
             for k, v in summary.get("by_kernel", {}).items()]
    print(format_table(["metric", "value"], rows))


def _cmd_workloads(args) -> None:
    from repro.workloads import all_suites

    for suite, workloads in sorted(all_suites().items()):
        print(f"{suite}:")
        for workload in sorted(workloads, key=lambda w: w.name):
            print(f"  {workload.name:28s} {workload.description}")


def _cmd_prefetchers(args) -> None:
    from repro import available_prefetchers, make_prefetcher

    for name in available_prefetchers():
        bits = make_prefetcher(name).storage_bits
        print(f"  {name:10s} {bits / 8 / 1024:7.2f} KB")


def _cmd_report(args) -> None:
    from repro.experiments import report_all

    argv = [args.output] if args.output else []
    argv += ["--jobs", str(args.jobs)]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.journal_dir:
        argv += ["--journal-dir", args.journal_dir]
    report_all.main(argv)


def _cmd_cache(args) -> None:
    # One verb covers both on-disk stores: simulation results
    # (runs/cache) and compiled traces (runs/traces).  --results /
    # --traces scope the action; default is both.
    from repro.resultcache import DEFAULT_CACHE_DIR, ResultCache
    from repro.workloads.tracecache import TraceCache

    want_results = args.results or not args.traces
    want_traces = args.traces or not args.results
    result_cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    trace_cache = TraceCache(args.trace_dir)

    if args.action == "clear":
        scope = "stale" if args.stale else "all"
        if want_results:
            removed = result_cache.clear(stale_only=args.stale)
            print(f"removed {removed} result entries ({scope}) "
                  f"from {result_cache.root}")
        if want_traces:
            # Count the stale share before the files disappear, so the
            # message can attribute what a version bump orphaned.
            stale = trace_cache.stats()["stale_entries"]
            removed = trace_cache.clear(stale_only=args.stale)
            dropped = removed if args.stale else min(stale, removed)
            print(f"removed {removed} trace entries ({scope}; {dropped} "
                  f"from stale builder/format versions) "
                  f"from {trace_cache.root}")
        return

    rows = []
    if want_results:
        stats = result_cache.stats()
        rows += [
            ("results: root", stats["root"]),
            ("results: code version", stats["code_version"]),
            ("results: entries (current)", stats["entries"]),
            ("results: bytes (current)", stats["bytes"]),
            ("results: entries (stale)", stats["stale_entries"]),
            ("results: bytes (stale)", stats["stale_bytes"]),
            ("results: stale versions",
             ", ".join(stats["stale_versions"]) or "-"),
        ]
        rows += [(f"results: workload {name}", count)
                 for name, count in sorted(stats["by_workload"].items())]
    if want_traces:
        stats = trace_cache.stats()
        rows += [
            ("traces: root", stats["root"]),
            ("traces: code version", stats["trace_code_version"]),
            ("traces: entries (current)", stats["entries"]),
            ("traces: bytes (current)", stats["bytes"]),
            ("traces: entries (stale)", stats["stale_entries"]),
            ("traces: bytes (stale)", stats["stale_bytes"]),
            ("traces: stale versions",
             ", ".join(stats["stale_versions"]) or "-"),
        ]
        counters = stats["counters"]
        rows += [
            ("traces: builds (this process)", counters["builds"]),
            ("traces: disk hits (this process)", counters["disk_hits"]),
            ("traces: stale-format drops (this process)",
             counters["cache_stale_format"]),
            ("traces: derived builds (this process)",
             counters["derived_builds"]),
            ("traces: derived hits (this process)",
             counters["derived_hits"]),
        ]
    print(format_table(["metric", "value"], rows))


def _cmd_trace(args) -> None:
    from repro.obs import read_spans, resolve_run
    from repro.obs.report import format_pool_report, pool_report
    from repro.telemetry.chrome import write_fabric_chrome

    path = resolve_run(args.run)
    spans = read_spans(path)
    chrome = args.chrome or str(path.parent / "trace.json")
    count = write_fabric_chrome(spans, chrome)
    print(f"wrote {count} spans from {path} to {chrome} "
          f"(load in about://tracing or ui.perfetto.dev)",
          file=sys.stderr)
    print(format_pool_report(pool_report(spans)))


def _cmd_metrics(args) -> None:
    import json

    from repro.obs import read_metrics, resolve_run

    path = resolve_run(args.run, filename="metrics.json")
    snapshot = read_metrics(path)
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return
    rows = []
    rows += [(f"counter {name}", value)
             for name, value in snapshot.get("counters", {}).items()]
    rows += [(f"gauge {name}", value)
             for name, value in snapshot.get("gauges", {}).items()]
    for name, hist in snapshot.get("histograms", {}).items():
        rows.append((
            f"histogram {name}",
            f"n={hist['count']} mean={hist['mean']} "
            f"p50={hist['p50']} p95={hist['p95']} max={hist['max']}",
        ))
    if not rows:
        rows = [("(empty)", "-")]
    print(format_table(["metric", "value"], rows))


def _cmd_fuzz(args) -> None:
    import json

    from repro.log import get_logger
    from repro.workloads.fuzz import run_fuzz

    log = get_logger("fuzz")
    report = run_fuzz(
        seeds=args.seeds,
        stress=not args.no_stress,
        prefetchers=args.prefetchers or None,
        progress=log.info,
    )
    rows = [
        ("workloads", report["workloads"]),
        ("prefetchers", len(report["prefetchers"])),
        ("cells", report["cells"]),
        ("simulations", report["simulations"]),
        ("seconds", report["seconds"]),
        ("violations", len(report["violations"])),
    ]
    rows += [(f"kernel {name}", count)
             for name, count in sorted(report["kernels"].items())]
    print(format_table(["metric", "value"], rows))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote fuzz report to {args.output}")
    for violation in report["violations"]:
        log.error(
            "identity violation",
            workload=violation["workload"],
            prefetcher=violation["prefetcher"],
            invariant=violation["invariant"],
            kernel=violation["kernel"],
            reference=violation["reference_kernel"],
            fields=",".join(violation["fields"]),
        )
    if not report["ok"]:
        sys.exit(1)


def _cmd_bench(argv: list[str]) -> None:
    from repro import bench

    sys.exit(bench.main(argv))


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Division-of-labor composite prefetching reproduction",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_runner_flags(subparser) -> None:
        subparser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes (0 = one per CPU, default 1 = serial)",
        )
        subparser.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="persistent result cache (e.g. runs/cache)",
        )
        subparser.add_argument(
            "--journal-dir", default=None, metavar="DIR",
            help="resumable-matrix journal (e.g. runs/journal; pairs "
                 "with --cache-dir)",
        )

    simulate_parser = commands.add_parser(
        "simulate", help="run one workload under one prefetcher"
    )
    simulate_parser.add_argument("workload")
    simulate_parser.add_argument("prefetcher", nargs="?", default="tpc")
    add_runner_flags(simulate_parser)
    simulate_parser.set_defaults(func=_cmd_simulate)

    compare_parser = commands.add_parser(
        "compare", help="compare several prefetchers on one workload"
    )
    compare_parser.add_argument("workload")
    compare_parser.add_argument(
        "prefetchers", nargs="*",
        default=["none", "bop", "spp", "sms", "tpc"],
    )
    add_runner_flags(compare_parser)
    compare_parser.set_defaults(func=_cmd_compare)

    profile_parser = commands.add_parser(
        "profile",
        help="run with telemetry: lifecycle trace, time series, manifest",
    )
    profile_parser.add_argument("workload")
    profile_parser.add_argument("prefetcher", nargs="?", default="tpc")
    profile_parser.add_argument(
        "--trace", default=None, metavar="OUT.jsonl",
        help="write the lifecycle event trace as JSON Lines",
    )
    profile_parser.add_argument(
        "--chrome", default=None, metavar="OUT.json",
        help="write a Chrome trace_event file for about://tracing",
    )
    profile_parser.add_argument(
        "--svg", default=None, metavar="OUT.svg",
        help="write the sampled time series as an SVG line chart",
    )
    profile_parser.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="write runs/<id>/manifest.json under DIR",
    )
    profile_parser.add_argument(
        "--sample-interval", type=int, default=8192, metavar="N",
        help="instructions per time-series sample (default 8192)",
    )
    profile_parser.add_argument(
        "--counters-only", action="store_true",
        help="keep counters and samples but not the per-event list",
    )
    add_runner_flags(profile_parser)
    profile_parser.set_defaults(func=_cmd_profile)

    events_parser = commands.add_parser(
        "events", help="filter/summarize a JSONL lifecycle trace"
    )
    events_parser.add_argument("trace", help="JSONL file from profile --trace")
    events_parser.add_argument("--kind", default=None,
                               help="e.g. issued, first_use, dropped_mshr")
    events_parser.add_argument("--component", default=None,
                               help="e.g. T2, P1, C1")
    events_parser.add_argument("--pc", default=None,
                               help="trigger PC (0x... accepted)")
    events_parser.add_argument("--line", default=None,
                               help="line address (0x... accepted)")
    events_parser.add_argument("--level", type=int, default=None)
    events_parser.add_argument("--min-cycle", type=int, default=None)
    events_parser.add_argument("--max-cycle", type=int, default=None)
    events_parser.add_argument("--list", action="store_true",
                               help="print matching events, not a summary")
    events_parser.add_argument("--limit", type=int, default=50,
                               help="max events to list (0 = no limit)")
    events_parser.set_defaults(func=_cmd_events)

    workloads_parser = commands.add_parser(
        "workloads", help="list registered workloads"
    )
    workloads_parser.set_defaults(func=_cmd_workloads)

    prefetchers_parser = commands.add_parser(
        "prefetchers", help="list registered prefetchers"
    )
    prefetchers_parser.set_defaults(func=_cmd_prefetchers)

    report_parser = commands.add_parser(
        "report", help="regenerate every table and figure"
    )
    report_parser.add_argument("-o", "--output", default=None)
    add_runner_flags(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    cache_parser = commands.add_parser(
        "cache", help="inspect or clear the on-disk result/trace caches"
    )
    cache_parser.add_argument("action", choices=["stats", "clear"],
                              nargs="?", default="stats")
    cache_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache root (default runs/cache)",
    )
    cache_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="trace-cache root (default runs/traces)",
    )
    cache_parser.add_argument(
        "--results", action="store_true",
        help="only the simulation-result cache",
    )
    cache_parser.add_argument(
        "--traces", action="store_true",
        help="only the compiled-trace cache",
    )
    cache_parser.add_argument(
        "--stale", action="store_true",
        help="with clear: only entries from other code versions",
    )
    cache_parser.set_defaults(func=_cmd_cache)

    trace_parser = commands.add_parser(
        "trace",
        help="export a sweep's fabric spans as a Chrome trace + "
             "pool-utilization report",
    )
    trace_parser.add_argument(
        "run", nargs="?", default="latest",
        help="run id under runs/, a run directory, a spans.jsonl path, "
             "or 'latest' (default)",
    )
    trace_parser.add_argument(
        "--chrome", default=None, metavar="OUT.json",
        help="Chrome trace_event output (default <run>/trace.json)",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    metrics_parser = commands.add_parser(
        "metrics", help="print a sweep's metrics registry"
    )
    metrics_parser.add_argument(
        "run", nargs="?", default="latest",
        help="run id under runs/, a run directory, a metrics.json path, "
             "or 'latest' (default)",
    )
    metrics_parser.add_argument(
        "--json", action="store_true",
        help="print the raw JSON snapshot instead of a table",
    )
    metrics_parser.set_defaults(func=_cmd_metrics)

    fuzz_parser = commands.add_parser(
        "fuzz",
        help="cross-tier identity property sweep: stress suite + "
             "seeded adversarial traces, exit 1 on any violation",
    )
    fuzz_parser.add_argument(
        "--seeds", type=int, default=25, metavar="N",
        help="fuzzed traces to generate and check (default 25)",
    )
    fuzz_parser.add_argument(
        "--no-stress", action="store_true",
        help="skip the stress suite, check only fuzzed seeds",
    )
    fuzz_parser.add_argument(
        "--prefetchers", nargs="*", default=None, metavar="NAME",
        help="prefetchers to sweep (default: the whole registry)",
    )
    fuzz_parser.add_argument(
        "-o", "--output", default=None, metavar="OUT.json",
        help="write the full JSON report (violation details included)",
    )
    fuzz_parser.set_defaults(func=_cmd_fuzz)

    commands.add_parser(
        "bench",
        help="wall-clock benchmark -> BENCH_simulator.json "
             "(see repro.bench for flags)",
    )

    # argparse.REMAINDER does not pass leading optionals through a
    # subparser, so bench owns its whole argument list directly.
    argv = argv if argv is not None else sys.argv[1:]
    if argv[:1] == ["bench"]:
        _cmd_bench(argv[1:])
        return

    args = parser.parse_args(argv)
    try:
        args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)


if __name__ == "__main__":
    main(sys.argv[1:])
