"""Parent-side work-stealing scheduler for fused simulation units.

The static scheduler (PR 5) carved the matrix into workload-affine
chunks of ``ceil(cells / (workers * 2))`` and dispatched them FIFO — a
shape that loses exactly when cells are imbalanced: one worker drags a
chunk of slow cells while its lane-mates idle (the straggler report's
``unit_imbalance`` metric was built to show this).  With shared-memory
traces (:mod:`repro.parallel.shm`) the per-unit trace-load cost is
gone, so units can be fine-grained and redistributed freely.

The scheduler keeps one **home deque per workload** and tracks one
virtual *lane* per in-flight slot (the pool's submission window equals
the worker count when a timeout is set, so slots approximate workers):

* a freed lane first takes the **head of its home queue** — the
  workload it just replayed, whose trace its worker has memoized (and
  whose replay plans are warm);
* an idle lane whose home queue has nothing ready **steals from the
  tail of the longest other queue** — the classic work-stealing
  discipline: owners consume their queue from the head, thieves take
  from the opposite end of the deepest backlog;
* retried cells re-enter their home queue as singleton entries with a
  backoff ``ready_at``; entries not yet ready are skipped by owner and
  thief alike.

Every steal is counted (total, per lane) together with the stolen
unit's queue wait — the latency a static schedule would have added to
the critical path.  :mod:`repro.parallel` turns these into ``steal``
fabric spans, ``pool.steals`` metrics, and the "steals" column of
``repro trace``'s pool report.

``REPRO_STEAL=0`` pins the legacy discipline: coarse static chunks
drained strictly FIFO, no stealing (the A/B escape hatch).
"""

from __future__ import annotations

import os
from collections import deque

STEAL_ENV = "REPRO_STEAL"


def stealing_enabled() -> bool:
    return os.environ.get(STEAL_ENV) != "0"


class StealScheduler:
    """Per-workload home queues with tail stealing for idle lanes.

    Entries are ``(unit, attempt, ready_at, enqueued)`` — the same
    tuple the flat pending deque used to hold; ``unit`` is a tuple of
    cell indices, ``ready_at`` a monotonic instant a retry's backoff
    expires at, ``enqueued`` when the entry entered its queue.
    """

    def __init__(self, fifo: bool = False) -> None:
        self.fifo = fifo
        self.queues: dict[str, deque] = {}
        self.order: list[str] = []      # first-seen workload order
        self.steals = 0
        self.steals_by_lane: dict[int, int] = {}
        self.steal_waits: list[float] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, workload: str, unit: tuple, attempt: int,
             ready_at: float, enqueued: float) -> None:
        queue = self.queues.get(workload)
        if queue is None:
            queue = self.queues[workload] = deque()
            self.order.append(workload)
        queue.append((unit, attempt, ready_at, enqueued))
        self._count += 1

    def next_ready_at(self, now: float) -> float | None:
        """Earliest backoff expiry among not-yet-ready entries."""
        waits = [entry[2]
                 for queue in self.queues.values()
                 for entry in queue if entry[2] > now]
        return min(waits) if waits else None

    # ------------------------------------------------------------------
    def pop(self, lane: int, home: str | None, now: float):
        """Next unit for ``lane``, or ``None`` when nothing is ready.

        Returns ``(entry, workload, steal_wait)`` where ``steal_wait``
        is ``None`` for an owned (or first-claim) unit and the stolen
        unit's queue wait in seconds for a steal.
        """
        if self.fifo:
            # Legacy discipline: strict submission order, never steal.
            for workload in self.order:
                picked = self._pop_ready(self.queues.get(workload),
                                         head=True, now=now)
                if picked is not None:
                    return picked, workload, None
            return None
        if home is not None:
            picked = self._pop_ready(self.queues.get(home),
                                     head=True, now=now)
            if picked is not None:
                return picked, home, None
        claim = home is None
        victim = self._pick_victim(home, now)
        if victim is None:
            return None
        workload, queue = victim
        picked = self._pop_ready(queue, head=claim, now=now)
        if picked is None:  # pragma: no cover - victim vetted above
            return None
        if claim:
            # A lane's first unit is an assignment, not a theft.
            return picked, workload, None
        wait = max(now - picked[3], 0.0)
        self.steals += 1
        self.steals_by_lane[lane] = self.steals_by_lane.get(lane, 0) + 1
        self.steal_waits.append(wait)
        return picked, workload, wait

    # ------------------------------------------------------------------
    def _pop_ready(self, queue, head: bool, now: float):
        """Remove and return the first ready entry from one end."""
        if not queue:
            return None
        indices = range(len(queue)) if head else range(len(queue) - 1, -1, -1)
        for index in indices:
            if queue[index][2] <= now:
                entry = queue[index]
                del queue[index]
                self._count -= 1
                return entry
        return None

    def _pick_victim(self, home, now: float):
        """The longest queue (other than ``home``) with a ready entry."""
        best = None
        best_depth = -1
        for workload in self.order:
            if workload == home:
                continue
            queue = self.queues.get(workload)
            if not queue or len(queue) <= best_depth:
                continue
            if any(entry[2] <= now for entry in queue):
                best = (workload, queue)
                best_depth = len(queue)
        return best
