"""Fault-tolerant parallel fan-out of independent simulations.

Every figure experiment walks a (workload x prefetcher spec x config
tag) matrix in which each cell is an independent, deterministic
simulation — the classic embarrassingly-parallel sweep shape.  This
module dispatches those cells over a **persistent** process pool and
merges the results **in submission order**, so the merged outcome is
bit-identical to running the same jobs serially.

Performance properties (PR 2-3, reworked by the shared-memory PR):

* **Persistent pool** — the executor is created once per process and
  reused across every ``run_jobs`` call.  ``shutdown_pool()`` runs at
  interpreter exit, or sooner if the worker count or the start method
  (``REPRO_MP_CONTEXT``: ``fork`` default, ``spawn``, ``forkserver``)
  changes.
* **Zero-copy trace sharing** — the parent publishes each warmed
  compiled trace's numpy columns (primary, derived, segment events,
  memory image) into named ``multiprocessing.shared_memory`` segments
  once (:mod:`repro.parallel.shm`); workers attach and rebuild the
  trace as ``frombuffer`` views — no re-deserialization, no reliance
  on fork-COW timing, identical under ``fork`` and ``spawn``.  The
  manifest entries ride the unit payloads; segments are unlinked at
  ``atexit``, on ``KeyboardInterrupt``, or via
  :func:`repro.parallel.shm.release_all`.  ``REPRO_SHM=0`` restores
  the legacy disk-cache path.
* **Slim result payloads** — workers pack the per-line footprint
  Counters and attempted-line sets into flat ``array('q')`` blobs
  (:func:`_pack_result`); the parent restores equal objects.  Each
  result also carries the replay-kernel variant that produced it
  (``SimulationResult.kernel``) for attribution.
* **Work-stealing dispatch** — pool-eligible cells are grouped by
  workload into fine-grained fused units (:func:`_fusion_units`) and
  scheduled by :class:`~repro.parallel.stealing.StealScheduler`: each
  in-flight slot is a lane with a home workload; a freed lane takes
  the head of its home queue (trace/plan affinity) and an idle lane
  steals from the tail of the deepest other queue, so one straggling
  workload can no longer strand its lane-mates idle.  Steals surface
  as ``steal`` spans, ``pool.steals`` metrics, and the straggler
  report's "steals" column.  ``REPRO_STEAL=0`` restores the legacy
  coarse FIFO chunks; ``REPRO_FUSION=0`` restores singleton dispatch.

Fault-tolerance properties (this layer; see docs/robustness.md):

* **Per-cell isolation** — a cell that raises is retried under the
  :class:`~repro.faults.RetryPolicy` (bounded attempts, deterministic
  exponential backoff) and, if it keeps failing, its slot holds a
  structured :class:`~repro.faults.CellFailure` instead of aborting the
  matrix.  ``run_jobs`` itself never raises for a cell-level problem.
* **Hung-worker replacement** — with ``policy.timeout_seconds`` set,
  cells are dispatched at most ``workers`` at a time so the per-cell
  wall clock is honest; a cell that overruns is declared timed out, the
  whole pool is forcibly replaced (:func:`kill_pool` — the only
  portable way to reclaim a stuck worker), innocent in-flight cells are
  resubmitted without an attempt penalty, and the timed-out cell
  retries fresh.
* **Worker-death recovery** — a broken pool (a worker OOM-killed or
  chaos-killed mid-cell) is detected, torn down, and replaced; all
  in-flight cells are rescheduled with one attempt consumed, and a cell
  that keeps losing workers gets one last in-parent serial attempt
  before being declared failed.
* **Deterministic chaos** — the worker entry point and the serial path
  run the :mod:`repro.faults.chaos` checkpoint, so injected kills and
  slowdowns exercise exactly these recovery paths in CI.
* **Timings always fill** — the ``timings`` dict is populated on every
  exit path (the old code left it empty when trace warming or the
  overlapped serial stragglers raised).

Correctness properties preserved from the serial path: every simulation
constructs its own prefetcher/hierarchy/DRAM state, completion order
never matters (results align with the job list), and specs that cannot
cross a process boundary fall back to serial execution in the parent.
Every degradation is counted and JSONL-logged via
:mod:`repro.faults.faultlog` (``python -m repro events`` reads it); the
records carry the cell's deterministic span id, so they correlate with
``repro trace`` output.

Observability (this PR; see docs/observability.md "Fabric"): pass an
``obs`` (:class:`repro.obs.FabricObs`) and the scheduler traces every
trace warm, fused unit, cell attempt, retry/backoff wait, pool rebuild,
and merge batch as spans.  Worker-side cell spans (wall start, duration,
kernel variant, instruction count, pid) travel back inside the slim
result payloads and are merged parent-side in deterministic order.
``obs=None`` — the default — executes the exact prior code path:
payloads, scheduling, and figures are bit-identical.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import time
import traceback
from array import array
from collections import Counter
from typing import Sequence

from repro.engine.config import SystemConfig
from repro.obs.spans import cell_span_id
from repro.parallel import shm
from repro.parallel.stealing import StealScheduler, stealing_enabled

SimJob = tuple  # (workload, spec, tag) — see ``normalize_job``

_EXECUTOR = None
_EXECUTOR_WORKERS = 0
_EXECUTOR_CONTEXT = ""
_SHUTDOWN_REGISTERED = False


def default_jobs() -> int:
    """Worker count when ``--jobs 0`` is given: one per CPU."""
    return os.cpu_count() or 1


MIN_POOL_CELLS = 4
"""Fewest pool-eligible cells for which a pool can beat in-process
serial execution (see :func:`serial_fallback_reason`)."""


def serial_fallback_reason(pool_cells: int, n_jobs: int) -> str | None:
    """Why a pool would lose to serial execution here, or ``None``.

    Two regimes where worker spawn + result pickling reliably cost more
    than the parallelism wins back: a host with at most two CPUs (the
    workers only time-slice cores the parent is already saturating —
    the measured ``repro bench`` outcome on such hosts was a 0.82x
    *slowdown*), and a matrix with fewer pool-eligible cells than
    :data:`MIN_POOL_CELLS` (spawn overhead is amortized over too little
    work).  Used by :func:`run_jobs` when the caller opts in via
    ``auto_serial=True``; callers that need real workers regardless —
    the chaos harness kills them on purpose — simply don't opt in.
    """
    cpus = os.cpu_count() or 1
    if cpus <= 2:
        return f"host has {cpus} cpu(s)"
    if pool_cells < MIN_POOL_CELLS:
        return (f"matrix has {pool_cells} pool-eligible cells "
                f"(< {MIN_POOL_CELLS})")
    return None


def normalize_job(job) -> tuple[str, object, str]:
    """Accept ``(workload, spec)`` or ``(workload, spec, tag)``."""
    if len(job) == 2:
        workload, spec = job
        return workload, spec, ""
    workload, spec, tag = job
    return workload, spec, tag


def _is_picklable(spec) -> bool:
    if isinstance(spec, str):
        return True
    try:
        pickle.dumps(spec)
        return True
    except Exception:
        return False


def _safe_spec_key(spec) -> str:
    """A cell-identity string that never raises (failure reporting)."""
    try:
        from repro.experiments.runner import spec_key

        return spec_key(spec)
    except Exception:
        return repr(spec)


# ----------------------------------------------------------------------
# Persistent pool
# ----------------------------------------------------------------------
def pool_workers() -> int:
    """Worker count of the live persistent pool (0 when none)."""
    return _EXECUTOR_WORKERS if _EXECUTOR is not None else 0


def shutdown_pool(wait: bool = True) -> None:
    """Tear down the persistent pool (no-op when none is running)."""
    global _EXECUTOR, _EXECUTOR_WORKERS
    executor = _EXECUTOR
    _EXECUTOR = None
    _EXECUTOR_WORKERS = 0
    if executor is not None:
        executor.shutdown(wait=wait)


def kill_pool() -> None:
    """Forcibly terminate the pool's workers and discard the executor.

    Used to replace a hung worker: ``Executor.shutdown`` waits for
    running calls, which is exactly what a stuck cell never allows, so
    the watchdog terminates the worker processes outright.  In-flight
    futures complete with ``BrokenProcessPool``; callers resubmit to a
    fresh pool.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS
    executor = _EXECUTOR
    _EXECUTOR = None
    _EXECUTOR_WORKERS = 0
    if executor is None:
        return
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # already gone
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def _worker_init() -> None:
    """Runs in every pool worker: lets chaos know kills are safe here."""
    from repro.faults import chaos

    chaos.mark_worker()


def _get_executor(workers: int):
    """The persistent pool, (re)created when size or context changes."""
    global _EXECUTOR, _EXECUTOR_WORKERS, _EXECUTOR_CONTEXT, \
        _SHUTDOWN_REGISTERED
    wanted = shm.mp_context_name()
    if _EXECUTOR is not None and (_EXECUTOR_WORKERS != workers
                                  or _EXECUTOR_CONTEXT != wanted):
        shutdown_pool()
    if _EXECUTOR is None:
        from concurrent.futures import ProcessPoolExecutor

        # REPRO_MP_CONTEXT selects the start method (default fork).
        # With shared-memory trace columns the choice is a startup-cost
        # knob, not a correctness one: spawn workers attach the same
        # segments fork workers inherit, and figures are bit-identical
        # either way (pinned by tests/test_shm_parallel.py).
        try:
            context = multiprocessing.get_context(wanted)
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        _EXECUTOR = ProcessPoolExecutor(max_workers=workers,
                                        mp_context=context,
                                        initializer=_worker_init)
        _EXECUTOR_WORKERS = workers
        _EXECUTOR_CONTEXT = wanted
        if not _SHUTDOWN_REGISTERED:
            atexit.register(shutdown_pool)
            _SHUTDOWN_REGISTERED = True
    return _EXECUTOR


# ----------------------------------------------------------------------
# Slim wire format
# ----------------------------------------------------------------------
def _pack_counter(counter) -> tuple[bytes, bytes]:
    return (array("q", counter.keys()).tobytes(),
            array("q", counter.values()).tobytes())


def _unpack_counter(packed: tuple[bytes, bytes]) -> Counter:
    keys = array("q")
    keys.frombytes(packed[0])
    values = array("q")
    values.frombytes(packed[1])
    counter: Counter = Counter()
    counter.update(dict(zip(keys.tolist(), values.tolist())))
    return counter


def _pack_lines(lines) -> bytes:
    return array("q", lines).tobytes()


def _unpack_lines(packed: bytes) -> set:
    lines = array("q")
    lines.frombytes(packed)
    return set(lines.tolist())


def _pack_result(result):
    """Strip the bulky per-line collections into flat array blobs.

    The pickled payload shrinks to the stats dataclasses plus
    per-component counters; the footprint Counters/sets — tens of
    thousands of boxed ints when pickled naively — travel as C buffers
    and are restored to equal objects by :func:`_unpack_result`.
    """
    core = result.core
    blobs = (
        _pack_counter(result.miss_lines_l1),
        _pack_counter(result.miss_lines_l2),
        _pack_counter(core.miss_pcs),
        _pack_counter(core.miss_latency_by_pc),
        _pack_lines(result.attempted_prefetch_lines),
        {component: _pack_lines(lines)
         for component, lines in result.attempted_by_component.items()},
    )
    result.miss_lines_l1 = Counter()
    result.miss_lines_l2 = Counter()
    core.miss_pcs = Counter()
    core.miss_latency_by_pc = Counter()
    result.attempted_prefetch_lines = set()
    result.attempted_by_component = {}
    return result, blobs


def _unpack_result(payload):
    result, blobs = payload
    (miss1, miss2, miss_pcs, miss_latency, attempted, by_component) = blobs
    result.miss_lines_l1 = _unpack_counter(miss1)
    result.miss_lines_l2 = _unpack_counter(miss2)
    result.core.miss_pcs = _unpack_counter(miss_pcs)
    result.core.miss_latency_by_pc = _unpack_counter(miss_latency)
    result.attempted_prefetch_lines = _unpack_lines(attempted)
    result.attempted_by_component = {
        component: _unpack_lines(lines)
        for component, lines in by_component.items()
    }
    return result


class RemoteCellError(Exception):
    """One cell of a fused unit failed in its worker.

    Carries the worker-side traceback so :func:`_fail` can surface it;
    ``repr()`` embeds the original error so failure messages read the
    same as before fusion.
    """

    def __init__(self, error: str, remote_traceback: str) -> None:
        super().__init__(error)
        self.remote_traceback = remote_traceback


def _simulate_unit(payload):
    """Worker entry point: one fused unit of same-workload cells.

    The compiled trace is deserialized/memoized once (workload-registry
    memo), then every cell replays against it back-to-back.  Each cell
    is isolated: an exception is captured per cell and returned as data,
    so one bad prefetcher config never voids its unit-mates' work.

    The chaos checkpoint runs per cell: under injection this is where a
    targeted cell sleeps or its worker dies — deterministically, on
    attempt 0 only, so the retry always runs clean.

    A 3-tuple payload is the classic form and returns the bare outcome
    list — byte-for-byte what pre-observability workers returned.  A
    4-tuple payload (``collect_spans`` appended by an obs-enabled
    parent) additionally times each cell and returns ``(outcomes,
    meta)`` where ``meta`` carries the worker pid and one span dict per
    cell (wall start, duration, kernel variant, instruction count) for
    the parent to merge.  A 5-tuple payload appends the shared-memory
    manifest entries for the unit's workload
    (:class:`repro.parallel.shm.SharedTrace`); :func:`shm.install`
    adopts them as zero-copy trace views before the first cell runs (a
    fork-inherited memo wins, so attach cost is paid at most once per
    worker per workload).
    """
    from repro.experiments.runner import simulate_spec
    from repro.faults import chaos

    if len(payload) == 5:
        cells, config, attempt, collect_spans, shared = payload
    elif len(payload) == 4:
        cells, config, attempt, collect_spans = payload
        shared = None
    else:
        cells, config, attempt = payload
        collect_spans = False
        shared = None
    if shared:
        shm.install(shared)
    outcomes = []
    spans = []
    for workload, spec, tag in cells:
        chaos.on_cell_start(workload, spec, tag, attempt)
        if not collect_spans:
            try:
                outcomes.append(
                    ("ok", _pack_result(simulate_spec(workload, spec, tag,
                                                      config))))
            except Exception as exc:
                outcomes.append(("err", repr(exc),
                                 "".join(traceback.format_exception(exc))))
            continue
        span = {"t0": time.time(), "workload": workload,
                "spec": _safe_spec_key(spec), "tag": tag,
                "attempt": attempt}
        started = time.perf_counter()
        try:
            result = simulate_spec(workload, spec, tag, config)
            span["dur"] = time.perf_counter() - started
            span["kernel"] = getattr(result, "kernel", "generic")
            span["instructions"] = result.core.instructions
            outcomes.append(("ok", _pack_result(result)))
        except Exception as exc:
            span["dur"] = time.perf_counter() - started
            span["error"] = repr(exc)
            outcomes.append(("err", repr(exc),
                             "".join(traceback.format_exception(exc))))
        spans.append(span)
    if collect_spans:
        return outcomes, {"pid": os.getpid(), "spans": spans}
    return outcomes


FUSION_ENV = "REPRO_FUSION"


def _fusion_units(remote, normalized, workers) -> list[tuple]:
    """Group pool-eligible cells into workload-affine units.

    Cells sharing a workload land in the same unit (in submission
    order) so a worker pays trace adoption once per workload and
    replays all its prefetcher configs back-to-back.  With work
    stealing (the default) units are fine-grained —
    ``ceil(len(remote) / (workers * 4))`` cells, at most 8 — because
    shared-memory trace columns removed the per-unit trace-load cost,
    and small units are what give the stealing scheduler room to
    rebalance a straggling workload.  ``REPRO_STEAL=0`` restores the
    legacy coarse chunks (``ceil(len(remote) / (workers * 2))``);
    ``REPRO_FUSION=0`` disables grouping entirely (singleton units) —
    the escape hatch the fusion identity test pins against.
    """
    if os.environ.get(FUSION_ENV) == "0":
        return [(i,) for i in remote]
    groups: dict[str, list[int]] = {}
    for i in remote:
        groups.setdefault(normalized[i][0], []).append(i)
    if stealing_enabled():
        chunk = max(1, min(-(-len(remote) // (workers * 4)), 8))
    else:
        chunk = max(1, -(-len(remote) // (workers * 2)))
    units = []
    for indices in groups.values():
        for start in range(0, len(indices), chunk):
            units.append(tuple(indices[start:start + chunk]))
    return units


# ----------------------------------------------------------------------
def warm_traces(workloads, obs=None) -> float:
    """Build/load the compiled traces for ``workloads`` in this process.

    Called by :func:`run_jobs` before dispatching so workers never
    regenerate traces: fork shares the parent's columns copy-on-write
    and the on-disk trace cache covers workers forked earlier.  Returns
    the seconds spent.  With ``obs``, each workload's warm becomes a
    ``trace_warm`` span.
    """
    from repro.workloads import get_workload

    started = time.perf_counter()
    for workload in dict.fromkeys(workloads):
        if obs is None:
            get_workload(workload).trace()
        else:
            with obs.span("trace_warm", workload=workload):
                get_workload(workload).trace()
    return time.perf_counter() - started


def _publish_traces(workloads, obs=None) -> dict:
    """Publish warmed traces as shared-memory segments (manifest entries).

    Returns ``{workload: SharedTrace}`` for everything published —
    empty when ``REPRO_SHM=0`` or nothing qualified (a memory image
    outside signed 64-bit range stays on the legacy path, exactly like
    the on-disk trace cache).  The traces are warm, so publication is
    one memcpy per column; segments persist across ``run_jobs`` calls
    and publishing the same workload again reuses the live segment.
    """
    if not shm.enabled():
        return {}
    from repro.workloads import get_workload

    entries = {}
    for workload in workloads:
        entry = shm.publish(workload, get_workload(workload).trace())
        if entry is not None:
            entries[workload] = entry
    if obs is not None and entries:
        obs.metrics.gauge("shm.segments", len(shm.manifest_names()))
        obs.metrics.gauge("shm.bytes",
                          sum(e.nbytes for e in entries.values()))
    return entries


# ----------------------------------------------------------------------
# Fault-tolerant scheduler
# ----------------------------------------------------------------------
def run_jobs(jobs: Sequence[SimJob], config: SystemConfig,
             n_jobs: int, timings: dict | None = None,
             policy=None, obs=None, auto_serial: bool = False) -> list:
    """Simulate ``jobs`` with up to ``n_jobs`` persistent workers.

    Returns a list aligned with ``jobs`` where each slot holds either a
    ``SimulationResult`` or, for a cell that exhausted its retries, a
    :class:`~repro.faults.CellFailure` — one bad cell never aborts the
    matrix, and ``run_jobs`` does not raise for cell-level problems.

    ``n_jobs <= 1`` runs everything serially in-process (same code path
    the workers use, same isolation), as does a job list with at most
    one pool-eligible cell.  ``policy`` is the retry/timeout contract
    (default: :meth:`RetryPolicy.from_env`).  ``timings``, when given,
    is filled on **every** exit path with the phase breakdown
    (``trace_warm_seconds``, ``simulate_seconds``, ``merge_seconds``).
    ``obs`` (a :class:`repro.obs.FabricObs`) attaches fabric span
    tracing; ``None`` executes the exact unobserved code path.

    ``auto_serial=True`` additionally falls back to the serial path
    when :func:`serial_fallback_reason` predicts the pool would lose
    (tiny matrix, or a host with at most two CPUs), recording
    ``timings["fallback"] = "serial"`` and the reason.  Off by default:
    tests and the chaos harness need real workers even where a pool is
    a net loss.
    """
    from repro.faults import RetryPolicy

    if policy is None:
        policy = RetryPolicy.from_env()
    normalized = [normalize_job(job) for job in jobs]
    results: list = [None] * len(normalized)
    remote: list[int] = []
    local: list[int] = []
    if n_jobs > 1 and len(normalized) > 1:
        for i, (_, spec, _) in enumerate(normalized):
            (remote if _is_picklable(spec) else local).append(i)

    fallback_reason = None
    if auto_serial and len(remote) > 1:
        fallback_reason = serial_fallback_reason(len(remote), n_jobs)

    warm_seconds = 0.0
    merge_seconds = 0.0
    started = time.perf_counter()
    try:
        if fallback_reason is not None:
            _run_serial(range(len(normalized)), normalized, config,
                        results, policy, obs)
            return results
        if len(remote) <= 1:
            # Serial path: nothing (or a single cell) is pool-eligible —
            # a pool that could only ever run one job is pure overhead.
            _run_serial(range(len(normalized)), normalized, config,
                        results, policy, obs)
            return results
        warm_seconds = warm_traces((normalized[i][0] for i in remote), obs)
        workers = min(n_jobs, len(remote))
        shared = _publish_traces(
            dict.fromkeys(normalized[i][0] for i in remote), obs)
        merge_seconds = _run_pool(remote, local, normalized, config,
                                  results, workers, policy, obs, shared)
        return results
    except BaseException as exc:
        if not isinstance(exc, Exception):
            # A KeyboardInterrupt/SystemExit unwinding the sweep must
            # not leak /dev/shm segments or a stuck pool: tear both
            # down before propagating (the lifecycle test asserts the
            # manifest comes back empty).
            kill_pool()
            shm.release_all()
        raise
    finally:
        if timings is not None:
            if fallback_reason is not None:
                timings["fallback"] = "serial"
                timings["fallback_reason"] = fallback_reason
            timings["trace_warm_seconds"] = round(warm_seconds, 3)
            timings["simulate_seconds"] = round(
                time.perf_counter() - started - merge_seconds, 3)
            timings["merge_seconds"] = round(merge_seconds, 3)


def _attempt_serial(i: int, attempt: int, normalized, config):
    """One in-parent attempt of cell ``i`` (chaos slow applies; chaos
    kill never fires outside a pool worker)."""
    from repro.experiments.runner import simulate_spec
    from repro.faults import chaos

    workload, spec, tag = normalized[i]
    chaos.on_cell_start(workload, spec, tag, attempt)
    return simulate_spec(workload, spec, tag, config)


def _fail(i: int, normalized, kind: str, attempts: int,
          exc: "BaseException | None") -> object:
    """Build the CellFailure for slot ``i`` and log it."""
    from repro.faults import CellFailure, faultlog

    workload, spec, tag = normalized[i]
    key = _safe_spec_key(spec)
    if exc is None:
        error, trace = "", ""
    elif isinstance(exc, RemoteCellError):
        # The real failure happened in a worker: report the original
        # error string and the worker-side traceback.
        error = str(exc)
        trace = exc.remote_traceback
    else:
        error = repr(exc)
        trace = "".join(traceback.format_exception(exc))
    failure = CellFailure(
        workload=workload, spec=key, tag=tag, kind=kind,
        error=error, traceback=trace,
        attempts=attempts,
    )
    faultlog.log_fault(faultlog.CELL_FAILED, workload=workload, spec=key,
                       tag=tag, attempt=attempts, detail=failure.error,
                       span=cell_span_id(workload, key, tag,
                                         max(attempts - 1, 0)))
    return failure


def _run_serial(indices, normalized, config, results, policy,
                obs=None) -> None:
    """In-process execution with the same isolation/retry contract."""
    from repro.faults import faultlog

    for i in indices:
        if results[i] is not None:
            continue
        workload, spec, tag = normalized[i]
        key = _safe_spec_key(spec)
        attempt = 0
        while True:
            t0 = time.time()
            p0 = time.perf_counter()
            try:
                result = _attempt_serial(i, attempt, normalized, config)
                if obs is not None:
                    obs.record(
                        "cell", t0=t0, dur=time.perf_counter() - p0,
                        sid=cell_span_id(workload, key, tag, attempt),
                        workload=workload, spec=key, tag=tag,
                        attempt=attempt,
                        kernel=getattr(result, "kernel", "generic"),
                        instructions=result.core.instructions,
                    )
                results[i] = result
                break
            except Exception as exc:
                if obs is not None:
                    obs.record(
                        "cell", t0=t0, dur=time.perf_counter() - p0,
                        sid=cell_span_id(workload, key, tag, attempt),
                        workload=workload, spec=key, tag=tag,
                        attempt=attempt, error=repr(exc),
                    )
                failed_attempt = attempt
                attempt += 1
                if attempt >= policy.max_attempts:
                    results[i] = _fail(i, normalized, "error", attempt, exc)
                    break
                faultlog.log_fault(
                    faultlog.CELL_RETRY, workload=workload,
                    spec=key, tag=tag, attempt=attempt,
                    detail=repr(exc),
                    span=cell_span_id(workload, key, tag, failed_attempt),
                )
                delay = policy.delay(attempt)
                if obs is not None:
                    obs.record(
                        "retry_wait", t0=time.time(), dur=delay,
                        sid=f"retry_wait:{cell_span_id(workload, key, tag, attempt)}",
                        workload=workload, spec=key, tag=tag,
                        attempt=attempt,
                    )
                time.sleep(delay)


def _run_pool(remote, local, normalized, config, results, workers,
              policy, obs=None, shared=None) -> float:
    """Dispatch ``remote`` cells over the pool; returns merge seconds.

    Cells are fused into fine-grained workload-affine units
    (:func:`_fusion_units`) and dispatched by the work-stealing
    discipline of :class:`~repro.parallel.stealing.StealScheduler`:
    each in-flight slot is a virtual lane with a home workload; a freed
    lane takes the head of its home queue (the trace its worker has
    adopted, the plans it has memoized) and an idle lane steals from
    the tail of the deepest other queue.  Each steal is recorded as a
    ``steal`` span plus ``pool.steals`` / ``pool.steal_wait_seconds``
    metrics, and marks the eventual unit span ``stolen`` so the
    straggler report attributes rebalancing per worker.  ``shared``
    (workload -> :class:`repro.parallel.shm.SharedTrace`) rides each
    payload so workers attach zero-copy trace columns instead of
    re-deserializing the disk cache.

    The scheduler keeps at most ``window`` units in flight (== the
    worker count when a timeout is set, so the per-unit wall clock is
    honest; a bit more otherwise to hide submission latency), retries
    faulted cells with backoff — always as singleton units, so a retry
    never re-runs its innocent unit-mates — replaces the pool when a
    worker dies or hangs, and runs the non-picklable ``local``
    stragglers in the parent while the first wave churns.

    A unit's timeout budget scales with its size
    (``policy.timeout_seconds * len(unit)``): the per-cell contract is
    unchanged, a unit of K cells simply has K cells' worth of clock.
    """
    from concurrent.futures import FIRST_COMPLETED, wait
    from concurrent.futures.process import BrokenProcessPool

    from repro.faults import faultlog

    window = workers if policy.timeout_seconds else workers * 2
    # Scheduler entries are (unit, attempt, ready_at, enqueued) — unit
    # a tuple of cell indices, ready_at a monotonic instant the unit's
    # backoff expires at, enqueued when it entered its home queue
    # (queue-wait and steal-latency attribution).
    start = time.monotonic()
    scheduler = StealScheduler(fifo=not stealing_enabled())
    for unit in _fusion_units(remote, normalized, workers):
        scheduler.push(normalized[unit[0]][0], unit, 0, 0.0, start)
    # future -> (unit, attempt, dispatched_at, wall_t0, queue_wait,
    #            slot, steal_wait | None)
    inflight: dict = {}
    lane_home: dict[int, "str | None"] = {
        slot: None for slot in range(window)}
    merge_seconds = 0.0
    executor = _get_executor(workers)

    def cell_tag(i):
        workload, spec, tag = normalized[i]
        return workload, _safe_spec_key(spec), tag

    def budget(unit) -> float:
        return policy.timeout_seconds * len(unit)

    def replace_pool(reason: str) -> None:
        nonlocal executor
        if obs is None:
            kill_pool()
            executor = _get_executor(workers)
        else:
            with obs.span("pool_rebuild", reason=reason):
                kill_pool()
                executor = _get_executor(workers)
        faultlog.log_fault(faultlog.POOL_DEGRADED, detail=reason)

    def reschedule(i: int, attempt: int, kind: str,
                   exc: "BaseException | None", now: float) -> None:
        """Retry cell ``i`` (attempt consumed), or finalize its slot."""
        workload, key, tag = cell_tag(i)
        next_attempt = attempt + 1
        if next_attempt < policy.max_attempts:
            faultlog.log_fault(faultlog.CELL_RETRY, workload=workload,
                               spec=key, tag=tag, attempt=next_attempt,
                               detail=kind if exc is None else repr(exc),
                               span=cell_span_id(workload, key, tag,
                                                 attempt))
            delay = policy.delay(next_attempt)
            if obs is not None:
                obs.record(
                    "retry_wait", t0=time.time(), dur=delay,
                    sid=("retry_wait:"
                         + cell_span_id(workload, key, tag, next_attempt)),
                    workload=workload, spec=key, tag=tag,
                    attempt=next_attempt,
                )
            scheduler.push(normalized[i][0], (i,), next_attempt,
                           now + delay, now)
            return
        if kind == "worker-lost":
            # Last resort for a cell that keeps losing its worker: one
            # isolated in-parent attempt (immune to worker death).
            try:
                results[i] = _attempt_serial(i, next_attempt, normalized,
                                             config)
                return
            except Exception as final_exc:
                exc = final_exc
                next_attempt += 1
        results[i] = _fail(i, normalized, kind, next_attempt, exc)

    def lose_unit(unit, attempt: int, dispatched: float,
                  now: float) -> None:
        """Every cell of a pool-lost unit: log + reschedule."""
        for i in unit:
            workload, key, tag = cell_tag(i)
            faultlog.log_fault(faultlog.WORKER_LOST, workload=workload,
                               spec=key, tag=tag, attempt=attempt,
                               seconds=now - dispatched,
                               span=cell_span_id(workload, key, tag,
                                                 attempt))
            reschedule(i, attempt, "worker-lost", None, now)

    def unit_payload(unit, attempt):
        cells = tuple(normalized[i] for i in unit)
        entries = None
        if shared:
            entries = {workload: shared[workload]
                       for workload in dict.fromkeys(
                           normalized[i][0] for i in unit)
                       if workload in shared} or None
        if entries is not None:
            return (cells, config, attempt, obs is not None, entries)
        if obs is not None:
            return (cells, config, attempt, True)
        return (cells, config, attempt)

    def launch(now: float) -> None:
        busy = {entry[5] for entry in inflight.values()}
        for slot in range(window):
            if slot in busy or not len(scheduler):
                continue
            popped = scheduler.pop(slot, lane_home[slot], now)
            if popped is None:
                break  # nothing is ready anywhere (backoffs pending)
            (unit, attempt, _ready_at, enqueued), workload, steal_wait = \
                popped
            lane_home[slot] = workload
            queue_wait = max(now - enqueued, 0.0)
            payload = unit_payload(unit, attempt)
            if obs is not None:
                obs.metrics.observe("pool.queue_wait_seconds", queue_wait)
                if steal_wait is not None:
                    obs.metrics.count("pool.steals")
                    obs.metrics.observe("pool.steal_wait_seconds",
                                        steal_wait)
                    obs.record(
                        "steal", t0=time.time(), dur=steal_wait,
                        sid=f"steal:{scheduler.steals}:{workload}",
                        workload=workload, attempt=attempt,
                        cells=len(unit), slot=slot,
                    )
            try:
                future = executor.submit(_simulate_unit, payload)
            except Exception:
                # A worker died between the last wait and this submit:
                # the executor refuses new work.  Replace it and retry
                # the submission once on the fresh pool.
                replace_pool("pool broken at submit")
                future = executor.submit(_simulate_unit, payload)
            inflight[future] = (unit, attempt, now, time.time(),
                                queue_wait, slot, steal_wait)

    launch(time.monotonic())
    # Overlap the non-picklable stragglers with the first wave.
    _run_serial(local, normalized, config, results, policy, obs)

    while len(scheduler) or inflight:
        now = time.monotonic()
        launch(now)
        waits = []
        next_ready = scheduler.next_ready_at(now)
        if next_ready is not None:
            waits.append(next_ready - now)
        if policy.timeout_seconds:
            waits += [entry[2] + budget(entry[0]) - now
                      for entry in inflight.values()]
        wait_for = max(0.005, min(waits)) if waits else None
        if not inflight:
            time.sleep(wait_for if wait_for is not None else 0.005)
            continue
        done, _ = wait(inflight, timeout=wait_for,
                       return_when=FIRST_COMPLETED)

        now = time.monotonic()
        broken = False
        merged: list = []
        for future in done:
            (unit, attempt, dispatched, wall_t0, queue_wait, _slot,
             steal_wait) = inflight.pop(future)
            try:
                outcomes = future.result()
            except BrokenProcessPool:
                broken = True
                lose_unit(unit, attempt, dispatched, now)
                continue
            except Exception as exc:
                for i in unit:
                    reschedule(i, attempt, "error", exc, now)
                continue
            if obs is not None:
                outcomes, meta = outcomes
                lane = obs.lane_for(meta["pid"])
                unit_attrs = {"cells": len(unit),
                              "queue_seconds": round(queue_wait, 6)}
                if steal_wait is not None:
                    # The lane that executed the steal is only known
                    # now (worker pids surface with the result), so the
                    # stolen flag rides the unit span — pool_report and
                    # FabricObs.finish read it back per worker.
                    unit_attrs["stolen"] = True
                    unit_attrs["steal_wait_seconds"] = round(steal_wait, 6)
                obs.record(
                    "unit", t0=wall_t0, dur=now - dispatched,
                    sid=f"unit:{'-'.join(map(str, unit))}@{attempt}",
                    worker=lane, workload=normalized[unit[0]][0],
                    attempt=attempt, **unit_attrs,
                )
                for span in meta["spans"]:
                    obs.record(
                        "cell", t0=span["t0"], dur=span["dur"],
                        sid=cell_span_id(span["workload"], span["spec"],
                                         span["tag"], span["attempt"]),
                        worker=lane, workload=span["workload"],
                        spec=span["spec"], tag=span["tag"],
                        attempt=span["attempt"],
                        parent=f"unit:{'-'.join(map(str, unit))}@{attempt}",
                        **{k: v for k, v in span.items()
                           if k in ("kernel", "instructions", "error")},
                    )
            for i, outcome in zip(unit, outcomes):
                if outcome[0] == "ok":
                    merged.append((i, outcome[1]))
                else:
                    # The cell failed inside its worker; unit-mates'
                    # results above are kept.  Retry it alone.
                    reschedule(i, attempt, "error",
                               RemoteCellError(outcome[1], outcome[2]),
                               now)
        if broken:
            # Every other in-flight future died with the pool; innocent
            # or not, each consumed an attempt (bounded — a cell that
            # reliably kills workers must not loop forever).
            for future, (unit, attempt, dispatched, *_rest) in list(
                    inflight.items()):
                lose_unit(unit, attempt, dispatched, now)
            inflight.clear()
            replace_pool("worker died mid-cell")
        elif policy.timeout_seconds:
            expired = [(future, entry) for future, entry in inflight.items()
                       if now - entry[2] > budget(entry[0])]
            if expired:
                # The only portable way to reclaim a hung worker is to
                # replace the whole pool; survivors resubmit with no
                # attempt penalty.
                survivors = [entry for future, entry in inflight.items()
                             if not any(future is f for f, _ in expired)]
                inflight.clear()
                for future, (unit, attempt, dispatched, *_rest) in expired:
                    for i in unit:
                        workload, key, tag = cell_tag(i)
                        faultlog.log_fault(
                            faultlog.CELL_TIMEOUT, workload=workload,
                            spec=key, tag=tag, attempt=attempt,
                            seconds=now - dispatched,
                            detail=f"timeout={policy.timeout_seconds}s",
                            span=cell_span_id(workload, key, tag, attempt),
                        )
                        reschedule(i, attempt, "timeout", None, now)
                for unit, attempt, *_rest in survivors:
                    scheduler.push(normalized[unit[0]][0], unit, attempt,
                                   now, now)
                replace_pool("hung worker replaced")

        # Submit replacements before paying the unpack cost, so workers
        # never idle while the parent merges.
        launch(time.monotonic())
        merge_started = time.perf_counter()
        merge_wall = time.time()
        for i, packed in merged:
            results[i] = _unpack_result(packed)
        batch_seconds = time.perf_counter() - merge_started
        merge_seconds += batch_seconds
        if obs is not None and merged:
            obs.record("merge", t0=merge_wall, dur=batch_seconds,
                       cells=len(merged))
    return merge_seconds
