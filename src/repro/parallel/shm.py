"""Zero-copy trace sharing over named shared-memory segments.

Fork-COW trace sharing (PR 3) had two structural problems: it only
works under the ``fork`` start method, and it only covers traces that
were warm *before* the pool forked — a worker that needed anything else
re-deserialized the on-disk cache entry, paying a full column copy per
worker.  This module replaces both with explicit shared memory:

* **Publish** (parent, once per workload) — every numpy column of a
  :class:`~repro.isa.trace.CompiledTrace` is copied into one named
  ``multiprocessing.shared_memory`` segment: the ten primary columns
  (:data:`~repro.isa.trace.TRACE_FIELDS`), the four derived columns,
  the batch segment-event positions, and the memory image as aligned
  address/value arrays.  The picklable :class:`SharedTrace` entry
  (segment name + per-field dtype/offset/length) is all that crosses
  the process boundary.
* **Attach** (worker, once per segment) — :func:`attach` opens the
  segment and rebuilds the trace as ``numpy.frombuffer`` views into
  the shared buffer: zero copies, O(1) in trace size, identical under
  ``fork`` and ``spawn``.  :func:`install` adopts the attached traces
  into the workload registry so ``simulate_spec`` finds them through
  the normal memo path; a fork-inherited memo always wins (it carries
  the parent's memoized replay plans).
* **Lifecycle** — the parent keeps a manifest of everything it
  published (:func:`manifest_names`).  Segments are unlinked exactly
  once: explicitly via :func:`release_all` (``run_jobs`` calls it when
  a ``KeyboardInterrupt``/``SystemExit`` unwinds a sweep) or by the
  ``atexit`` hook registered on first publish.  A chaos-killed worker
  cannot take a segment down with it: attaching registers the segment
  with the *worker's* resource tracker, which would unlink the
  parent-owned file when that worker dies, so :func:`attach`
  immediately unregisters it (Python 3.13 grew ``track=False`` for
  exactly this; on 3.11/3.12 unregistering is the documented
  workaround).

``REPRO_SHM=0`` disables publication entirely (workers fall back to
fork-COW memos or the on-disk trace cache); ``REPRO_MP_CONTEXT``
selects the pool start method (``fork`` default, ``spawn`` — which this
module is what makes viable — or ``forkserver``).
"""

from __future__ import annotations

import atexit
import os
import re
from dataclasses import dataclass

from repro.isa.trace import (
    DERIVED_FIELDS,
    TRACE_FIELDS,
    CompiledTrace,
)

SHM_ENV = "REPRO_SHM"
MP_CONTEXT_ENV = "REPRO_MP_CONTEXT"

_SIGNED_64_MIN = -(1 << 63)
_SIGNED_64_MAX = (1 << 63) - 1

_ALIGN = 8

#: Field names inside a segment beyond the primary columns.
_DERIVED_PREFIX = "derived."
_SEGMENTS_FIELD = "segments"
_MEMORY_ADDR_FIELD = "memory_addr"
_MEMORY_VAL_FIELD = "memory_val"


@dataclass(frozen=True)
class SharedTrace:
    """Picklable manifest entry describing one published trace segment."""

    workload: str        # registry name the trace belongs to
    trace_name: str      # CompiledTrace.name (== workload in practice)
    segment: str         # shared-memory segment name
    nbytes: int          # total segment size
    fields: tuple        # ((field, dtype, offset, length), ...)


# Parent side: workload -> (SharedTrace, SharedMemory handle).
_PUBLISHED: dict[str, tuple] = {}
# Worker side: segment name -> (SharedMemory handle, CompiledTrace).
_ATTACHED: dict[str, tuple] = {}
_SEQ = 0
_ATEXIT_REGISTERED = False


def _np():
    import numpy

    return numpy


def enabled() -> bool:
    """Shared-memory publication on? (``REPRO_SHM=0`` disables.)"""
    return os.environ.get(SHM_ENV) != "0"


def mp_context_name() -> str:
    """Pool start method from ``REPRO_MP_CONTEXT`` (default ``fork``)."""
    name = os.environ.get(MP_CONTEXT_ENV)
    if name in ("fork", "spawn", "forkserver"):
        return name
    return "fork"


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "trace"


# ----------------------------------------------------------------------
# Parent side: publish + manifest + unlink
# ----------------------------------------------------------------------
def publish(workload: str, trace: CompiledTrace) -> SharedTrace | None:
    """Publish ``trace``'s columns into a named segment (idempotent).

    Returns the manifest entry, or ``None`` when shared memory is
    disabled or the memory image holds values outside signed 64-bit
    range (the same traces the on-disk cache refuses: workers rebuild
    those through the normal cache path instead).  A second publish of
    the same workload reuses the existing segment.
    """
    if not enabled():
        return None
    existing = _PUBLISHED.get(workload)
    if existing is not None:
        return existing[0]
    memory = trace.memory
    for address, value in memory.items():
        if not (_SIGNED_64_MIN <= value <= _SIGNED_64_MAX
                and 0 <= address <= _SIGNED_64_MAX):
            return None
    np = _np()
    columns: list[tuple[str, object]] = list(
        zip(TRACE_FIELDS, trace.array_columns()))
    columns.extend(zip((_DERIVED_PREFIX + f for f in DERIVED_FIELDS),
                       trace.derived_arrays()))
    columns.append((_SEGMENTS_FIELD, trace.segment_events()))
    columns.append((_MEMORY_ADDR_FIELD,
                    np.fromiter(memory.keys(), dtype=np.int64,
                                count=len(memory))))
    columns.append((_MEMORY_VAL_FIELD,
                    np.fromiter(memory.values(), dtype=np.int64,
                                count=len(memory))))

    fields = []
    prepared = []
    offset = 0
    for field_name, column in columns:
        column = np.ascontiguousarray(column)
        fields.append((field_name, str(column.dtype), offset, len(column)))
        prepared.append((offset, column))
        offset += -(-column.nbytes // _ALIGN) * _ALIGN

    from multiprocessing import shared_memory

    global _SEQ, _ATEXIT_REGISTERED
    _SEQ += 1
    segment = f"repro-{os.getpid()}-{_SEQ}-{_slug(workload)[:40]}"
    handle = shared_memory.SharedMemory(name=segment, create=True,
                                        size=max(offset, 1))
    for off, column in prepared:
        if len(column):
            view = np.frombuffer(handle.buf, dtype=column.dtype,
                                 count=len(column), offset=off)
            view[:] = column
    entry = SharedTrace(workload=workload, trace_name=trace.name,
                        segment=segment, nbytes=handle.size,
                        fields=tuple(fields))
    _PUBLISHED[workload] = (entry, handle)
    if not _ATEXIT_REGISTERED:
        atexit.register(release_all)
        _ATEXIT_REGISTERED = True
    from repro.workloads import tracecache

    tracecache.count("shm_publishes")
    return entry


def published() -> dict[str, SharedTrace]:
    """Manifest snapshot: workload -> :class:`SharedTrace` entry."""
    return {workload: entry for workload, (entry, _) in _PUBLISHED.items()}


def manifest_names() -> list[str]:
    """Segment names this process currently owns (the leak oracle the
    lifecycle tests assert against — empty means nothing to unlink)."""
    return sorted(entry.segment for entry, _ in _PUBLISHED.values())


def entries_for(workloads) -> dict[str, SharedTrace]:
    """The manifest entries covering ``workloads`` (missing ones skipped)."""
    entries = {}
    for workload in workloads:
        published_entry = _PUBLISHED.get(workload)
        if published_entry is not None:
            entries[workload] = published_entry[0]
    return entries


def release(workload: str) -> bool:
    """Unlink one workload's segment; ``True`` if one was published."""
    item = _PUBLISHED.pop(workload, None)
    if item is None:
        return False
    _, handle = item
    _close_and_unlink(handle)
    return True


def release_all() -> int:
    """Unlink every published segment (idempotent); returns the count.

    Safe while workers are still attached: POSIX keeps the mapping
    alive for them until they unmap, only the name disappears.
    """
    released = 0
    for workload in list(_PUBLISHED):
        if release(workload):
            released += 1
    return released


def _close_and_unlink(handle) -> None:
    try:
        handle.close()
    except Exception:
        pass
    try:
        handle.unlink()
    except FileNotFoundError:
        pass
    except Exception:
        pass


# ----------------------------------------------------------------------
# Worker side: attach + adopt
# ----------------------------------------------------------------------
def _unregister_tracker(handle) -> None:
    # Attaching registered the segment with THIS process's resource
    # tracker (unconditional on POSIX through Python 3.12), which would
    # unlink the parent-owned segment when this worker exits — a
    # chaos-killed worker must never take the segment down with it.
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(handle._name, "shared_memory")
    except Exception:
        pass


def attach(entry: SharedTrace) -> CompiledTrace:
    """Open ``entry``'s segment and rebuild its trace as zero-copy views.

    Memoized per segment name, so a worker attaches each trace once no
    matter how many units replay it.  Raises ``FileNotFoundError`` when
    the segment was already unlinked (stale entry).
    """
    cached = _ATTACHED.get(entry.segment)
    if cached is not None:
        return cached[1]
    from multiprocessing import shared_memory

    np = _np()
    handle = shared_memory.SharedMemory(name=entry.segment, create=False)
    _unregister_tracker(handle)
    views = {}
    for field_name, dtype, offset, length in entry.fields:
        views[field_name] = np.frombuffer(handle.buf, dtype=dtype,
                                          count=length, offset=offset)
    trace = CompiledTrace.from_shared(
        entry.trace_name,
        tuple(views[f] for f in TRACE_FIELDS),
        tuple(views[_DERIVED_PREFIX + f] for f in DERIVED_FIELDS),
        views[_SEGMENTS_FIELD],
        (views[_MEMORY_ADDR_FIELD], views[_MEMORY_VAL_FIELD]),
    )
    _ATTACHED[entry.segment] = (handle, trace)
    from repro.workloads import tracecache

    tracecache.count("shm_attaches")
    return trace


def install(entries: dict[str, SharedTrace]) -> int:
    """Adopt shared traces into this process's workload registry.

    Runs at the top of every worker unit: for each entry whose workload
    has no trace memo yet (fork-inherited memos win — they carry the
    parent's replay plans), attach the segment and install the view as
    the memo.  Unknown names (dynamic fuzz workloads under ``spawn``)
    are registered as stubs, so the registry lookup inside
    ``simulate_spec`` succeeds without the builder.  Returns how many
    traces were adopted.
    """
    if not entries:
        return 0
    from repro.workloads import registry

    adopted = 0
    for workload, entry in entries.items():
        if registry.has_trace_memo(workload):
            continue
        if registry.adopt_compiled_trace(workload, attach(entry)):
            adopted += 1
    return adopted
