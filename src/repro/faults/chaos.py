"""Deterministic fault injection for the evaluation stack.

Chaos is configured by the ``REPRO_CHAOS`` environment variable (so it
crosses process boundaries to pool workers for free) or programmatically
via :func:`set_chaos`.  The spec is a semicolon-separated directive
list:

```
REPRO_CHAOS="kill=spec.mcf/tpc;slow=spec.libquantum/bop:6.0;corrupt=spec.mcf/tpc;torn=spec.astar/tpc"
```

* ``kill=<workload>/<spec>`` — the worker simulating that cell calls
  ``os._exit`` before simulating, which breaks the process pool exactly
  the way an OOM kill or a stray ``SIGKILL`` does.  Fires only inside a
  pool worker (the parent marks workers via the pool initializer), so a
  serial run can never chaos-kill itself.
* ``slow=<workload>/<spec>:<seconds>`` — the cell sleeps that long
  before simulating, which is how the per-cell timeout watchdog is
  exercised.
* ``torn=<substring>`` — the next cache write whose label contains the
  substring lands truncated (the torn tail a crash mid-write would
  leave).
* ``corrupt=<substring>`` — the next matching cache write lands as
  garbage bytes (a corrupted pickle).

Cell targets match when the directive string equals — or is a substring
of — ``"<workload>/<spec key>"``; write labels are
``"result:<workload>/<spec>:<tag>"`` and ``"trace:<name>"`` (see the
cache ``put`` methods).  Every directive fires **once per process** and
cell directives fire **only on attempt 0**, so a retried cell always
runs clean — injected faults are recoverable by construction, which is
what lets the chaos suite assert bit-identical final figures.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

CHAOS_ENV = "REPRO_CHAOS"

#: Exit code chaos-killed workers die with (visible in pool diagnostics).
KILL_EXIT_CODE = 87

_IN_WORKER = False

# (env string it was parsed from, config) — re-parsed when the env
# variable changes, so tests can flip REPRO_CHAOS without reloading.
_parsed: "tuple[str | None, ChaosConfig] | None" = None
_override: "ChaosConfig | None" = None
_fired: set = set()


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed chaos directives (empty tuples everywhere = disabled)."""

    kill: tuple = ()                  # cell targets
    slow: tuple = ()                  # (cell target, seconds) pairs
    torn: tuple = ()                  # write-label substrings
    corrupt: tuple = ()               # write-label substrings

    @property
    def enabled(self) -> bool:
        return bool(self.kill or self.slow or self.torn or self.corrupt)

    def spec(self) -> str:
        """Serialize back to the ``REPRO_CHAOS`` grammar."""
        parts = [f"kill={t}" for t in self.kill]
        parts += [f"slow={t}:{s}" for t, s in self.slow]
        parts += [f"torn={t}" for t in self.torn]
        parts += [f"corrupt={t}" for t in self.corrupt]
        return ";".join(parts)


def parse_spec(text: str) -> ChaosConfig:
    """Parse a ``REPRO_CHAOS`` directive string (malformed parts are
    ignored rather than fatal — chaos must never break a clean run)."""
    kill: list = []
    slow: list = []
    torn: list = []
    corrupt: list = []
    for part in text.split(";"):
        part = part.strip()
        if not part or "=" not in part:
            continue
        verb, _, target = part.partition("=")
        verb = verb.strip()
        target = target.strip()
        if not target:
            continue
        if verb == "kill":
            kill.append(target)
        elif verb == "slow":
            cell, _, seconds = target.rpartition(":")
            try:
                slow.append((cell or target, float(seconds)))
            except ValueError:
                continue
        elif verb == "torn":
            torn.append(target)
        elif verb == "corrupt":
            corrupt.append(target)
    return ChaosConfig(kill=tuple(kill), slow=tuple(slow),
                       torn=tuple(torn), corrupt=tuple(corrupt))


def get_chaos() -> ChaosConfig:
    """The active chaos config (programmatic override, else env)."""
    global _parsed
    if _override is not None:
        return _override
    raw = os.environ.get(CHAOS_ENV)
    if _parsed is None or _parsed[0] != raw:
        _parsed = (raw, parse_spec(raw) if raw else ChaosConfig())
    return _parsed[1]


def set_chaos(config: "ChaosConfig | None") -> None:
    """Programmatic override (``None`` returns control to the env).

    Note: pool workers inherit the *environment*, not this override —
    for cross-process injection export ``config.spec()`` via
    ``REPRO_CHAOS`` before the pool spawns (``repro bench --chaos``
    does exactly that).
    """
    global _override
    _override = config


def reset_chaos() -> None:
    """Forget fired directives and cached parses (test isolation)."""
    global _parsed, _override
    _parsed = None
    _override = None
    _fired.clear()


def mark_worker() -> None:
    """Pool-worker initializer hook: kill directives only fire here."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    return _IN_WORKER


def _fire_once(token) -> bool:
    """True exactly once per process for a given directive token."""
    if token in _fired:
        return False
    _fired.add(token)
    return True


def _cell_id(workload: str, spec, tag: str) -> str:
    """``workload/speckey`` identity chaos cell targets match against."""
    if isinstance(spec, str):
        key = spec
    else:
        key = getattr(spec, "cache_key", None) \
            or getattr(spec, "__name__", None) or repr(spec)
    return f"{workload}/{key}"


def on_cell_start(workload: str, spec, tag: str, attempt: int) -> None:
    """Cell-dispatch checkpoint: may sleep (slow) or die (kill).

    Called by the worker entry point and the serial fallback right
    before simulating.  No-ops instantly when chaos is disabled, on any
    attempt past the first, and for cells no directive targets.
    """
    config = get_chaos()
    if not config.enabled or attempt != 0:
        return
    cell = _cell_id(workload, spec, tag)
    for target, seconds in config.slow:
        if target in cell and _fire_once(("slow", target)):
            time.sleep(seconds)
    if _IN_WORKER:
        for target in config.kill:
            if target in cell and _fire_once(("kill", target)):
                os._exit(KILL_EXIT_CODE)


def filter_write(label: str, data: bytes) -> bytes:
    """Cache-write checkpoint: may tear or corrupt the payload.

    :func:`repro.faults.atomic.atomic_write_bytes` routes every labeled
    cache write through here; unmatched labels pass through untouched.
    """
    config = get_chaos()
    if not config.enabled or not label:
        return data
    for target in config.torn:
        if target in label and _fire_once(("torn", target)):
            return data[: max(1, len(data) // 3)]
    for target in config.corrupt:
        if target in label and _fire_once(("corrupt", target)):
            return b"\x00repro-chaos-corrupt\x00" * 8
    return data
