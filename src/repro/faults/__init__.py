"""``repro.faults`` — fault tolerance for the evaluation stack.

The performance layers (persistent fork pool, result + trace caches)
made big sweep matrices fast; this package makes them survivable.  A
production-scale sweep is only usable when one bad cell cannot take the
whole matrix down, a killed worker cannot lose hours of progress, and
every degradation leaves an auditable trail:

* **Per-cell isolation** — :class:`CellFailure` is what a matrix slot
  holds when a cell exhausted its retries: the exception, the formatted
  traceback, how many attempts were made, and whether the cell errored,
  timed out, or lost its worker.  :func:`repro.parallel.run_jobs` never
  lets one cell abort its siblings.
* **Retry with backoff** — :class:`RetryPolicy` bounds how often a cell
  is rescheduled and how long the parent waits between attempts
  (deterministic exponential backoff, no jitter), plus the per-cell
  wall-clock timeout that replaces a hung worker.  Every knob has an
  environment override so CI and operators can tune without code.
* **Resumable matrices** — :class:`~repro.faults.journal.MatrixJournal`
  records completed cells under ``runs/journal/`` with the same key
  scheme as the result cache, so an interrupted ``report_all``/
  ``compare --jobs N`` resumes with zero re-simulations.
* **Fault telemetry** — :mod:`~repro.faults.faultlog` appends one JSONL
  record per retry/timeout/degradation/resume-hit, schema-compatible
  with ``python -m repro events``.
* **Chaos harness** — :mod:`~repro.faults.chaos` deterministically
  injects worker kills, slow cells, torn cache writes, and corrupted
  pickles (``REPRO_CHAOS``; ``repro bench --chaos``), which is how the
  guarantees above stay tested instead of aspirational.

See ``docs/robustness.md`` for the failure model and knob reference.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

RETRY_MAX_ENV = "REPRO_RETRY_MAX"
RETRY_BACKOFF_ENV = "REPRO_RETRY_BACKOFF"
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"

#: How a cell ultimately failed (``CellFailure.kind`` values).
FAIL_ERROR = "error"          # the cell's own code raised
FAIL_TIMEOUT = "timeout"      # exceeded the per-cell wall-clock budget
FAIL_WORKER_LOST = "worker-lost"  # its worker process died under it


@dataclass
class CellFailure:
    """Structured capture of one matrix cell that could not complete.

    Occupies the cell's slot in the ``run_jobs`` result list instead of
    a ``SimulationResult``; callers filter with ``isinstance`` (or
    :func:`failures_in`) and keep going.
    """

    workload: str
    spec: str
    tag: str
    kind: str               # FAIL_ERROR | FAIL_TIMEOUT | FAIL_WORKER_LOST
    error: str              # repr() of the final exception ("" for timeout)
    traceback: str          # formatted traceback ("" when none crossed over)
    attempts: int           # how many times the cell was scheduled

    def describe(self) -> str:
        return (f"{self.workload}/{self.spec}"
                f"{('#' + self.tag) if self.tag else ''}: "
                f"{self.kind} after {self.attempts} attempt(s)"
                f"{(' — ' + self.error) if self.error else ''}")


def failures_in(results) -> "list[CellFailure]":
    """The :class:`CellFailure` entries of a ``run_jobs`` result list."""
    return [r for r in results if isinstance(r, CellFailure)]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _env_float(name: str, default: "float | None") -> "float | None":
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff.

    ``max_attempts`` counts *schedulings* of a cell (first try included);
    ``delay(attempt)`` is the pause before scheduling attempt ``attempt``
    (1-based retries).  ``timeout_seconds`` is the per-cell wall-clock
    budget measured from dispatch to a pool worker — ``None`` disables
    the watchdog.  Environment overrides: ``REPRO_RETRY_MAX``,
    ``REPRO_RETRY_BACKOFF``, ``REPRO_CELL_TIMEOUT``.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    timeout_seconds: "float | None" = None

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        return cls(
            max_attempts=max(1, _env_int(RETRY_MAX_ENV, 3)),
            backoff_seconds=_env_float(RETRY_BACKOFF_ENV, 0.05) or 0.0,
            timeout_seconds=_env_float(CELL_TIMEOUT_ENV, None),
        )

    def delay(self, attempt: int) -> float:
        """Seconds to wait before scheduling ``attempt`` (>= 1)."""
        if attempt <= 0:
            return 0.0
        return self.backoff_seconds * (self.backoff_factor ** (attempt - 1))


from repro.faults.atomic import atomic_write_bytes, atomic_write_pickle  # noqa: E402
from repro.faults.faultlog import (  # noqa: E402
    CACHE_CORRUPT,
    CELL_FAILED,
    CELL_RETRY,
    CELL_TIMEOUT,
    FAULT_KINDS,
    POOL_DEGRADED,
    RESUME_HIT,
    SECTION_FAILED,
    WORKER_LOST,
    fault_counters,
    fault_log_path,
    log_fault,
    reset_fault_counters,
)
from repro.faults.journal import DEFAULT_JOURNAL_DIR, MatrixJournal  # noqa: E402

__all__ = [
    "CellFailure",
    "RetryPolicy",
    "failures_in",
    "FAIL_ERROR",
    "FAIL_TIMEOUT",
    "FAIL_WORKER_LOST",
    "atomic_write_bytes",
    "atomic_write_pickle",
    "MatrixJournal",
    "DEFAULT_JOURNAL_DIR",
    "FAULT_KINDS",
    "CELL_RETRY",
    "CELL_TIMEOUT",
    "CELL_FAILED",
    "WORKER_LOST",
    "POOL_DEGRADED",
    "CACHE_CORRUPT",
    "RESUME_HIT",
    "SECTION_FAILED",
    "log_fault",
    "fault_counters",
    "reset_fault_counters",
    "fault_log_path",
]
