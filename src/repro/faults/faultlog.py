"""Fault telemetry: one JSONL record per degradation, plus counters.

Every retry, timeout, worker loss, corrupt-cache detection, and resume
hit appends one line to the fault log (default
``runs/journal/faults.jsonl``; override with ``REPRO_FAULT_LOG``, empty
string disables).  Records carry the same fixed key set as prefetch
lifecycle events (``kind``/``cycle``/``line``/``component``/``level``/
``pc``/``dur``) so the existing ``python -m repro events`` verb filters
and summarizes them unchanged:

```
python -m repro events runs/journal/faults.jsonl
python -m repro events runs/journal/faults.jsonl --kind cell_retry --list
```

Field mapping for fault records: ``component`` is the prefetcher spec
key, ``level`` is the attempt number, ``cycle`` is wall-clock
milliseconds since the epoch, ``dur`` is the fault's duration in
milliseconds where meaningful (e.g. how long a timed-out cell had been
running).  Extra keys (``workload``, ``tag``, ``detail``) ride along;
the event readers ignore keys they do not know.  Callers that know the
affected cell attempt pass ``span`` — the deterministic
:func:`repro.obs.cell_span_id` of that attempt — so fault records
correlate with the sweep's ``runs/<id>/spans.jsonl`` and ``repro
events`` output lines up with ``repro trace``.

A module-level counter mirror (:func:`fault_counters`) gives in-process
consumers — ``repro bench --chaos``, the runner, tests — the same
totals without re-reading the log.  When a fabric obs is current
(:func:`repro.obs.current`), each fault also increments its
``faults.<kind>`` metric, which is how retry and chaos-recovery counts
land in ``metrics.json``.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter

FAULT_LOG_ENV = "REPRO_FAULT_LOG"
DEFAULT_FAULT_LOG = "runs/journal/faults.jsonl"

CELL_RETRY = "cell_retry"          # a cell was rescheduled after a fault
CELL_TIMEOUT = "cell_timeout"      # the per-cell wall-clock budget expired
CELL_FAILED = "cell_failed"        # retries exhausted; slot holds CellFailure
WORKER_LOST = "worker_lost"        # a pool worker died under an in-flight cell
POOL_DEGRADED = "pool_degraded"    # the pool was torn down and replaced
CACHE_CORRUPT = "cache_corrupt"    # an unreadable cache entry was dropped
RESUME_HIT = "resume_hit"          # a journaled cell was served from cache
SECTION_FAILED = "section_failed"  # a report_all section was isolated

FAULT_KINDS = (
    CELL_RETRY,
    CELL_TIMEOUT,
    CELL_FAILED,
    WORKER_LOST,
    POOL_DEGRADED,
    CACHE_CORRUPT,
    RESUME_HIT,
    SECTION_FAILED,
)

_counters: Counter = Counter()


def fault_counters() -> dict:
    """Snapshot of this process's fault counters (kind -> count)."""
    return dict(_counters)


def reset_fault_counters() -> None:
    _counters.clear()


def fault_log_path() -> "str | None":
    """Log destination honoring ``REPRO_FAULT_LOG`` (empty = disabled)."""
    path = os.environ.get(FAULT_LOG_ENV)
    if path is None:
        return DEFAULT_FAULT_LOG
    return path or None


def log_fault(kind: str, *, workload: str = "", spec: str = "",
              tag: str = "", attempt: int = 0, seconds: float = 0.0,
              detail: str = "", span: str = "") -> None:
    """Count one fault and append its JSONL record (best-effort: a
    failing log write never takes the run down with it)."""
    _counters[kind] += 1
    from repro.obs import current

    obs = current()
    if obs is not None:
        obs.metrics.count(f"faults.{kind}")
    path = fault_log_path()
    if not path:
        return
    record = {
        "kind": kind,
        "cycle": int(time.time() * 1000),
        "line": -1,
        "component": spec or None,
        "level": attempt,
        "pc": -1,
        "dur": int(seconds * 1000),
        "workload": workload,
        "tag": tag,
        "detail": detail,
    }
    if span:
        record["span"] = span
    try:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
    except OSError:
        pass
