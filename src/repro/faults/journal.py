"""Resumable-matrix journal: which cells already completed, on disk.

An interrupted ``report_all --jobs N`` (Ctrl-C, OOM kill, preempted CI
runner) used to restart from scratch.  With a journal attached, the
:class:`~repro.experiments.runner.ExperimentRunner` appends one record
per completed cell — same ``(workload, spec key, tag)`` identity as the
result cache, scoped by the same ``(code version, config digest)`` pair
— so the next invocation knows exactly which cells are settled and
serves them from the result cache as **resume hits** with zero
re-simulations.

* **Layout** — ``<root>/<code_version>__<config_digest>.jsonl`` (default
  root ``runs/journal``).  One JSON object per line, append-only; a
  torn final line (the crash that motivates the journal) is skipped on
  load rather than fatal.
* **Record** — ``{"status": "ok"|"failed", "workload", "spec", "tag",
  "attempts", "seconds", ...}``; failures carry the failure kind and
  error string so a post-mortem does not depend on scrollback.
* **Scoping** — the code version and config digest live in the file
  name: editing simulator code or changing the config starts a fresh
  journal, mirroring the result cache's invalidation story.

The journal deliberately stores *keys*, not results — the result cache
already persists the payloads, and duplicating them would double the
write volume for nothing.  Resume therefore needs both layers enabled
(``--cache-dir`` + ``--journal-dir``), which the CLI wires together.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

DEFAULT_JOURNAL_DIR = "runs/journal"


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "x"


class MatrixJournal:
    """Append-only journal of completed (and failed) matrix cells."""

    def __init__(self, root, cfg_digest: str,
                 code_version: "str | None" = None) -> None:
        if code_version is None:
            from repro.resultcache import code_version as current

            code_version = current()
        self.root = Path(root)
        self.path = self.root / (
            f"{_slug(code_version)}__{_slug(cfg_digest)}.jsonl"
        )
        self.completed: set = set()
        self.failed: list = []
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = (record["workload"], record["spec"], record["tag"])
            except (ValueError, KeyError, TypeError):
                continue  # torn final line from an interrupted writer
            if record.get("status") == "ok":
                self.completed.add(key)
            else:
                self.failed.append(record)

    def _append(self, record: dict) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        except OSError:
            pass  # journaling is best-effort; the run itself must go on

    # ------------------------------------------------------------------
    def has(self, key) -> bool:
        """Was ``(workload, spec, tag)`` journaled as completed?"""
        return tuple(key) in self.completed

    def record_ok(self, workload: str, spec: str, tag: str,
                  attempts: int = 1, seconds: float = 0.0,
                  kernel: str = "generic") -> None:
        key = (workload, spec, tag)
        if key in self.completed:
            return
        self.completed.add(key)
        self._append({"status": "ok", "workload": workload, "spec": spec,
                      "tag": tag, "attempts": attempts,
                      "seconds": round(seconds, 3), "kernel": kernel})

    def record_failure(self, failure) -> None:
        """Journal a :class:`~repro.faults.CellFailure` for post-mortems."""
        record = {"status": "failed", "workload": failure.workload,
                  "spec": failure.spec, "tag": failure.tag,
                  "kind": failure.kind, "attempts": failure.attempts,
                  "error": failure.error}
        self.failed.append(record)
        self._append(record)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "path": str(self.path),
            "completed": len(self.completed),
            "failed": len(self.failed),
        }

    def clear(self) -> None:
        """Forget this matrix's journal (fresh start)."""
        self.completed.clear()
        self.failed.clear()
        try:
            os.unlink(self.path)
        except OSError:
            pass
