"""The one atomic-write helper every on-disk cache goes through.

Both persistent stores (results in :mod:`repro.resultcache`, compiled
traces in :mod:`repro.workloads.tracecache`) used to hand-roll the
write-temp-then-rename dance — and the result cache named its temp file
after ``id(result)``, which can collide across processes and tear
concurrent writes of the same key.  This helper fixes the scheme once
for everyone:

* the temp name embeds ``os.getpid()``, which two live writers can
  never share, so concurrent ``put``\\ s of the same key each write a
  private file and the final ``os.replace`` is the only visible step;
* the temp file lives next to its target (same filesystem, so the
  rename is atomic) with a name no cache glob matches;
* every write carries a ``label`` (``"result:<workload>/<spec>:<tag>"``,
  ``"trace:<name>"``) that the chaos harness
  (:func:`repro.faults.chaos.filter_write`) uses to deterministically
  tear or corrupt selected entries — which is how the caches' corrupt-
  entry-is-a-miss contract stays tested.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.faults import chaos


def tmp_path_for(path: Path) -> Path:
    """Private sibling temp path for ``path`` (pid-unique, glob-proof)."""
    return path.parent / f"{path.name}.tmp.{os.getpid():x}"


def atomic_write_bytes(path, data: bytes, label: str = "") -> Path:
    """Write ``data`` to ``path`` via a pid-named temp + atomic rename."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = chaos.filter_write(label, data)
    tmp = tmp_path_for(path)
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    finally:
        # A failed write (disk full, interrupt) must not strand a temp
        # file that the next writer with this pid would then clobber.
        if tmp.exists():
            tmp.unlink(missing_ok=True)
    return path


def atomic_write_pickle(path, obj, label: str = "") -> Path:
    """Pickle ``obj`` and :func:`atomic_write_bytes` it."""
    return atomic_write_bytes(
        path, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), label
    )
