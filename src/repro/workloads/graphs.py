"""CSR graph generation for the CRONO-like suite.

CRONO's inputs are real graphs (google, amazon, twitter, california road
network); we substitute networkx generators with matching structure:
scale-free graphs (preferential attachment) for the web/social inputs and
a 2-D grid for the road network, flattened to CSR (offsets + neighbor
indices) the way CRONO stores them.
"""

from __future__ import annotations

import networkx as nx


def to_csr(graph: "nx.Graph") -> tuple[list[int], list[int]]:
    """Flatten a graph into (offsets, neighbors) with integer node ids."""
    nodes = sorted(graph.nodes())
    index_of = {node: i for i, node in enumerate(nodes)}
    offsets = [0]
    neighbors: list[int] = []
    for node in nodes:
        for neighbor in sorted(graph.neighbors(node), key=index_of.get):
            neighbors.append(index_of[neighbor])
        offsets.append(len(neighbors))
    return offsets, neighbors


def web_graph(nodes: int = 3000, edges_per_node: int = 6,
              seed: int = 42) -> tuple[list[int], list[int]]:
    """Scale-free graph (google/amazon-like degree distribution)."""
    graph = nx.barabasi_albert_graph(nodes, edges_per_node, seed=seed)
    return to_csr(graph)


def social_graph(nodes: int = 2000, edges_per_node: int = 12,
                 seed: int = 43) -> tuple[list[int], list[int]]:
    """Denser scale-free graph (twitter-like hubs)."""
    graph = nx.barabasi_albert_graph(nodes, edges_per_node, seed=seed)
    return to_csr(graph)


def road_graph(side: int = 55) -> tuple[list[int], list[int]]:
    """2-D grid (california road-network-like: low degree, high diameter,
    strong spatial locality once renumbered row-major)."""
    graph = nx.grid_2d_graph(side, side)
    return to_csr(graph)


def community_graph(nodes: int = 2400, seed: int = 44
                    ) -> tuple[list[int], list[int]]:
    """Small-world graph (mathoverflow-like clustering)."""
    graph = nx.connected_watts_strogatz_graph(nodes, 10, 0.1, seed=seed)
    return to_csr(graph)
