"""STARBENCH-like embedded/media suite (paper: STARBENCH with large
inputs).

Media kernels lean on streams and dense blocks; the suite mirrors that:
color-space conversion (parallel streams), image rotation (block sweeps),
hashing (compute-dense streaming), clustering (gathers), and a
streamcluster-like object workload.
"""

from __future__ import annotations

from repro.isa.program import Assembler, Program
from repro.workloads import builders
from repro.workloads.builders import Allocator
from repro.workloads.registry import Workload, register


def _program(name: str, emit) -> Program:
    asm = Assembler(name=f"starbench.{name}")
    alloc = Allocator()
    emit(asm, alloc)
    asm.halt()
    return asm.assemble()


def _star(name: str, description: str, emit) -> None:
    register(
        Workload(
            name=f"starbench.{name}",
            suite="starbench",
            build=lambda: _program(name, emit),
            description=description,
        )
    )


_star("rgbyuv", "four-stream color conversion", lambda asm, alloc:
      builders.multi_stream(asm, alloc, elements=11000, streams=4, work=2))

_star("rotate", "image rotation: dense block sweeps", lambda asm, alloc:
      builders.region_sweep(asm, alloc, regions=450, region_bytes=1024,
                            step=64, work=1, seed=51))

_star("md5", "hashing: compute-dense buffer streaming", lambda asm, alloc:
      builders.strided_loop(asm, alloc, elements=4500, stride=8, work=12,
                            passes=2))

_star("kmeans", "centroid gathers over the point set", lambda asm, alloc:
      builders.index_gather(asm, alloc, elements=9000,
                            table_elements=24000, work=4, seed=52))

_star("streamcluster", "distance evaluations against scattered points",
      lambda asm, alloc:
      builders.array_of_pointers(asm, alloc, count=9000, object_bytes=192,
                                 fields=2, work=3, seed=53))

_star("bodytrack", "object-oriented accessors: two streams behind one "
      "shared load (the mPC pattern)",
      lambda asm, alloc:
      builders.call_site_streams(asm, alloc, elements=8000,
                                 strides=(8, 24), work=1))
