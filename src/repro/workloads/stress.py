"""Stress suite: targeted micro-stressors, one engine mechanism each.

The SPEC/CRONO/STARBENCH/NPB suites are *representative* — they mix
patterns the way real programs do, which is exactly why they make poor
bug hunters: a divergence in one mechanism hides behind the noise of
all the others.  This suite is the opposite (the UStress approach):
each workload is built to pin **one** mechanism of the replay engine,
so a bit-identity violation between kernel tiers points at a specific
subsystem instead of "somewhere in the hierarchy".

==================  =====================================================
workload            mechanism pinned
==================  =====================================================
branch_storm        static-BP mispredict storm: data-dependent branches
                    whose outcomes the backward-taken/forward-not-taken
                    predictor gets wrong half the time — pins the
                    branch-penalty arithmetic and the segmented tier's
                    mispredict islands (``_SEG_BP_MISS``).
store_chain         store-buffer pressure: a store-dominated sweep over
                    a working set larger than L2 — every miss allocates
                    a dirty line, so evictions cascade writebacks
                    L1->L2->L3->DRAM; pins writeback-cascade ordering
                    and the DRAM write-queue bookkeeping.
page_stride         page-crossing strides: row-sized (2 KB) hops that
                    open a fresh DRAM row on nearly every access —
                    pins the row-buffer state machine (hit/empty/
                    conflict classes) and bank-ready timing.
chase_ladder        pointer-chase depth ladder: scattered chains of
                    exponentially growing depth — pins the dependent-
                    load serialization path (one outstanding miss at a
                    time, per-PC miss-latency accounting).
shadow_mix          shadow-tag pollution mix: a hot block that lives in
                    the shadow L1 interleaved with a sweeping polluter
                    that evicts it — pins ``ShadowTagStore`` recency
                    and the pollution-miss attribution.
mshr_burst          MSHR saturation bursts: fully independent misses
                    issued back-to-back, more than the 32 MSHRs can
                    hold, then a quiet ALU phase — pins the
                    ``_MshrFile`` acquire/stall algebra at both L1 and
                    L2.
hook_storm          segment-event density: nearly every instruction is
                    a memory op or a mispredicted branch — pins the
                    segmented tier's island-dense replay and its
                    coverage-degrade boundary
                    (``REPRO_SEGMENT_COVERAGE``).
oddgeom             non-power-of-two geometry walks: 192-byte strides
                    over 1.5 KB regions aligned to odd multiples — set
                    indices and DRAM rows advance in non-pow2 steps,
                    pinning the shift/mask vs modulo address math.
==================  =====================================================

Sizing: stressors run ~6-40k dynamic instructions (vs the 160k default
simpoint) — long enough to leave the warm-up regime of the mechanism
they pin, short enough that the fuzz harness can sweep the whole suite
times every registered prefetcher times four replay tiers in seconds.
"""

from __future__ import annotations

import random

from repro.isa.program import Assembler, Program
from repro.workloads import builders
from repro.workloads.builders import Allocator
from repro.workloads.registry import Workload, register


def _program(name: str, emit) -> Program:
    asm = Assembler(name=f"stress.{name}")
    alloc = Allocator()
    emit(asm, alloc)
    asm.halt()
    return asm.assemble()


def _stress(name: str, description: str, emit, simpoint: int) -> None:
    register(
        Workload(
            name=f"stress.{name}",
            suite="stress",
            build=lambda: _program(name, emit),
            simpoint=simpoint,
            description=description,
        )
    )


# ---------------------------------------------------------------------------
# branch_storm — static-BP mispredict storm
# ---------------------------------------------------------------------------
def branch_storm(asm: Assembler, alloc: Allocator, *, decisions: int = 3000,
                 taken_rate: float = 0.5, seed: int = 101) -> int:
    """Data-dependent forward branches with ``taken_rate`` of them taken.

    The static predictor assumes forward-not-taken, so every taken
    decision is a mispredict: at the default rate half the branches pay
    the 15-cycle penalty.  The decision bits are loaded from memory
    (sequential, so the *memory* side is trivially prefetchable — the
    storm isolates the branch machinery).
    """
    rng = random.Random(seed)
    bits_base = alloc.alloc(decisions * 8)
    asm.data(bits_base, [int(rng.random() < taken_rate)
                         for _ in range(decisions)])
    asm.movi("r1", bits_base)
    asm.movi("r2", bits_base + decisions * 8)
    loop = asm.label()
    asm.load("r4", "r1", 0)
    skip = asm.future_label()
    asm.beq("r4", "r0", skip)               # forward: taken when bit == 0
    asm.add("r15", "r15", "r4")             # the "taken" work
    asm.place(skip)
    asm.addi("r1", "r1", 8)
    asm.blt("r1", "r2", loop)
    return bits_base


# ---------------------------------------------------------------------------
# store_chain — writeback-cascade pressure
# ---------------------------------------------------------------------------
def store_chain(asm: Assembler, alloc: Allocator, *, lines: int = 1200,
                passes: int = 2) -> int:
    """Dirty every line of a working set larger than L2, repeatedly.

    Every pass stores to each 64-byte line once; with the set bigger
    than L2 (32 KB scaled) each pass's misses evict the previous pass's
    dirty lines, cascading writebacks down every level and into the
    DRAM write queues.
    """
    base = alloc.alloc(lines * 64)
    asm.movi("r10", 0)
    asm.movi("r11", passes)
    outer = asm.label()
    asm.movi("r1", base)
    asm.movi("r2", base + lines * 64)
    loop = asm.label()
    asm.load("r14", "r1", 0)                # read-modify-write: load,
    asm.add("r14", "r14", "r10")            # bump,
    asm.store("r14", "r1", 0)               # store back (dirties line)
    asm.addi("r1", "r1", 64)
    asm.blt("r1", "r2", loop)
    asm.addi("r10", "r10", 1)
    asm.blt("r10", "r11", outer)
    return base


# ---------------------------------------------------------------------------
# page_stride — DRAM row-boundary crossing sweep
# ---------------------------------------------------------------------------
def page_stride(asm: Assembler, alloc: Allocator, *, touches: int = 2500,
                row_bytes: int = 2048) -> int:
    """Hop one DRAM row (2 KB = 32 lines) per access.

    Each access lands on a fresh row: row-buffer hits vanish and the
    controller alternates empty and conflict activations.  The stride
    also crosses an L1 set-wrap every access (2 KB = exactly the scaled
    L1's 32 sets x 64 B), so the sweep doubles as a set-aliasing test.
    """
    base = alloc.alloc(touches * row_bytes, align=row_bytes)
    asm.movi("r1", base)
    asm.movi("r2", base + touches * row_bytes)
    asm.movi("r3", row_bytes)
    loop = asm.label()
    asm.load("r14", "r1", 0)
    asm.add("r15", "r15", "r14")
    asm.add("r1", "r1", "r3")
    asm.blt("r1", "r2", loop)
    return base


# ---------------------------------------------------------------------------
# chase_ladder — dependent-load depth ladder
# ---------------------------------------------------------------------------
def chase_ladder(asm: Assembler, alloc: Allocator, *, rungs: int = 6,
                 base_depth: int = 32, seed: int = 103) -> None:
    """Scattered pointer chains of depth 32, 64, ... doubling per rung.

    Every load depends on the previous one, so misses cannot overlap:
    the ladder exposes any divergence in single-pending MSHR timing and
    per-PC miss-latency attribution, at several chain lengths so both
    the cold start and the steady state of each depth are covered.
    """
    rng = random.Random(seed)
    for rung in range(rungs):
        depth = base_depth << rung
        builders.linked_list(asm, alloc, nodes=depth, node_bytes=64,
                             layout="scattered", payload_loads=1,
                             seed=rng.randrange(1 << 30))


# ---------------------------------------------------------------------------
# shadow_mix — shadow-tag pollution interleave
# ---------------------------------------------------------------------------
def shadow_mix(asm: Assembler, alloc: Allocator, *, hot_lines: int = 32,
               sweep_lines: int = 1600, rounds: int = 6) -> int:
    """Alternate a reused hot block with a one-shot polluting sweep.

    The hot block fits in the (scaled, 8 KB) L1; each polluting sweep
    evicts it from both the real L1 and the shadow tags.  On re-touch,
    whether the shadow still remembers the hot line decides the
    pollution-miss attribution — any tier that replays shadow recency
    differently diverges here first.
    """
    hot = alloc.alloc(hot_lines * 64)
    sweep = alloc.alloc(sweep_lines * 64)
    asm.movi("r10", 0)
    asm.movi("r11", rounds)
    outer = asm.label()
    # hot pass
    asm.movi("r1", hot)
    asm.movi("r2", hot + hot_lines * 64)
    hot_loop = asm.label()
    asm.load("r14", "r1", 0)
    asm.add("r15", "r15", "r14")
    asm.addi("r1", "r1", 64)
    asm.blt("r1", "r2", hot_loop)
    # polluting sweep
    asm.movi("r1", sweep)
    asm.movi("r2", sweep + sweep_lines * 64)
    sweep_loop = asm.label()
    asm.load("r14", "r1", 0)
    asm.add("r15", "r15", "r14")
    asm.addi("r1", "r1", 64)
    asm.blt("r1", "r2", sweep_loop)
    asm.addi("r10", "r10", 1)
    asm.blt("r10", "r11", outer)
    return hot


# ---------------------------------------------------------------------------
# mshr_burst — MSHR saturation bursts
# ---------------------------------------------------------------------------
def mshr_burst(asm: Assembler, alloc: Allocator, *, bursts: int = 40,
               burst_lines: int = 48, quiet_ops: int = 40) -> int:
    """Issue more independent misses back-to-back than MSHRs exist.

    Each burst touches ``burst_lines`` distinct lines (48 > the 32
    MSHRs) with no intervening computation, saturating the miss file so
    late acquires stall on the earliest pending fill; a quiet ALU phase
    then drains everything before the next burst.  Bursts advance
    through memory so every burst misses cold.
    """
    stride = 64
    base = alloc.alloc(bursts * burst_lines * stride)
    asm.movi("r1", base)
    asm.movi("r5", bursts)
    asm.movi("r6", 0)
    outer = asm.label()
    for i in range(burst_lines):            # unrolled: no branches between
        asm.load("r14", "r1", i * stride)   # the misses of one burst
        asm.add("r15", "r15", "r14")
    for _ in range(quiet_ops):
        asm.add("r15", "r15", "r15")
    asm.addi("r1", "r1", burst_lines * stride)
    asm.addi("r6", "r6", 1)
    asm.blt("r6", "r5", outer)
    return base


# ---------------------------------------------------------------------------
# hook_storm — segment-event-dense replay
# ---------------------------------------------------------------------------
def hook_storm(asm: Assembler, alloc: Allocator, *, lines: int = 896,
               seed: int = 107) -> int:
    """Nearly every instruction a segment event.

    A scattered line list is read with back-to-back dependent loads, a
    taken (mispredicted) forward branch, and a store per element — the
    body unrolled 8-wide so loop control almost vanishes and ~85% of
    retired instructions are segment events.  This sits right at the
    segmented tier's coverage-degrade boundary, exercising both the
    island-dense kernel and the degrade decision.
    """
    rng = random.Random(seed)
    targets = [alloc.alloc(64) for _ in range(lines)]
    rng.shuffle(targets)
    index = alloc.alloc(lines * 8)
    asm.data(index, targets)
    for t in targets:
        asm.data(t, 1)
    asm.movi("r1", index)
    asm.movi("r2", index + lines * 8)
    loop = asm.label()
    for i in range(8):                      # unrolled: 4 events per element
        asm.load("r4", "r1", 8 * i)         # event: pointer load
        asm.load("r14", "r4", 0)            # event: dependent gather
        skip = asm.future_label()
        asm.beq("r14", "r0", skip)          # forward taken -> BP-miss event
        asm.store("r14", "r4", 0)           # event: store on the taken leg
        asm.place(skip)
    asm.addi("r1", "r1", 64)
    asm.blt("r1", "r2", loop)
    return index


# ---------------------------------------------------------------------------
# oddgeom — non-power-of-two geometry walk
# ---------------------------------------------------------------------------
def oddgeom(asm: Assembler, alloc: Allocator, *, regions: int = 144,
            region_bytes: int = 1536, step: int = 192,
            seed: int = 109) -> int:
    """Sweep 1.5 KB regions in 192-byte steps from 1.5 KB-aligned bases.

    Every quantity is a non-power-of-two multiple of the line size, so
    set indices, DRAM banks, and rows all advance in steps that only
    modulo arithmetic gets right — a pow2 shift/mask shortcut applied
    anywhere in a replay tier diverges immediately.
    """
    return builders.region_sweep(asm, alloc, regions=regions,
                                 region_bytes=region_bytes, step=step,
                                 seed=seed)


_stress("branch_storm",
        "static-BP mispredict storm (pins branch penalty + BP islands)",
        lambda asm, alloc: branch_storm(asm, alloc), simpoint=24_000)
_stress("store_chain",
        "store-dominated working set > L2 (pins writeback cascades)",
        lambda asm, alloc: store_chain(asm, alloc), simpoint=16_000)
_stress("page_stride",
        "DRAM row-sized hops (pins row-buffer hit/empty/conflict)",
        lambda asm, alloc: page_stride(asm, alloc), simpoint=12_000)
_stress("chase_ladder",
        "pointer-chase depth ladder (pins dependent-miss serialization)",
        lambda asm, alloc: chase_ladder(asm, alloc), simpoint=16_000)
_stress("shadow_mix",
        "hot block vs polluting sweep (pins shadow tags + pollution)",
        lambda asm, alloc: shadow_mix(asm, alloc), simpoint=40_000)
_stress("mshr_burst",
        "48-wide independent miss bursts (pins MSHR acquire/stall)",
        lambda asm, alloc: mshr_burst(asm, alloc), simpoint=16_000)
_stress("hook_storm",
        "all-event replay (pins segmented islands + coverage degrade)",
        lambda asm, alloc: hook_storm(asm, alloc), simpoint=16_000)
_stress("oddgeom",
        "non-pow2 strides/regions (pins modulo vs shift/mask address math)",
        lambda asm, alloc: oddgeom(asm, alloc), simpoint=20_000)
