"""Adversarial trace fuzzer + cross-tier identity property harness.

The engine now has four replay tiers (generic step loop, specialized
scalar kernels, vectorized batch, segmented batch) whose equivalence
was pinned by a fixture set — a handful of hand-picked traces.  This
module turns that guarantee into a *property*: any trace the fuzzer can
generate, replayed under any registered prefetcher, must produce
bit-identical figures across

* **kernel vs generic** — the automatically selected tier against the
  ``REPRO_KERNEL=generic`` escape hatch (the un-specialized step loop);
* **fused vs singleton** — the cell executed inside a workload-affine
  fused unit (:func:`repro.parallel._simulate_unit`, the exact worker
  entry point, including the slim-payload pack/unpack round trip)
  against the same cell simulated alone;
* **warm vs cold** — the compiled trace read back through the on-disk
  trace cache (``from_column_bytes`` with persisted derived columns)
  against a ground-truth rebuild from the functional machine run.

The generator is **deterministic per seed**: ``fuzz_workload(seed)``
always builds the same program, so its trace compiles through the
normal trace cache (keyed by name + builder-code digest) like any suite
workload, and a violation report names a seed anyone can replay.
Fragments are drawn from the adversarial access-pattern catalog
(pointer-chase ladders, non-pow2 strides, region-boundary sweeps,
dense/sparse mixes, mispredict storms, MSHR bursts) plus — every
``DEGENERATE_EVERY``-th seed — the degenerate shapes (empty program,
single load, single store, ALU-only) that only ever break edge-case
handling, never throughput.

``repro fuzz --seeds N`` runs the harness over the stress suite plus N
fuzzed traces and exits nonzero on any violation; ``repro bench
--fuzz`` embeds a small sweep as a report section and gate.  Harness
counters mirror into the current fabric obs (``fuzz.*`` in ``repro
metrics``) like every other subsystem's.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import asdict, dataclass

from repro.isa.program import Assembler, Program
from repro.isa.trace import compile_trace
from repro.workloads import builders
from repro.workloads.builders import Allocator
from repro.workloads.registry import Workload, get_or_register

FUZZ_SUITE = "fuzz"
DEFAULT_SEEDS = 25

DEGENERATE_EVERY = 13
"""Every 13th seed builds a degenerate program (empty / single memory
op / ALU-only) instead of a fragment mix — the shapes that exercise
empty-column plan building and kernel-selection fallbacks."""

SIMPOINTS = (1_500, 3_000, 6_000, 12_000)
"""Per-seed dynamic-instruction budgets.  Pathology does not need
length: a 3k-instruction trace replays in milliseconds per tier, which
is what lets ``--seeds 200`` sweep every registered prefetcher."""

ADVERSARIAL_STRIDES = (8, 24, 56, 64, 72, 136, 192, 320, 960, 1024,
                       2048, 2112, 4096)
"""Line-straddling, set-aliasing, row-crossing, and non-pow2 strides —
the shapes the prefetcher-taxonomy literature singles out as the ones
each prefetcher family must survive."""

INVARIANTS = ("kernel-vs-generic", "fused-vs-singleton", "warm-vs-cold")


# ---------------------------------------------------------------------------
# Seeded program generator
# ---------------------------------------------------------------------------
def _frag_stride(asm, alloc, rng) -> None:
    builders.strided_loop(
        asm, alloc,
        elements=rng.randrange(100, 1200),
        stride=rng.choice(ADVERSARIAL_STRIDES),
        work=rng.randrange(0, 4),
        store_every=rng.choice((0, 0, 1, 3)),
        passes=rng.randrange(1, 3),
    )


def _frag_streams(asm, alloc, rng) -> None:
    builders.multi_stream(
        asm, alloc,
        elements=rng.randrange(100, 900),
        streams=rng.randrange(2, 6),
        stride=rng.choice((8, 16, 24, 56, 64)),
        work=rng.randrange(0, 3),
    )


def _frag_chase(asm, alloc, rng) -> None:
    builders.linked_list(
        asm, alloc,
        nodes=rng.randrange(50, 1200),
        node_bytes=rng.choice((16, 40, 64, 96, 136, 256)),
        layout=rng.choice(("sequential", "scattered", "clustered")),
        payload_loads=rng.randrange(1, 3),
        work=rng.randrange(0, 3),
        seed=rng.randrange(1 << 30),
    )


def _frag_aop(asm, alloc, rng) -> None:
    builders.array_of_pointers(
        asm, alloc,
        count=rng.randrange(80, 800),
        object_bytes=rng.choice((48, 64, 136, 256, 384)),
        fields=rng.randrange(1, 3),
        work=rng.randrange(0, 3),
        seed=rng.randrange(1 << 30),
    )


def _frag_region(asm, alloc, rng) -> None:
    builders.region_sweep(
        asm, alloc,
        regions=rng.randrange(8, 64),
        region_bytes=rng.choice((256, 768, 1024, 1536, 2048, 3072)),
        step=rng.choice((64, 128, 192, 320)),
        work=rng.randrange(0, 2),
        seed=rng.randrange(1 << 30),
    )


def _frag_gather(asm, alloc, rng) -> None:
    builders.random_gather(
        asm, alloc,
        lookups=rng.randrange(100, 900),
        table_bytes=rng.choice((16, 64, 128, 512)) * 1024,
        seed=rng.randrange(1 << 30),
    )


def _frag_index(asm, alloc, rng) -> None:
    builders.index_gather(
        asm, alloc,
        elements=rng.randrange(100, 900),
        table_elements=rng.randrange(256, 8192),
        locality_window=rng.choice((0, 0, 8, 64)),
        seed=rng.randrange(1 << 30),
    )


def _frag_callsites(asm, alloc, rng) -> None:
    builders.call_site_streams(
        asm, alloc,
        elements=rng.randrange(100, 600),
        strides=(rng.choice((8, 16, 24)), rng.choice((24, 56, 72))),
        work=rng.randrange(0, 2),
    )


def _frag_branch_storm(asm, alloc, rng) -> None:
    from repro.workloads import stress

    stress.branch_storm(asm, alloc,
                        decisions=rng.randrange(200, 1500),
                        taken_rate=rng.uniform(0.1, 0.9),
                        seed=rng.randrange(1 << 30))


def _frag_mshr_burst(asm, alloc, rng) -> None:
    from repro.workloads import stress

    stress.mshr_burst(asm, alloc,
                      bursts=rng.randrange(4, 16),
                      burst_lines=rng.choice((8, 33, 48)),
                      quiet_ops=rng.randrange(0, 60))


def _frag_hook_storm(asm, alloc, rng) -> None:
    from repro.workloads import stress

    stress.hook_storm(asm, alloc, lines=8 * rng.randrange(4, 60),
                      seed=rng.randrange(1 << 30))


def _frag_alu(asm, alloc, rng) -> None:
    # A long event-free stretch (and a vectorized-dispatch workout).
    asm.movi("r9", rng.randrange(1, 100))
    for _ in range(rng.randrange(20, 200)):
        asm.add("r15", "r15", "r9")


_FRAGMENTS = (
    _frag_stride, _frag_streams, _frag_chase, _frag_aop, _frag_region,
    _frag_gather, _frag_index, _frag_callsites, _frag_branch_storm,
    _frag_mshr_burst, _frag_hook_storm, _frag_alu,
)


def _degenerate(asm: Assembler, rng: random.Random) -> str:
    shape = rng.choice(("empty", "load", "store", "alu"))
    if shape == "load":
        asm.movi("r1", 0x40000)
        asm.load("r2", "r1", 0)
    elif shape == "store":
        asm.movi("r1", 0x40000)
        asm.store("r1", "r1", 0)
    elif shape == "alu":
        for _ in range(rng.randrange(1, 30)):
            asm.add("r2", "r2", "r2")
    return shape


def fuzz_name(seed: int) -> str:
    return f"{FUZZ_SUITE}.s{seed:05d}"


def build_fuzz_program(seed: int) -> Program:
    """The deterministic adversarial program for ``seed``."""
    rng = random.Random(0xF02D ^ (seed * 0x9E3779B1))
    asm = Assembler(name=fuzz_name(seed))
    alloc = Allocator()
    if seed and seed % DEGENERATE_EVERY == 0:
        _degenerate(asm, rng)
    else:
        for _ in range(rng.randrange(1, 5)):
            rng.choice(_FRAGMENTS)(asm, alloc, rng)
    asm.halt()
    return asm.assemble()


def fuzz_simpoint(seed: int) -> int:
    rng = random.Random(0x51A9 ^ (seed * 0x9E3779B1))
    return rng.choice(SIMPOINTS)


def fuzz_workload(seed: int) -> Workload:
    """The registered workload for ``seed`` (idempotent per process).

    Registration routes the fuzzed trace through the exact machinery
    every suite workload uses — per-instance memo, on-disk trace cache,
    and (for the fused-unit invariant) worker-side name resolution.
    """
    return get_or_register(
        Workload(
            name=fuzz_name(seed),
            suite=FUZZ_SUITE,
            build=lambda: build_fuzz_program(seed),
            simpoint=fuzz_simpoint(seed),
            description=f"seeded adversarial trace (seed {seed})",
        )
    )


# ---------------------------------------------------------------------------
# Identity property harness
# ---------------------------------------------------------------------------
@dataclass
class IdentityViolation:
    """One bit-identity break, addressable enough to replay by hand."""

    workload: str
    prefetcher: str
    invariant: str
    kernel: str
    reference_kernel: str
    fields: list
    """Names of the diverging result fields (e.g. ``core``, ``dram``)."""

    def to_dict(self) -> dict:
        return asdict(self)


_IDENTITY_FIELDS = (
    "core", "l1d", "l2", "l3", "dram", "prefetch",
    "miss_lines_l1", "miss_lines_l2", "attempted_prefetch_lines",
    "attempted_by_component", "pollution_misses_l1", "pollution_misses_l2",
)


def identity_tuple(result) -> tuple:
    """Everything a simulation reports, for exact comparison."""
    return tuple(getattr(result, name) for name in _IDENTITY_FIELDS)


def diff_fields(a, b) -> list:
    """Names of the result fields where ``a`` and ``b`` differ."""
    return [name for name in _IDENTITY_FIELDS
            if getattr(a, name) != getattr(b, name)]


def _count(event: str, n: int = 1) -> None:
    """Mirror a harness counter into the current fabric obs (if any)."""
    from repro.obs import current

    obs = current()
    if obs is not None:
        obs.metrics.count(f"fuzz.{event}", n)


def _simulate_tier(trace, prefetcher: str, config, tier: str | None):
    """One simulation with ``REPRO_KERNEL`` pinned to ``tier`` (or the
    automatic selection when ``None``), environment restored after."""
    from repro.engine.kernel import KERNEL_ENV
    from repro.engine.system import simulate
    from repro.prefetcher_registry import make_prefetcher

    previous = os.environ.get(KERNEL_ENV)
    if tier is None:
        os.environ.pop(KERNEL_ENV, None)
    else:
        os.environ[KERNEL_ENV] = tier
    try:
        return simulate(trace, make_prefetcher(prefetcher), config)
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = previous


def _warm_trace(workload: Workload):
    """The workload's trace via a forced on-disk round trip.

    ``workload.trace()`` builds (or memo-hits) and guarantees a cache
    ``put``; re-reading through :class:`TraceCache` then deserializes
    the columnar blobs exactly as a fresh process would.  The round-trip
    copy replaces the instance memo so the fused-unit invariant replays
    against the same bytes.  Falls back to the memoized trace when the
    cache is unavailable (e.g. a read-only filesystem).
    """
    from repro.workloads.tracecache import TraceCache

    memo = workload.trace()
    cached = TraceCache().get(workload.name, workload.simpoint)
    if cached is None:
        return memo, False
    workload._trace = cached
    return cached, True


def check_workload(workload: Workload, prefetchers, config=None, *,
                   fused: bool = True, cold: bool = True,
                   scalar: bool = False) -> dict:
    """Run the three invariants for one workload over ``prefetchers``.

    Returns a summary dict: ``violations`` (list of
    :class:`IdentityViolation`), ``simulations``, ``kernels`` (variant
    histogram), ``events``/``instructions`` for sizing.  ``scalar``
    adds a fourth leg (``REPRO_KERNEL=scalar``, the specialized scalar
    kernels with the batch/segmented tiers disabled) so all four tiers
    are directly compared, not just transitively.
    """
    from repro.engine.config import EXPERIMENT_CONFIG
    from repro.engine.kernel import GENERIC, SCALAR
    from repro.parallel import _simulate_unit, _unpack_result

    config = config or EXPERIMENT_CONFIG
    violations: list[IdentityViolation] = []
    kernels: dict[str, int] = {}
    sims = 0

    warm, round_tripped = _warm_trace(workload)
    cold_trace = None
    if cold:
        cold_trace = compile_trace(workload.object_trace())

    singles = {}
    for name in prefetchers:
        tiered = _simulate_tier(warm, name, config, None)
        generic = _simulate_tier(warm, name, config, GENERIC)
        sims += 2
        singles[name] = tiered
        kernels[tiered.kernel] = kernels.get(tiered.kernel, 0) + 1
        if identity_tuple(tiered) != identity_tuple(generic):
            violations.append(IdentityViolation(
                workload.name, name, "kernel-vs-generic",
                tiered.kernel, generic.kernel,
                diff_fields(tiered, generic)))
        if scalar:
            scalar_result = _simulate_tier(warm, name, config, SCALAR)
            sims += 1
            if identity_tuple(tiered) != identity_tuple(scalar_result):
                violations.append(IdentityViolation(
                    workload.name, name, "kernel-vs-generic",
                    tiered.kernel, scalar_result.kernel,
                    diff_fields(tiered, scalar_result)))
        if cold_trace is not None:
            cold_result = _simulate_tier(cold_trace, name, config, None)
            sims += 1
            if identity_tuple(tiered) != identity_tuple(cold_result):
                violations.append(IdentityViolation(
                    workload.name, name, "warm-vs-cold",
                    tiered.kernel, cold_result.kernel,
                    diff_fields(tiered, cold_result)))

    if fused:
        # The exact pool-worker entry point, in-process: one fused unit
        # of every prefetcher cell, slim-payload round trip included.
        cells = [(workload.name, name, "") for name in prefetchers]
        outcomes = _simulate_unit((cells, config, 0))
        sims += len(cells)
        for (name, outcome) in zip(prefetchers, outcomes):
            if outcome[0] != "ok":
                violations.append(IdentityViolation(
                    workload.name, name, "fused-vs-singleton",
                    "error", singles[name].kernel, [outcome[1]]))
                continue
            fused_result = _unpack_result(outcome[1])
            if (identity_tuple(fused_result)
                    != identity_tuple(singles[name])):
                violations.append(IdentityViolation(
                    workload.name, name, "fused-vs-singleton",
                    fused_result.kernel, singles[name].kernel,
                    diff_fields(fused_result, singles[name])))

    _count("cells", len(prefetchers))
    _count("simulations", sims)
    if violations:
        _count("violations", len(violations))
    return {
        "workload": workload.name,
        "trace_instructions": len(warm),
        "trace_events": len(warm.segment_events()),
        "round_tripped": round_tripped,
        "violations": violations,
        "simulations": sims,
        "kernels": kernels,
    }


def run_fuzz(seeds: int = DEFAULT_SEEDS, *, stress: bool = True,
             prefetchers=None, config=None, scalar_stress: bool = True,
             progress=None) -> dict:
    """The full property sweep: stress suite + ``seeds`` fuzzed traces.

    Every workload is checked under every prefetcher in ``prefetchers``
    (default: the whole registry) for the three invariants; stress
    workloads additionally get the explicit ``REPRO_KERNEL=scalar`` leg
    (``scalar_stress``).  Returns a JSON-ready report whose
    ``violations`` list is empty exactly when the property held.
    """
    from repro.prefetcher_registry import available_prefetchers
    from repro.workloads import get_suite

    prefetchers = list(prefetchers) if prefetchers else (
        available_prefetchers())
    workloads: list[tuple[Workload, bool]] = []
    if stress:
        workloads += [(w, scalar_stress) for w in get_suite("stress")]
    workloads += [(fuzz_workload(s), False) for s in range(seeds)]

    started = time.perf_counter()
    violations: list[IdentityViolation] = []
    kernels: dict[str, int] = {}
    per_workload = []
    sims = 0
    for i, (workload, scalar) in enumerate(workloads):
        summary = check_workload(workload, prefetchers, config,
                                 scalar=scalar)
        violations += summary["violations"]
        sims += summary["simulations"]
        for variant, count in summary["kernels"].items():
            kernels[variant] = kernels.get(variant, 0) + count
        per_workload.append({**summary,
                             "violations": [v.to_dict() for v in
                                            summary["violations"]]})
        if progress is not None and (i + 1) % 10 == 0:
            progress(f"fuzz: {i + 1}/{len(workloads)} workloads, "
                     f"{sims} simulations, "
                     f"{len(violations)} violations")
    return {
        "seeds": seeds,
        "stress": stress,
        "invariants": list(INVARIANTS),
        "prefetchers": prefetchers,
        "workloads": len(workloads),
        "cells": len(workloads) * len(prefetchers),
        "simulations": sims,
        "kernels": kernels,
        "seconds": round(time.perf_counter() - started, 3),
        "violations": [v.to_dict() for v in violations],
        "per_workload": per_workload,
        "ok": not violations,
    }
