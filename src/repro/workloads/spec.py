"""SPEC CPU2006-like suite: 21 synthetic workloads.

Each workload is named after a SPEC 2006 benchmark and reproduces that
benchmark's *dominant memory access pattern mix* (streaming, pointer
chasing, indirection, spatial blocks, computation density) at a scale
matched to the shortened simpoints and scaled caches.  These are pattern
stand-ins, not ports — see DESIGN.md.
"""

from __future__ import annotations

from repro.isa.program import Assembler, Program
from repro.workloads import builders
from repro.workloads.builders import Allocator
from repro.workloads.registry import Workload, register


def _program(name: str, emit) -> Program:
    asm = Assembler(name=f"spec.{name}")
    alloc = Allocator()
    emit(asm, alloc)
    asm.halt()
    return asm.assemble()


def _spec(name: str, description: str, emit) -> None:
    register(
        Workload(
            name=f"spec.{name}",
            suite="spec",
            build=lambda: _program(name, emit),
            description=description,
        )
    )


# ---------------------------------------------------------------------------
# Streaming / strided (libquantum, milc, lbm, GemsFDTD, cactusADM, hmmer,
# namd)
# ---------------------------------------------------------------------------
_spec("libquantum", "pure streaming over a large array", lambda asm, alloc:
      builders.strided_loop(asm, alloc, elements=26000, stride=8, work=1))

_spec("milc", "three concurrent streams (lattice QCD style)",
      lambda asm, alloc:
      builders.multi_stream(asm, alloc, elements=14000, streams=3, work=1))

_spec("lbm", "stencil rows with a write stream", lambda asm, alloc:
      builders.stencil_rows(asm, alloc, rows=95, cols=120, work=0))

_spec("gemsfdtd", "compute-heavier stencil", lambda asm, alloc:
      builders.stencil_rows(asm, alloc, rows=72, cols=120, work=2))

_spec("cactusadm", "four-stream relaxation kernel", lambda asm, alloc:
      builders.multi_stream(asm, alloc, elements=9000, streams=4, work=3))

_spec("hmmer", "small hot array, heavy compute per element",
      lambda asm, alloc:
      builders.strided_loop(asm, alloc, elements=4000, stride=8, work=10,
                            passes=3))

_spec("namd", "two streams with moderate compute", lambda asm, alloc:
      builders.multi_stream(asm, alloc, elements=11000, streams=2, work=4))


# ---------------------------------------------------------------------------
# Pointer chasing (mcf, omnetpp, xalancbmk)
# ---------------------------------------------------------------------------
_spec("mcf", "scattered linked-list traversal (network simplex arcs)",
      lambda asm, alloc:
      builders.linked_list(asm, alloc, nodes=14000, node_bytes=96,
                           layout="scattered", payload_loads=2, work=2))


def _omnetpp(asm: Assembler, alloc: Allocator) -> None:
    builders.array_of_pointers(asm, alloc, count=9000, object_bytes=192,
                               work=1, seed=21)
    builders.linked_list(asm, alloc, nodes=5000, node_bytes=64,
                         layout="clustered", work=1, seed=22)


_spec("omnetpp", "event objects via pointer array + message queue list",
      _omnetpp)


def _xalancbmk(asm: Assembler, alloc: Allocator) -> None:
    builders.linked_list(asm, alloc, nodes=7000, node_bytes=80,
                         layout="scattered", work=1, seed=23)
    builders.random_gather(asm, alloc, lookups=5000,
                           table_bytes=256 * 1024, seed=24)


_spec("xalancbmk", "DOM-tree-like pointer walk + symbol table probing",
      _xalancbmk)


# ---------------------------------------------------------------------------
# Array-of-pointers / object-oriented (perlbench, dealII, povray)
# ---------------------------------------------------------------------------
def _perlbench(asm: Assembler, alloc: Allocator) -> None:
    builders.array_of_pointers(asm, alloc, count=7000, object_bytes=128,
                               fields=2, work=2, seed=25)
    builders.region_sweep(asm, alloc, regions=180, region_bytes=1024,
                          work=1, seed=26)


_spec("perlbench", "SV-object dereferences + string buffer sweeps",
      _perlbench)

_spec("dealii", "element objects behind an iterator array",
      lambda asm, alloc:
      builders.array_of_pointers(asm, alloc, count=11000, object_bytes=128,
                                 work=2, seed=27))

_spec("povray", "scene objects, several fields per object, heavy compute",
      lambda asm, alloc:
      builders.array_of_pointers(asm, alloc, count=7500, object_bytes=256,
                                 fields=3, work=4, seed=28))


# ---------------------------------------------------------------------------
# Irregular (gobmk, sjeng, astar, soplex, gcc, bzip2, sphinx3, h264ref)
# ---------------------------------------------------------------------------
_spec("gobmk", "board evaluation over an L2-resident table",
      lambda asm, alloc:
      builders.random_gather(asm, alloc, lookups=11000,
                             table_bytes=32 * 1024, work=3, seed=29))

_spec("sjeng", "transposition-table probing over a large table",
      lambda asm, alloc:
      builders.random_gather(asm, alloc, lookups=11000,
                             table_bytes=1024 * 1024, work=2, seed=30))

_spec("astar", "open-list neighbor lookups with some locality",
      lambda asm, alloc:
      builders.index_gather(asm, alloc, elements=11000,
                            table_elements=60000, locality_window=64,
                            work=2, seed=31))

_spec("soplex", "sparse-matrix column gathers", lambda asm, alloc:
      builders.index_gather(asm, alloc, elements=13000,
                            table_elements=80000, locality_window=32,
                            work=1, seed=32))


def _gcc(asm: Assembler, alloc: Allocator) -> None:
    builders.index_gather(asm, alloc, elements=8000, table_elements=40000,
                          locality_window=512, work=1, seed=33)
    builders.strided_loop(asm, alloc, elements=5000, stride=8, work=1)


_spec("gcc", "RTL walks with windowed locality + pass over insn stream",
      _gcc)


def _bzip2(asm: Assembler, alloc: Allocator) -> None:
    builders.strided_loop(asm, alloc, elements=9000, stride=8, work=1)
    builders.random_gather(asm, alloc, lookups=7000,
                           table_bytes=64 * 1024, work=1, seed=34)


_spec("bzip2", "sequential block scan + sort-table probing", _bzip2)


def _sphinx3(asm: Assembler, alloc: Allocator) -> None:
    builders.strided_loop(asm, alloc, elements=9000, stride=8, work=2)
    builders.index_gather(asm, alloc, elements=6000, table_elements=50000,
                          locality_window=128, work=1, seed=35)


_spec("sphinx3", "feature streaming + senone score gathers", _sphinx3)


def _h264ref(asm: Assembler, alloc: Allocator) -> None:
    builders.region_sweep(asm, alloc, regions=520, region_bytes=1024,
                          step=64, work=2, seed=36)
    builders.strided_loop(asm, alloc, elements=4000, stride=8, work=1)


_spec("h264ref", "motion-compensation block sweeps + reference stream",
      _h264ref)


# ---------------------------------------------------------------------------
# Remaining mixes
# ---------------------------------------------------------------------------
def _wrf_like(asm: Assembler, alloc: Allocator) -> None:
    builders.stencil_rows(asm, alloc, rows=50, cols=100, work=2)
    builders.strided_loop(asm, alloc, elements=6000, stride=8, work=1)


_spec("wrf", "weather stencil + field copy streams", _wrf_like)


def _zeusmp(asm: Assembler, alloc: Allocator) -> None:
    builders.multi_stream(asm, alloc, elements=8000, streams=3, work=2)
    builders.strided_loop(asm, alloc, elements=4000, stride=1024, work=1)


_spec("zeusmp", "multi-field streams + large-stride plane walk", _zeusmp)

_spec("bwaves", "three large wave-field streams", lambda asm, alloc:
      builders.multi_stream(asm, alloc, elements=12000, streams=3, work=2))

_spec("gamess", "quantum-chemistry compute over a hot working set",
      lambda asm, alloc:
      builders.strided_loop(asm, alloc, elements=2500, stride=8, work=20,
                            passes=2))

_spec("gromacs", "neighbor-list force gathers", lambda asm, alloc:
      builders.index_gather(asm, alloc, elements=9000,
                            table_elements=30000, locality_window=16,
                            work=4, seed=37))


def _leslie3d(asm: Assembler, alloc: Allocator) -> None:
    builders.stencil_rows(asm, alloc, rows=60, cols=140, work=2)
    builders.strided_loop(asm, alloc, elements=4000, stride=8, work=1)


_spec("leslie3d", "3-D eddy stencil + boundary stream", _leslie3d)


def _calculix(asm: Assembler, alloc: Allocator) -> None:
    builders.index_gather(asm, alloc, elements=8000, table_elements=50000,
                          locality_window=24, work=2, seed=38)
    builders.strided_loop(asm, alloc, elements=4000, stride=8, work=2)


_spec("calculix", "FE sparse solve + element stream", _calculix)

_spec("tonto", "molecule objects with several fields, heavy compute",
      lambda asm, alloc:
      builders.array_of_pointers(asm, alloc, count=6500, object_bytes=192,
                                 fields=2, work=5, seed=39))
