"""CRONO-like graph suite.

CRONO runs multithreaded graph algorithms over real inputs (google,
amazon, twitter, california road network, mathoverflow).  Here each
workload walks a CSR graph generated with matching structure (see
:mod:`repro.workloads.graphs`): a strided pass over the offsets array,
bursty strided neighbor-list reads, and irregular gathers of per-node
state — the access mix that makes graph workloads hard for prefetchers.
"""

from __future__ import annotations

from repro.isa.program import Assembler, Program
from repro.workloads import builders, graphs
from repro.workloads.builders import Allocator
from repro.workloads.registry import Workload, register


def _graph_program(name: str, csr_factory, work: int,
                   passes: int = 1) -> Program:
    asm = Assembler(name=f"crono.{name}")
    alloc = Allocator()
    offsets, neighbors = csr_factory()
    for _ in range(passes):
        builders.csr_traversal(asm, alloc, offsets=offsets,
                               neighbors=neighbors, work=work)
    asm.halt()
    return asm.assemble()


def _crono(name: str, description: str, csr_factory, work: int,
           passes: int = 1) -> None:
    register(
        Workload(
            name=f"crono.{name}",
            suite="crono",
            build=lambda: _graph_program(name, csr_factory, work, passes),
            description=description,
        )
    )


_crono("bfs_google", "BFS-like frontier expansion over a web graph",
       graphs.web_graph, work=0)

_crono("pagerank_amazon", "rank accumulation over a co-purchase graph",
       lambda: graphs.web_graph(nodes=2600, edges_per_node=8, seed=45),
       work=2)

_crono("sssp_twitter", "relaxations over a hub-heavy social graph",
       graphs.social_graph, work=1)

_crono("cc_california", "label propagation over a road grid",
       graphs.road_graph, work=1, passes=2)

_crono("tc_mathoverflow", "triangle-counting-like neighborhood scans",
       graphs.community_graph, work=1)

# The paper runs each algorithm over several inputs; a second input per
# algorithm family keeps that cross-product flavor without exploding the
# suite.
_crono("bfs_california", "BFS over the road grid (high locality)",
       graphs.road_graph, work=0, passes=2)

_crono("pagerank_twitter", "rank accumulation over a hub-heavy graph",
       lambda: graphs.social_graph(nodes=1800, edges_per_node=14, seed=46),
       work=2)

_crono("sssp_amazon", "relaxations over a co-purchase graph",
       lambda: graphs.web_graph(nodes=2800, edges_per_node=7, seed=47),
       work=1)
