"""Persistent on-disk cache of compiled workload traces.

Functional trace generation is deterministic but not free: every process
(and, before this cache existed, every *worker* process) used to re-run
the :class:`~repro.isa.machine.Machine` over each workload it touched.
This module persists the compiled columnar form
(:class:`~repro.isa.trace.CompiledTrace`) so a trace is built **once per
builder-code version**, ever, per machine:

* **Key** — workload name + simpoint + ``trace_code_version()``, a sha1
  over every source file that can change what the machine emits (the
  whole ``repro.isa`` package and the ``repro.workloads`` package,
  builders included).  This mirrors :mod:`repro.resultcache`'s
  code-version scheme and shares its digest helper.
* **Layout** — ``<root>/<trace_code_version>/<workload>__<simpoint>.trace``
  (default root ``runs/traces``; override with the ``REPRO_TRACE_CACHE``
  environment variable, empty string disables the cache).
* **Format** — a pickled dict of per-column ``bytes`` blobs produced by
  :meth:`CompiledTrace.column_bytes`, the derived columns from
  :meth:`CompiledTrace.derived_bytes` (format 2), the batch
  segment-event positions from :meth:`CompiledTrace.segment_bytes`
  (format 3), plus the memory image as two ``array('q')`` blobs.
  Loading is one zero-copy ``numpy.frombuffer`` view per column — no
  per-record Python loop and no ``tolist`` round-trip.
* **Invalidation** — entries from other code versions sit in their own
  directories and are never read; ``repro cache stats`` counts them and
  ``repro cache clear --stale`` deletes them.  Corrupt entries behave as
  misses.

Module-level counters (``builds``/``disk_hits``/``memory_hits``) expose
how many traces were actually generated in this process — a warm
``report_all`` run must show zero builds.
"""

from __future__ import annotations

import os
import pickle
import re
from array import array
from pathlib import Path

from repro.isa.trace import (
    CompiledTrace,
    derived_counters,
    reset_derived_counters,
)

# Version 3: columns restore as numpy arrays (no tolist round-trip) and
# entries carry the precomputed batch segment-event positions alongside
# the derived columns (line/mpc/disp/bp_miss, see
# repro.isa.trace.DERIVED_FIELDS).  The version salts
# trace_code_version(), so bumping it moves the cache to a fresh
# directory and older-format entries become stale wholesale; an entry
# from another format that is nonetheless reached (e.g. a hand-moved
# file) is dropped and counted as ``cache_stale_format``.
TRACE_CACHE_VERSION = 3
DEFAULT_TRACE_CACHE_DIR = "runs/traces"
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

_SIGNED_64_MIN = -(1 << 63)
_SIGNED_64_MAX = (1 << 63) - 1

_trace_code_version_cache: str | None = None

_counters = {"builds": 0, "disk_hits": 0, "memory_hits": 0,
             "cache_stale_format": 0,
             # Shared-memory column sharing (repro.parallel.shm):
             # segments published by this process (parent side) and
             # zero-copy attaches performed (worker side).
             "shm_publishes": 0, "shm_attaches": 0}


def trace_counters() -> dict:
    """Snapshot of this process's trace-generation counters.

    Merges the derived-column build/hit counters kept by
    :mod:`repro.isa.trace` so ``repro cache stats`` shows both layers.
    """
    merged = dict(_counters)
    merged.update(derived_counters())
    return merged


def count(event: str) -> None:
    """Bump one of the trace counters (``builds``/``disk_hits``/...).

    When a fabric obs is current, the event also lands in its metrics
    registry as ``trace_cache.<event>`` — how trace-cache hit rates
    reach ``metrics.json``.
    """
    _counters[event] += 1
    from repro.obs import current

    obs = current()
    if obs is not None:
        obs.metrics.count(f"trace_cache.{event}")


def reset_trace_counters() -> None:
    for key in _counters:
        _counters[key] = 0
    reset_derived_counters()


def trace_code_version() -> str:
    """Digest of every source file that can change a generated trace.

    Covers the functional substrate (``repro.isa``: machine, ISA,
    assembler) and the workload definitions (``repro.workloads``:
    builders, suites, registry, this module).  Editing any of them —
    committed or not — orphans every cached trace.
    """
    global _trace_code_version_cache
    if _trace_code_version_cache is None:
        from repro.resultcache import digest_sources

        here = Path(__file__).resolve().parent
        paths = list(here.glob("*.py"))
        paths.extend((here.parent / "isa").glob("*.py"))
        _trace_code_version_cache = digest_sources(
            paths, f"trace-cache-v{TRACE_CACHE_VERSION}"
        )
    return _trace_code_version_cache


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "x"


def default_root() -> str | None:
    """Cache root honoring ``REPRO_TRACE_CACHE`` (empty = disabled)."""
    root = os.environ.get(TRACE_CACHE_ENV)
    if root is None:
        return DEFAULT_TRACE_CACHE_DIR
    return root or None


class TraceCache:
    """Read-through store of compiled traces, keyed by builder code."""

    def __init__(self, root: str | None = None) -> None:
        if root is None:
            root = default_root()
        self.root = Path(root) if root else None

    @property
    def enabled(self) -> bool:
        return self.root is not None

    # ------------------------------------------------------------------
    def entry_path(self, name: str, simpoint: int) -> Path:
        return (self.root / trace_code_version()
                / f"{_slug(name)}__{simpoint}.trace")

    def get(self, name: str, simpoint: int) -> CompiledTrace | None:
        """Cached compiled trace or ``None``; corrupt entries are misses."""
        if self.root is None:
            return None
        path = self.entry_path(name, simpoint)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if payload["format"] != TRACE_CACHE_VERSION:
                # A stale-format entry inside the *current* version
                # directory (format bump without a code change, or a
                # hand-moved file): drop it with attribution instead of
                # silently rebuilding over it forever.
                count("cache_stale_format")
                from repro.faults import CACHE_CORRUPT, log_fault

                log_fault(CACHE_CORRUPT, workload=name,
                          detail=(f"stale format {payload['format']} "
                                  f"(want {TRACE_CACHE_VERSION}): "
                                  f"{path.name}"))
                path.unlink(missing_ok=True)
                return None
            addresses = array("q")
            addresses.frombytes(payload["memory_addr"])
            values = array("q")
            values.frombytes(payload["memory_val"])
            memory = dict(zip(addresses.tolist(), values.tolist()))
            return CompiledTrace.from_column_bytes(
                payload["name"], payload["columns"], memory,
                derived=payload.get("derived"),
                segments=payload.get("segments"),
            )
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, KeyError,
                ValueError, TypeError) as exc:
            # Torn write or incompatible payload: drop and rebuild.
            from repro.faults import CACHE_CORRUPT, log_fault

            log_fault(CACHE_CORRUPT, workload=name,
                      detail=f"{type(exc).__name__}: {path.name}")
            path.unlink(missing_ok=True)
            return None

    def put(self, trace: CompiledTrace, simpoint: int) -> Path | None:
        """Serialize ``trace``; atomic rename so concurrent builders of
        the same workload cannot tear each other's entries.

        Returns ``None`` (entry skipped) when the cache is disabled or
        the memory image holds a value outside signed 64-bit range — the
        columnar format could not round-trip it bit-identically.
        """
        if self.root is None:
            return None
        memory = trace.memory
        for address, value in memory.items():
            if not (_SIGNED_64_MIN <= value <= _SIGNED_64_MAX
                    and 0 <= address <= _SIGNED_64_MAX):
                return None
        payload = {
            "format": TRACE_CACHE_VERSION,
            "name": trace.name,
            "simpoint": simpoint,
            "columns": trace.column_bytes(),
            "derived": trace.derived_bytes(),
            "segments": trace.segment_bytes(),
            "memory_addr": array("q", memory.keys()).tobytes(),
            "memory_val": array("q", memory.values()).tobytes(),
        }
        from repro.faults import atomic_write_pickle

        path = self.entry_path(trace.name, simpoint)
        return atomic_write_pickle(path, payload,
                                   label=f"trace:{trace.name}")

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Entry/byte counts split current vs stale, plus the process's
        build counters."""
        report = {
            "root": str(self.root) if self.root else "(disabled)",
            "trace_code_version": trace_code_version(),
            "entries": 0,
            "bytes": 0,
            "stale_entries": 0,
            "stale_bytes": 0,
            "stale_versions": [],
            "counters": trace_counters(),
        }
        if self.root is None or not self.root.is_dir():
            return report
        current = trace_code_version()
        for version_dir in sorted(self.root.iterdir()):
            if not version_dir.is_dir():
                continue
            entries = list(version_dir.glob("*.trace"))
            size = sum(p.stat().st_size for p in entries)
            if version_dir.name == current:
                report["entries"] = len(entries)
                report["bytes"] = size
            else:
                report["stale_entries"] += len(entries)
                report["stale_bytes"] += size
                report["stale_versions"].append(version_dir.name)
        return report

    def clear(self, stale_only: bool = False) -> int:
        """Delete entries (all, or only stale builder versions)."""
        if self.root is None or not self.root.is_dir():
            return 0
        current = trace_code_version()
        removed = 0
        for version_dir in sorted(self.root.iterdir()):
            if not version_dir.is_dir():
                continue
            if stale_only and version_dir.name == current:
                continue
            for path in version_dir.glob("*.trace"):
                path.unlink(missing_ok=True)
                removed += 1
            try:
                version_dir.rmdir()
            except OSError:
                pass
        return removed
