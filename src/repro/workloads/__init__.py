"""Synthetic workload suites standing in for the paper's benchmarks.

The paper evaluates on SPEC CPU2006, CRONO (graphs), STARBENCH (embedded)
and NPB (scientific).  Those binaries cannot be run here, so each suite is
reproduced as a set of micro-ISA programs whose *memory access patterns*
match the family (see DESIGN.md substitutions):

* :mod:`repro.workloads.spec` — 21 workloads named after SPEC 2006
  benchmarks, each mimicking that benchmark's dominant pattern mix.
* :mod:`repro.workloads.crono` — graph kernels (BFS, SSSP-lite, PageRank,
  components) over CSR representations of generated graphs.
* :mod:`repro.workloads.starbench` — embedded/media kernels.
* :mod:`repro.workloads.npb` — scientific kernels (CG/MG/FT/IS-like).
* :mod:`repro.workloads.mixes` — seeded 4-workload multicore mixes.

Use :func:`get_workload` / :func:`get_suite` for lookup; traces are cached
per process so repeated experiments reuse the functional run.
"""

from repro.workloads.registry import (
    Workload,
    all_suites,
    get_suite,
    get_workload,
    workload_names,
)

__all__ = [
    "Workload",
    "all_suites",
    "get_suite",
    "get_workload",
    "workload_names",
]
