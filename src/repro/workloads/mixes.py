"""Multicore mixes: seeded 4-workload combinations (paper Sec. V-A:
"4-thread mixes randomly drawn from the above suites").
"""

from __future__ import annotations

import random

from repro.workloads.registry import Workload, get_workload, workload_names

DEFAULT_MIX_COUNT = 8
MIX_WIDTH = 4
MIX_SEED = 2018  # the paper's year; any fixed seed works


def mix_names(count: int = DEFAULT_MIX_COUNT,
              seed: int = MIX_SEED) -> list[list[str]]:
    """Deterministic list of 4-workload mixes drawn across all suites."""
    rng = random.Random(seed)
    pool = workload_names()
    return [rng.sample(pool, MIX_WIDTH) for _ in range(count)]


def mix_workloads(count: int = DEFAULT_MIX_COUNT,
                  seed: int = MIX_SEED) -> list[list[Workload]]:
    """The same mixes resolved to :class:`Workload` objects."""
    return [
        [get_workload(name) for name in names]
        for names in mix_names(count, seed)
    ]
