"""Reusable kernel builders for the synthetic workloads.

Each builder emits one loop nest into an :class:`~repro.isa.Assembler`
plus the data it traverses.  Register conventions are local to a builder;
kernels composed sequentially in one program may reuse registers freely.

The builders cover the paper's access-pattern taxonomy:

=====================  =======================================
builder                pattern (paper category)
=====================  =======================================
strided_loop           canonical strided stream (LHF)
multi_stream           several concurrent strided streams (LHF)
stencil_rows           neighbor rows, multi-stream (LHF)
array_of_pointers      strided pointers -> scattered objects
linked_list            pointer chain (HHF)
region_sweep           pointer-selected dense regions (MHF)
random_gather          irregular table lookups (HHF)
index_gather           A[B[i]] indirection (HHF/AoP)
csr_traversal          CSR graph walk: offsets+neighbors+gather
=====================  =======================================
"""

from __future__ import annotations

import random

from repro.isa.program import Assembler


class Allocator:
    """Bump allocator for non-overlapping data segments.

    The default alignment is one cache line: allocating every small
    object page-aligned would alias them all onto cache set 0 and turn
    the workloads into pathological conflict tests.  Builders that need
    coarser alignment (e.g. region sweeps aligned to the region size)
    request it per allocation.
    """

    def __init__(self, base: int = 0x100000, align: int = 64) -> None:
        self._next = base
        self._align = align

    def alloc(self, size_bytes: int, align: int | None = None) -> int:
        step = align if align is not None else self._align
        base = (self._next + step - 1) // step * step
        self._next = base + max(size_bytes, 8)
        return base


def _emit_work(asm: Assembler, work: int, acc: str = "r15",
               src: str = "r14") -> None:
    """Emit ``work`` filler ALU ops (models per-element computation)."""
    for _ in range(work):
        asm.add(acc, acc, src)


# ---------------------------------------------------------------------------
# Strided patterns (LHF)
# ---------------------------------------------------------------------------
def strided_loop(asm: Assembler, alloc: Allocator, *, elements: int,
                 stride: int = 8, work: int = 0, store_every: int = 0,
                 passes: int = 1) -> int:
    """``for i: acc += a[i*stride]`` — the canonical stream.

    ``store_every`` > 0 adds a store to every Nth element (write stream);
    ``passes`` repeats the sweep (temporal reuse).  Returns the base
    address.
    """
    base = alloc.alloc(elements * stride)
    asm.movi("r10", 0)                      # pass counter
    asm.movi("r11", passes)
    outer = asm.label()
    asm.movi("r1", base)
    asm.movi("r2", base + elements * stride)
    loop = asm.label()
    asm.load("r14", "r1", 0)
    asm.add("r15", "r15", "r14")
    _emit_work(asm, work)
    if store_every > 0:
        asm.store("r15", "r1", 0)
    asm.addi("r1", "r1", stride)
    asm.blt("r1", "r2", loop)
    asm.addi("r10", "r10", 1)
    asm.blt("r10", "r11", outer)
    return base


def multi_stream(asm: Assembler, alloc: Allocator, *, elements: int,
                 streams: int = 3, stride: int = 8, work: int = 0) -> list[int]:
    """``c[i] = a[i] + b[i] ...`` — N concurrent strided streams.

    Stream ``k`` is loaded into ``r20+k``; the last stream is stored
    (STREAM-triad-like).  At most 6 streams.
    """
    if not 1 <= streams <= 6:
        raise ValueError("streams must be in 1..6")
    bases = [alloc.alloc(elements * stride) for _ in range(streams)]
    for k, base in enumerate(bases):
        asm.movi(f"r{20 + k}", base)
    asm.movi("r1", 0)
    asm.movi("r2", elements)
    loop = asm.label()
    for k in range(streams - 1):
        asm.load("r14", f"r{20 + k}", 0)
        asm.add("r15", "r15", "r14")
    _emit_work(asm, work)
    asm.store("r15", f"r{20 + streams - 1}", 0)
    for k in range(streams):
        asm.addi(f"r{20 + k}", f"r{20 + k}", stride)
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", loop)
    return bases


def stencil_rows(asm: Assembler, alloc: Allocator, *, rows: int, cols: int,
                 work: int = 0) -> int:
    """3-row stencil: ``out[r][c] = in[r-1][c] + in[r][c] + in[r+1][c]``.

    Three read streams one row apart plus one write stream — the
    GemsFDTD/lbm-style pattern.
    """
    row_bytes = cols * 8
    in_base = alloc.alloc((rows + 2) * row_bytes)
    out_base = alloc.alloc(rows * row_bytes)
    asm.movi("r20", in_base)                # row r-1
    asm.movi("r21", in_base + row_bytes)    # row r
    asm.movi("r22", in_base + 2 * row_bytes)  # row r+1
    asm.movi("r23", out_base)
    asm.movi("r1", 0)
    asm.movi("r2", rows * cols)
    loop = asm.label()
    asm.load("r14", "r20", 0)
    asm.load("r13", "r21", 0)
    asm.add("r14", "r14", "r13")
    asm.load("r13", "r22", 0)
    asm.add("r15", "r14", "r13")
    _emit_work(asm, work)
    asm.store("r15", "r23", 0)
    asm.addi("r20", "r20", 8)
    asm.addi("r21", "r21", 8)
    asm.addi("r22", "r22", 8)
    asm.addi("r23", "r23", 8)
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", loop)
    return in_base


# ---------------------------------------------------------------------------
# Pointer patterns
# ---------------------------------------------------------------------------
def array_of_pointers(asm: Assembler, alloc: Allocator, *, count: int,
                      object_bytes: int = 256, field_offset: int = 16,
                      work: int = 0, seed: int = 11,
                      fields: int = 1) -> int:
    """``for i: acc += arr[i]->field`` (paper Fig. 5-a).

    A strided pointer array whose targets are shuffled objects; the
    dependent load's address is the pointer value plus a constant offset.
    ``fields`` > 1 reads several fields per object.
    """
    rng = random.Random(seed)
    objects = [alloc.alloc(object_bytes) for _ in range(count)]
    rng.shuffle(objects)
    array_base = alloc.alloc(count * 8)
    asm.data(array_base, objects)
    for address in objects:
        for f in range(fields):
            asm.data(address + field_offset + 8 * f, address & 0xFFFF)
    asm.movi("r1", array_base)
    asm.movi("r2", array_base + count * 8)
    loop = asm.label()
    asm.load("r4", "r1", 0)                 # pointer (strided)
    for f in range(fields):
        asm.load("r14", "r4", field_offset + 8 * f)  # dependent
        asm.add("r15", "r15", "r14")
    _emit_work(asm, work)
    asm.addi("r1", "r1", 8)
    asm.blt("r1", "r2", loop)
    return array_base


def linked_list(asm: Assembler, alloc: Allocator, *, nodes: int,
                node_bytes: int = 64, layout: str = "scattered",
                payload_loads: int = 1, work: int = 0,
                seed: int = 7) -> int:
    """``while n: acc += n->payload; n = n->next`` (paper Fig. 5-b).

    ``layout``: "sequential" (allocation order), "scattered" (shuffled),
    or "clustered" (runs of 8 nodes shuffled as groups — malloc-arena
    behavior).
    """
    rng = random.Random(seed)
    addresses = [alloc.alloc(node_bytes) for _ in range(nodes)]
    if layout == "scattered":
        rng.shuffle(addresses)
    elif layout == "clustered":
        groups = [addresses[i:i + 8] for i in range(0, nodes, 8)]
        rng.shuffle(groups)
        addresses = [a for group in groups for a in group]
    elif layout != "sequential":
        raise ValueError(f"unknown layout {layout!r}")
    for i in range(nodes - 1):
        asm.data(addresses[i], addresses[i + 1])      # next at +0
        asm.data(addresses[i] + 8, i)                 # payload at +8
    asm.data(addresses[-1], 0)
    asm.data(addresses[-1] + 8, nodes)

    asm.movi("r1", addresses[0])
    loop = asm.label()
    for p in range(payload_loads):
        asm.load("r14", "r1", 8 + 8 * p)
        asm.add("r15", "r15", "r14")
    _emit_work(asm, work)
    asm.load("r1", "r1", 0)                 # n = n->next
    asm.bne("r1", "r0", loop)
    return addresses[0]


# ---------------------------------------------------------------------------
# Region / irregular patterns
# ---------------------------------------------------------------------------
def region_sweep(asm: Assembler, alloc: Allocator, *, regions: int,
                 region_bytes: int = 1024, step: int = 64,
                 work: int = 0, seed: int = 13) -> int:
    """Pointer-selected regions swept densely (the MHF pattern).

    An outer loop follows a shuffled array of region base pointers; an
    inner loop touches every ``step`` bytes of the region.
    """
    rng = random.Random(seed)
    bases = [
        alloc.alloc(region_bytes, align=region_bytes)
        for _ in range(regions)
    ]
    rng.shuffle(bases)
    index_base = alloc.alloc(regions * 8)
    asm.data(index_base, bases)
    asm.movi("r1", index_base)
    asm.movi("r2", index_base + regions * 8)
    outer = asm.label()
    asm.load("r4", "r1", 0)
    asm.addi("r5", "r4", region_bytes)
    inner = asm.label()
    asm.load("r14", "r4", 0)
    asm.add("r15", "r15", "r14")
    _emit_work(asm, work)
    asm.addi("r4", "r4", step)
    asm.blt("r4", "r5", inner)
    asm.addi("r1", "r1", 8)
    asm.blt("r1", "r2", outer)
    return index_base


def random_gather(asm: Assembler, alloc: Allocator, *, lookups: int,
                  table_bytes: int, work: int = 0, seed: int = 17) -> int:
    """Irregular table lookups with no reuse structure (the HHF floor).

    The address sequence is precomputed (a shuffled index array read with
    a strided load) so the *gather* load is data-dependent and
    unpredictable, like hash probing.
    """
    rng = random.Random(seed)
    table_base = alloc.alloc(table_bytes)
    slots = table_bytes // 64
    index_base = alloc.alloc(lookups * 8)
    targets = [
        table_base + rng.randrange(slots) * 64 for _ in range(lookups)
    ]
    asm.data(index_base, targets)
    asm.movi("r1", index_base)
    asm.movi("r2", index_base + lookups * 8)
    loop = asm.label()
    asm.load("r4", "r1", 0)                 # next target address
    asm.load("r14", "r4", 0)                # the gather
    asm.add("r15", "r15", "r14")
    _emit_work(asm, work)
    asm.addi("r1", "r1", 8)
    asm.blt("r1", "r2", loop)
    return table_base


def index_gather(asm: Assembler, alloc: Allocator, *, elements: int,
                 table_elements: int, locality_window: int = 0,
                 work: int = 0, seed: int = 19) -> int:
    """``acc += table[idx[i]]`` — sparse-matrix-style indirection.

    ``locality_window`` > 0 draws indices from a sliding window,
    producing the partial spatial locality of real sparse matrices.
    """
    rng = random.Random(seed)
    table_base = alloc.alloc(table_elements * 8)
    index_base = alloc.alloc(elements * 8)
    indices = []
    for i in range(elements):
        if locality_window > 0:
            center = (i * table_elements) // elements
            low = max(0, center - locality_window)
            high = min(table_elements - 1, center + locality_window)
            indices.append(rng.randint(low, high))
        else:
            indices.append(rng.randrange(table_elements))
    asm.data(index_base, [table_base + 8 * i for i in indices])
    asm.movi("r1", index_base)
    asm.movi("r2", index_base + elements * 8)
    loop = asm.label()
    asm.load("r4", "r1", 0)
    asm.load("r14", "r4", 0)
    asm.add("r15", "r15", "r14")
    _emit_work(asm, work)
    asm.addi("r1", "r1", 8)
    asm.blt("r1", "r2", loop)
    return table_base


def call_site_streams(asm: Assembler, alloc: Allocator, *, elements: int,
                      strides: tuple[int, int] = (8, 24),
                      work: int = 0) -> tuple[int, int]:
    """Two strided streams accessed through the *same* load inside a
    shared accessor function (paper Sec. IV-A-2, second modification).

    This is the object-oriented pattern that defeats plain-PC stride
    tables: the accessor's load PC sees interleaved addresses from two
    streams with different strides, but ``mPC = PC xor RAS.top``
    separates the call sites.  Returns the two stream bases.
    """
    base_a = alloc.alloc(elements * strides[0])
    base_b = alloc.alloc(elements * strides[1])
    # Auto-named labels: a program may compose this kernel repeatedly
    # (the fuzzer does), so fixed names would collide.
    accessor = asm.future_label()
    start = asm.future_label()
    asm.jmp(start)

    # accessor: r14 <- M[r10]; r15 += r14; work; ret
    asm.place(accessor)
    asm.load("r14", "r10", 0)
    asm.add("r15", "r15", "r14")
    _emit_work(asm, work)
    asm.ret()

    asm.place(start)
    asm.movi("r20", base_a)
    asm.movi("r21", base_b)
    asm.movi("r1", 0)
    asm.movi("r2", elements)
    loop = asm.label()
    asm.mov("r10", "r20")      # call site A
    asm.call(accessor)
    asm.mov("r10", "r21")      # call site B
    asm.call(accessor)
    asm.addi("r20", "r20", strides[0])
    asm.addi("r21", "r21", strides[1])
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", loop)
    return base_a, base_b


def csr_traversal(asm: Assembler, alloc: Allocator, *, offsets: list[int],
                  neighbors: list[int], values_elements: int | None = None,
                  work: int = 0) -> None:
    """Walk a CSR graph: offsets (strided) -> neighbor lists (bursty
    strided) -> per-neighbor value gather (irregular).

    ``offsets``/``neighbors`` come from :mod:`repro.workloads.graphs`.
    """
    n = len(offsets) - 1
    if values_elements is None:
        values_elements = n
    offsets_base = alloc.alloc(len(offsets) * 8)
    neighbors_base = alloc.alloc(max(1, len(neighbors)) * 8)
    values_base = alloc.alloc(values_elements * 8)
    asm.data(offsets_base, [neighbors_base + 8 * o for o in offsets])
    if neighbors:
        asm.data(neighbors_base, [values_base + 8 * v for v in neighbors])

    asm.movi("r1", offsets_base)            # &offsets[u]
    asm.movi("r2", offsets_base + n * 8)
    outer = asm.label()
    asm.load("r4", "r1", 0)                 # start = offsets[u]
    asm.load("r5", "r1", 8)                 # end = offsets[u+1]
    inner_done = asm.future_label()
    asm.bge("r4", "r5", inner_done)
    inner = asm.label()
    asm.load("r6", "r4", 0)                 # neighbor value address
    asm.load("r14", "r6", 0)                # gather neighbor value
    asm.add("r15", "r15", "r14")
    _emit_work(asm, work)
    asm.addi("r4", "r4", 8)
    asm.blt("r4", "r5", inner)
    asm.place(inner_done)
    asm.addi("r1", "r1", 8)
    asm.blt("r1", "r2", outer)
