"""Workload registry with read-through compiled-trace caching.

A :class:`Workload` pairs a name with a deferred program builder; its
functional trace (the "simpoint") is compiled to columnar form
(:class:`~repro.isa.trace.CompiledTrace`) exactly once, since every
prefetcher comparison replays the same trace.  Three cache layers stack:

1. the per-process memo on the :class:`Workload` instance,
2. the on-disk trace cache (:mod:`repro.workloads.tracecache`), keyed by
   builder-code version — one build per workload per machine, ever,
3. a fresh :class:`~repro.isa.machine.Machine` run when both miss.

Forked parallel workers inherit layer 1 copy-on-write and read layer 2
for anything loaded after the fork, so workers never rebuild traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.machine import Machine
from repro.isa.program import Program
from repro.isa.trace import CompiledTrace, Trace, compile_trace

DEFAULT_SIMPOINT = 160_000
"""Default dynamic-instruction budget per workload (the paper uses 10M
per simpoint; scaled down ~60x for Python, see DESIGN.md)."""


@dataclass
class Workload:
    """A named, lazily-built benchmark program."""

    name: str
    suite: str
    build: Callable[[], Program]
    simpoint: int = DEFAULT_SIMPOINT
    description: str = ""
    _trace: CompiledTrace | None = field(default=None, repr=False)

    def program(self) -> Program:
        return self.build()

    def object_trace(self) -> Trace:
        """The reference object trace, rebuilt from the program.

        This path never touches the trace cache: it is the ground truth
        the compiled/cached representation is verified against
        (``tests/test_tracecache.py``) and is not memoized.
        """
        from repro.workloads import tracecache

        tracecache.count("builds")
        machine = Machine(max_instructions=self.simpoint, truncate=True)
        trace = machine.run(self.program())
        trace.name = self.name
        return trace

    def trace(self) -> CompiledTrace:
        """Compiled functional trace (memo -> disk cache -> build)."""
        from repro.workloads import tracecache

        if self._trace is not None:
            tracecache.count("memory_hits")
            return self._trace
        cache = tracecache.TraceCache()
        cached = cache.get(self.name, self.simpoint)
        if cached is not None:
            tracecache.count("disk_hits")
            self._trace = cached
            return cached
        compiled = compile_trace(self.object_trace())
        cache.put(compiled, self.simpoint)
        self._trace = compiled
        return compiled


_REGISTRY: dict[str, Workload] = {}
_SUITES_LOADED = False


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"workload {workload.name!r} already registered")
    _REGISTRY[workload.name] = workload
    return workload


def get_or_register(workload: Workload) -> Workload:
    """Register ``workload`` unless its name is already taken.

    Returns the *registered* instance either way — the form dynamic
    suites (the fuzzer's per-seed workloads) need: building the same
    seed twice must yield one shared registry entry (and its trace
    memo), not a duplicate-name error.
    """
    existing = _REGISTRY.get(workload.name)
    if existing is not None:
        return existing
    return register(workload)


def has_trace_memo(name: str) -> bool:
    """Whether ``name`` is registered with a compiled-trace memo.

    The shared-memory installer (:func:`repro.parallel.shm.install`)
    probes this before attaching: a fork-inherited memo already carries
    the parent's trace *and* its memoized replay plans, so adopting a
    fresh view over it would only discard work.
    """
    workload = _REGISTRY.get(name)
    return workload is not None and workload._trace is not None


def _stub_builder(name: str) -> Callable[[], Program]:
    def build() -> Program:
        raise RuntimeError(
            f"workload {name!r} was adopted from a shared-memory "
            f"segment; its program builder is not available in this "
            f"process"
        )
    return build


def adopt_compiled_trace(name: str, trace: CompiledTrace) -> bool:
    """Install an externally-materialized compiled trace as ``name``'s memo.

    Pool workers call this (via :mod:`repro.parallel.shm`) to adopt
    zero-copy trace views.  A workload that already holds a memo keeps
    it (returns ``False``); a name the registry has never heard of —
    a dynamic fuzz workload inside a ``spawn`` worker that never ran
    the seed's builder — is registered as a stub whose builder refuses
    to run, which is fine: the memo is the only thing ``trace()`` will
    ever need here.
    """
    _load_suites()
    workload = _REGISTRY.get(name)
    if workload is None:
        workload = register(Workload(
            name=name, suite="shared", build=_stub_builder(name),
            description="trace adopted from a shared-memory segment",
        ))
    if workload._trace is not None:
        return False
    workload._trace = trace
    return True


def _load_suites() -> None:
    global _SUITES_LOADED
    if _SUITES_LOADED:
        return
    _SUITES_LOADED = True
    # Importing a suite module registers its workloads.
    from repro.workloads import (  # noqa: F401
        spec, crono, starbench, npb, stress,
    )


def get_workload(name: str) -> Workload:
    """Look up one workload by ``suite.name`` (e.g. ``"spec.mcf"``)."""
    _load_suites()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def get_suite(suite: str) -> list[Workload]:
    """All workloads of one suite ("spec", "crono", "starbench", "npb")."""
    _load_suites()
    selected = [w for w in _REGISTRY.values() if w.suite == suite]
    if not selected:
        raise ValueError(f"unknown suite {suite!r}")
    return selected


def all_suites() -> dict[str, list[Workload]]:
    _load_suites()
    suites: dict[str, list[Workload]] = {}
    for workload in _REGISTRY.values():
        suites.setdefault(workload.suite, []).append(workload)
    return suites


def workload_names(suite: str | None = None) -> list[str]:
    _load_suites()
    if suite is None:
        return sorted(_REGISTRY)
    return sorted(w.name for w in _REGISTRY.values() if w.suite == suite)
