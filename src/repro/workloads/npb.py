"""NPB-like scientific suite (paper: NPB with class C inputs).

The NAS Parallel Benchmarks stress distinct kernels: CG (sparse matvec
indirection), MG (stencil hierarchy), FT (large-stride butterflies), IS
(random bucket counting), EP (embarrassingly parallel compute).
"""

from __future__ import annotations

from repro.isa.program import Assembler, Program
from repro.workloads import builders
from repro.workloads.builders import Allocator
from repro.workloads.registry import Workload, register


def _program(name: str, emit) -> Program:
    asm = Assembler(name=f"npb.{name}")
    alloc = Allocator()
    emit(asm, alloc)
    asm.halt()
    return asm.assemble()


def _npb(name: str, description: str, emit) -> None:
    register(
        Workload(
            name=f"npb.{name}",
            suite="npb",
            build=lambda: _program(name, emit),
            description=description,
        )
    )


_npb("cg", "sparse matrix-vector gathers with row locality",
     lambda asm, alloc:
     builders.index_gather(asm, alloc, elements=13000,
                           table_elements=60000, locality_window=48,
                           work=1, seed=61))

_npb("mg", "multigrid stencil sweep", lambda asm, alloc:
     builders.stencil_rows(asm, alloc, rows=85, cols=110, work=1))


def _ft(asm: Assembler, alloc: Allocator) -> None:
    builders.strided_loop(asm, alloc, elements=5500, stride=1024, work=2)
    builders.strided_loop(asm, alloc, elements=5500, stride=8, work=2)


_npb("ft", "butterfly: unit-stride pass + large-stride pass", _ft)

_npb("is", "integer sort: random bucket increments", lambda asm, alloc:
     builders.random_gather(asm, alloc, lookups=11000,
                            table_bytes=512 * 1024, work=1, seed=62))

_npb("ep", "compute-bound with a small residency", lambda asm, alloc:
     builders.strided_loop(asm, alloc, elements=1800, stride=8, work=30,
                           passes=2))
