"""``repro.obs`` — execution-fabric observability.

Where :mod:`repro.telemetry` watches the *simulated machine* (prefetch
lifecycles, IPC/MPKI windows), this package watches the machinery that
runs the simulations: span-based tracing of every sweep (cell attempts,
fused units, trace warms, cache gets/puts, journal resumes,
retry/backoff waits, pool rebuilds), a process-wide metrics registry
(cache hit rates, retry and chaos-recovery counts, per-worker busy/idle
seconds, queue wait, instr/sec per kernel variant), and a
pool-utilization/straggler report.  Snapshots land in
``runs/<id>/spans.jsonl`` + ``metrics.json``; ``repro trace`` exports
the sweep as a Chrome ``trace_event`` timeline with one lane per worker
(open in ui.perfetto.dev), and ``repro metrics`` prints the registry.

The design contract mirrors PR 1's telemetry hub: every integration
point takes ``obs=None`` by default and guards with ``is not None``, so
a run without observability executes the exact prior code path and an
obs-enabled run is bit-identical in every figure (enforced by
``tests/test_obs.py``).

Deep layers that never see the obs object — the result cache, the trace
cache, the fault log, the kernel registry — report metrics through the
process-current obs (:func:`current`): constructing a
:class:`FabricObs` makes it current, :meth:`FabricObs.finish` steps it
down.  ``current() is None`` is the cheap steady-state check.

See ``docs/observability.md`` ("Fabric observability") for the schema
and a Perfetto walkthrough.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, read_metrics, write_metrics
from repro.obs.spans import (
    SPAN_KINDS,
    FabricObs,
    Span,
    cell_span_id,
    read_spans,
)

OBS_ENV = "REPRO_OBS"

_CURRENT: "FabricObs | None" = None


def current() -> "FabricObs | None":
    """The process-current obs, or ``None`` (the zero-overhead default)."""
    return _CURRENT


def activate(obs: FabricObs) -> FabricObs:
    """Make ``obs`` the process-current obs (last activation wins)."""
    global _CURRENT
    _CURRENT = obs
    return obs


def deactivate(obs: "FabricObs | None" = None) -> None:
    """Clear the current obs (no-op if ``obs`` is no longer current)."""
    global _CURRENT
    if obs is None or _CURRENT is obs:
        _CURRENT = None


def obs_enabled(jobs: int = 1) -> bool:
    """Should the CLI attach fabric observability to this invocation?

    ``REPRO_OBS=0`` forces off, any other non-empty value forces on;
    unset, sweeps that fan out (``--jobs`` != 1) are observed and plain
    serial runs are not.
    """
    raw = os.environ.get(OBS_ENV, "")
    if raw == "0":
        return False
    if raw:
        return True
    return jobs != 1


def resolve_run(run: str, filename: str = "spans.jsonl",
                runs_dir: str = "runs") -> Path:
    """Resolve a ``repro trace``/``repro metrics`` argument to a file.

    Accepts a run directory, a run id under ``runs/``, a direct file
    path, or ``latest`` (the most recently written run that has
    ``filename``).  Raises ``SystemExit`` with a readable message when
    nothing matches.
    """
    if run == "latest":
        candidates = sorted(Path(runs_dir).glob(f"*/{filename}"),
                            key=lambda p: p.stat().st_mtime)
        if not candidates:
            raise SystemExit(
                f"no {filename} under {runs_dir}/ — run a sweep with "
                f"--jobs N first (e.g. repro compare spec.mcf --jobs 4)")
        return candidates[-1]
    path = Path(run)
    if path.is_dir():
        path = path / filename
    elif path.is_file() and path.name != filename:
        # e.g. `repro trace runs/x/spans.jsonl` asked for metrics.json:
        # resolve relative to the same run directory.
        path = path.parent / filename
    if not path.is_file():
        candidate = Path(runs_dir) / run / filename
        if candidate.is_file():
            return candidate
        raise SystemExit(f"no {filename} at {path} (or {candidate})")
    return path


__all__ = [
    "FabricObs",
    "Span",
    "SPAN_KINDS",
    "MetricsRegistry",
    "cell_span_id",
    "read_spans",
    "read_metrics",
    "write_metrics",
    "current",
    "activate",
    "deactivate",
    "obs_enabled",
    "resolve_run",
    "OBS_ENV",
]
