"""Pool-utilization and straggler attribution from fabric spans.

Turns a sweep's span stream into the report that makes a
``parallel.speedup_vs_serial: 0.82`` diagnosable: per-worker busy/idle
seconds and idle fraction, fused-unit imbalance (the max/mean unit
duration ratio — a high value means one unit strangled the sweep while
its lane-mates idled), per-worker executed steals (units a lane took
from another workload's queue — the work-stealing scheduler's
rebalancing, see :mod:`repro.parallel.stealing`), and the critical-path
cell (the single longest cell attempt, with its kernel variant).
Consumed by ``repro trace``, ``repro bench``'s parallel section, and
tests.
"""

from __future__ import annotations


def pool_report(records: list) -> dict:
    """Utilization/straggler summary over span records (dicts, as read
    from ``spans.jsonl`` or produced by ``FabricObs.records()``)."""
    sweep = next((r for r in records if r.get("kind") == "sweep"), None)
    units = [r for r in records if r.get("kind") == "unit"]
    cells = [r for r in records if r.get("kind") == "cell"]

    if sweep is not None:
        wall = sweep.get("seconds", 0.0)
    elif records:
        starts = [r.get("start", 0.0) for r in records]
        ends = [r.get("start", 0.0) + r.get("seconds", 0.0) for r in records]
        wall = max(ends) - min(starts)
    else:
        wall = 0.0

    workers: dict[str, dict] = {}
    serial_units = []
    for unit in units:
        lane = unit.get("worker", 0)
        if lane <= 0:
            serial_units.append(unit)
            continue
        entry = workers.setdefault(str(lane), {"busy_seconds": 0.0,
                                               "units": 0, "cells": 0,
                                               "steals": 0})
        entry["busy_seconds"] += unit.get("seconds", 0.0)
        entry["units"] += 1
        entry["cells"] += unit.get("cells", 1)
        if unit.get("stolen"):
            entry["steals"] += 1
    mode = "pool" if workers else "serial"
    if not workers:
        # Serial fallback (auto_serial or --jobs 1): attribute the whole
        # sweep to one pseudo-lane so the busy/idle split still shows up
        # instead of an empty ``workers`` table.  The serial path emits
        # no unit spans, so fall back to its worker-0 cell spans.
        source = serial_units or [c for c in cells
                                  if c.get("worker", 0) <= 0]
        if source:
            entry = workers["serial"] = {"busy_seconds": 0.0,
                                         "units": 0, "cells": 0,
                                         "steals": 0}
            for unit in source:
                entry["busy_seconds"] += unit.get("seconds", 0.0)
                entry["units"] += 1 if unit.get("kind") == "unit" else 0
                entry["cells"] += unit.get("cells", 1)
    for entry in workers.values():
        busy = entry["busy_seconds"]
        entry["busy_seconds"] = round(busy, 6)
        entry["idle_seconds"] = round(max(wall - busy, 0.0), 6)
        entry["idle_fraction"] = round(1.0 - busy / wall, 4) if wall else 0.0

    durations = sorted(u.get("seconds", 0.0) for u in units)
    mean = sum(durations) / len(durations) if durations else 0.0
    imbalance = round(durations[-1] / mean, 3) if mean else 0.0

    critical = max(cells, key=lambda c: c.get("seconds", 0.0), default=None)
    critical_cell = None
    if critical is not None:
        critical_cell = {
            "span": critical.get("span"),
            "workload": critical.get("workload"),
            "spec": critical.get("component"),
            "seconds": critical.get("seconds", 0.0),
            "kernel": critical.get("kernel"),
            "worker": critical.get("worker", 0),
        }

    straggler = None
    if mode == "pool":
        # A straggler only means something across competing lanes; the
        # serial pseudo-lane is never one.
        straggler = max(workers, key=lambda k: workers[k]["busy_seconds"])

    return {
        "wall_seconds": round(wall, 6),
        "mode": mode,
        "cells": len(cells),
        "units": len(units),
        "steals": sum(entry["steals"] for entry in workers.values()),
        "workers": dict(sorted(
            workers.items(),
            key=lambda kv: int(kv[0]) if kv[0].isdigit() else -1)),
        "unit_imbalance": imbalance,
        "critical_cell": critical_cell,
        "straggler_worker": straggler,
    }


def format_pool_report(report: dict) -> str:
    """Render :func:`pool_report` as the CLI's aligned text table."""
    from repro.analysis.report import format_table

    rows = [
        ("mode", report["mode"]),
        ("wall seconds", report["wall_seconds"]),
        ("cells", report["cells"]),
        ("fused units", report["units"]),
        ("unit imbalance (max/mean)", report["unit_imbalance"]),
        ("steals (rebalanced units)", report.get("steals", 0)),
    ]
    for lane, entry in report["workers"].items():
        rows.append((
            "serial lane" if lane == "serial" else f"worker {lane}",
            f"busy {entry['busy_seconds']:.3f}s  "
            f"idle {entry['idle_seconds']:.3f}s  "
            f"({entry['idle_fraction'] * 100:.1f}% idle, "
            f"{entry['units']} units / {entry['cells']} cells, "
            f"{entry.get('steals', 0)} steals)",
        ))
    if report["straggler_worker"] is not None:
        rows.append(("straggler (busiest lane)",
                     f"worker {report['straggler_worker']}"))
    cell = report["critical_cell"]
    if cell is not None:
        rows.append(("critical-path cell",
                     f"{cell['workload']}/{cell['spec']} "
                     f"{cell['seconds']:.3f}s on worker {cell['worker']} "
                     f"({cell['kernel'] or 'unknown kernel'})"))
    return format_table(["metric", "value"], rows)
