"""Process-wide metrics registry for the execution fabric.

Three instrument shapes, all plain data so a snapshot is just a dict:

* **Counters** — monotonically increasing event counts (cache hits,
  retries, chaos recoveries).  ``count(name)``.
* **Gauges** — last-written values (per-worker busy seconds, instr/sec
  per kernel variant).  ``gauge(name, value)``.
* **Histograms** — distributions summarized at snapshot time
  (queue-wait seconds, per-unit durations).  ``observe(name, value)``.

Names are dotted strings (``result_cache.disk_hit``,
``pool.worker.2.busy_seconds``); the registry imposes no schema.  A
snapshot serializes to ``metrics.json`` next to ``spans.jsonl`` (see
:class:`repro.obs.FabricObs`) and round-trips exactly through
:func:`write_metrics` / :func:`read_metrics` — the journal-resume test
pins that.
"""

from __future__ import annotations

import json
from collections import Counter


def _quantile(ordered: list, q: float) -> float:
    """Nearest-rank quantile of an already-sorted list."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


class MetricsRegistry:
    """Counters, gauges, and histograms for one sweep (or one process)."""

    def __init__(self) -> None:
        self.counters: Counter = Counter()
        self.gauges: dict = {}
        self._observations: dict[str, list] = {}

    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def gauge(self, name: str, value) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        self._observations.setdefault(name, []).append(float(value))

    # ------------------------------------------------------------------
    def histogram(self, name: str) -> dict:
        """Summary of one observation series (zeros when never observed)."""
        ordered = sorted(self._observations.get(name, ()))
        count = len(ordered)
        total = sum(ordered)
        return {
            "count": count,
            "total": round(total, 6),
            "min": round(ordered[0], 6) if ordered else 0.0,
            "max": round(ordered[-1], 6) if ordered else 0.0,
            "mean": round(total / count, 6) if count else 0.0,
            "p50": round(_quantile(ordered, 0.50), 6),
            "p95": round(_quantile(ordered, 0.95), 6),
        }

    def snapshot(self) -> dict:
        """Plain-dict state: sorted, JSON-serializable, reproducible."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: self.histogram(name)
                for name in sorted(self._observations)
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsRegistry({len(self.counters)} counters, "
                f"{len(self.gauges)} gauges, "
                f"{len(self._observations)} histograms)")


def write_metrics(snapshot: dict, path) -> None:
    """Serialize a :meth:`MetricsRegistry.snapshot` as pretty JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_metrics(path) -> dict:
    """Load a ``metrics.json`` back; exact inverse of :func:`write_metrics`."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
