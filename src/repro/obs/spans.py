"""Sweep-level span tracing for the execution fabric.

PR 1 instrumented the *simulated machine* (prefetch lifecycle events);
this module instruments the machinery that runs the simulations.  One
:class:`FabricObs` object observes one sweep: every cell attempt, fused
unit, trace warm, cache get/put, journal resume, retry/backoff wait, and
pool rebuild becomes a :class:`Span` with a wall-clock start, a
duration, and a worker lane.  Worker-side spans travel back in the slim
result payloads of :mod:`repro.parallel` and are merged parent-side in
deterministic order, so a ``--jobs 4`` sweep and a ``--jobs 1`` sweep
emit the same cell-span sequence (pinned by ``tests/test_obs.py``).

The contract mirrors PR 1's telemetry hub: ``obs=None`` (the default
everywhere) executes the exact pre-existing code path — emitters guard
with ``obs is not None`` — and an obs-enabled run produces bit-identical
figures, only wall clock may change.

Span JSONL records are a superset of the fault-log schema
(``kind``/``cycle``/``line``/``component``/``level``/``pc``/``dur``), so
``python -m repro events runs/<id>/spans.jsonl`` filters and summarizes
them unchanged, and fault records tagged with :func:`cell_span_id`
correlate with ``repro trace`` output.

Snapshots land in ``runs/<sweep_id>/spans.jsonl`` + ``metrics.json``
next to the per-simulation manifests; the sweep id is a content hash of
the cells the sweep touched, so re-running the same sweep lands in the
same directory (the manifest run-id scheme, one level up).
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, write_metrics

#: Deterministic snapshot order: spans sort by (kind rank, id, attempt).
SPAN_KINDS = (
    "sweep",
    "trace_warm",
    "cache_get",
    "cache_put",
    "journal_resume",
    "unit",
    "cell",
    "merge",
    "steal",
    "retry_wait",
    "pool_rebuild",
)

_KIND_RANK = {kind: rank for rank, kind in enumerate(SPAN_KINDS)}


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "sweep"


def cell_span_id(workload: str, spec: str, tag: str, attempt: int) -> str:
    """Deterministic span id of one cell attempt.

    Pure function of the cell identity — no obs object needed — so the
    fault log can tag its records with the id even when tracing is off,
    and ``repro events`` output correlates with ``repro trace`` output.
    """
    suffix = f"#{tag}" if tag else ""
    return f"cell:{workload}/{spec}{suffix}@{attempt}"


@dataclass
class Span:
    """One timed operation of the sweep fabric."""

    name: str                 # SPAN_KINDS member (or a future addition)
    sid: str                  # deterministic id, e.g. cell:spec.mcf/tpc@0
    t0: float                 # wall-clock start (epoch seconds)
    dur: float                # duration in seconds
    worker: int = 0           # lane: 0 = parent, 1..N = pool workers
    workload: str = ""
    spec: str = ""
    tag: str = ""
    attempt: int = 0
    parent: "str | None" = None
    attrs: dict = field(default_factory=dict)

    def record(self) -> dict:
        """JSONL form, schema-compatible with the fault log (and thus
        with ``repro events``): extra keys ride along and readers ignore
        what they do not know."""
        record = {
            "kind": self.name,
            "cycle": int(self.t0 * 1000),
            "line": -1,
            "component": self.spec or None,
            "level": self.attempt,
            "pc": -1,
            "dur": int(self.dur * 1000),
            "workload": self.workload,
            "tag": self.tag,
            "span": self.sid,
            "parent": self.parent,
            "worker": self.worker,
            "start": round(self.t0, 6),
            "seconds": round(self.dur, 6),
        }
        record.update(self.attrs)
        return record


class FabricObs:
    """Span recorder + metrics registry for one sweep.

    Creating an instance makes it the process's *current* obs (see
    :func:`repro.obs.current`), which is how deep layers that never see
    the object — result cache, trace cache, fault log, kernel registry —
    contribute metrics without threading a parameter through every call.
    :meth:`finish` steps down again.
    """

    def __init__(self, label: str = "sweep", *, activate: bool = True) -> None:
        self.label = label
        self.metrics = MetricsRegistry()
        self.spans: list[Span] = []
        self._t0 = time.time()
        self._p0 = time.perf_counter()
        self._lanes: dict[int, int] = {}
        self._seq: dict[str, int] = {}
        self._finished = False
        if activate:
            from repro import obs as _obs

            _obs.activate(self)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, name: str, *, t0: float, dur: float,
               sid: "str | None" = None, worker: int = 0,
               workload: str = "", spec: str = "", tag: str = "",
               attempt: int = 0, parent: "str | None" = None,
               **attrs) -> Span:
        """Append one externally-measured span (worker payloads land
        here); returns it."""
        if sid is None:
            if workload:
                suffix = f"#{tag}" if tag else ""
                sid = f"{name}:{workload}/{spec}{suffix}"
            else:
                seq = self._seq.get(name, 0)
                self._seq[name] = seq + 1
                sid = f"{name}:{seq}"
        span = Span(name=name, sid=sid, t0=t0, dur=dur, worker=worker,
                    workload=workload, spec=spec, tag=tag, attempt=attempt,
                    parent=parent, attrs=attrs)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, *, sid: "str | None" = None, worker: int = 0,
             workload: str = "", spec: str = "", tag: str = "",
             attempt: int = 0, **attrs):
        """Context manager measuring one operation; yields a dict the
        body can drop extra attributes into (e.g. ``hit=True``)."""
        t0 = time.time()
        p0 = time.perf_counter()
        extra: dict = {}
        try:
            yield extra
        finally:
            attrs.update(extra)
            self.record(name, t0=t0, dur=time.perf_counter() - p0, sid=sid,
                        worker=worker, workload=workload, spec=spec, tag=tag,
                        attempt=attempt, **attrs)

    def lane_for(self, pid: int) -> int:
        """Stable 1-based lane for a pool-worker pid (first seen wins)."""
        lane = self._lanes.get(pid)
        if lane is None:
            lane = self._lanes[pid] = len(self._lanes) + 1
        return lane

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def finish(self) -> "FabricObs":
        """Close the sweep span and fold derived metrics into the
        registry (idempotent).  Steps down as the current obs."""
        if self._finished:
            return self
        self._finished = True
        wall = time.perf_counter() - self._p0
        cells = [s for s in self.spans if s.name == "cell"]
        self.record("sweep", t0=self._t0, dur=wall,
                    sid=f"sweep:{_slug(self.label)}", cells=len(cells))

        # instr/sec attribution per replay-kernel variant.
        by_kernel: dict[str, list] = {}
        for span in cells:
            kernel = span.attrs.get("kernel")
            instructions = span.attrs.get("instructions")
            if kernel and instructions:
                totals = by_kernel.setdefault(kernel, [0, 0.0])
                totals[0] += instructions
                totals[1] += span.dur
        for kernel, (instructions, seconds) in sorted(by_kernel.items()):
            self.metrics.gauge(f"kernel.{kernel}.cells",
                               sum(1 for s in cells
                                   if s.attrs.get("kernel") == kernel))
            if seconds > 0:
                self.metrics.gauge(f"kernel.{kernel}.instr_per_sec",
                                   round(instructions / seconds))

        # Replay-kernel process counters (tier selections, plan
        # builds vs memoized reuses) — ``kernel.plan_cache_hits`` in
        # ``repro metrics`` is how a sweep shows its plans were reused
        # rather than rebuilt per cell.
        from repro.engine.kernel import kernel_counters

        for name, value in sorted(kernel_counters().items()):
            self.metrics.gauge(f"kernel.{name}", value)

        # Per-worker busy/idle seconds (and executed steals) from the
        # unit spans — a stolen unit carries ``stolen=True`` so the
        # rebalancing is attributed to the lane that ran it.
        busy: dict[int, float] = {}
        stolen: dict[int, int] = {}
        for span in self.spans:
            if span.name == "unit" and span.worker > 0:
                busy[span.worker] = busy.get(span.worker, 0.0) + span.dur
                if span.attrs.get("stolen"):
                    stolen[span.worker] = stolen.get(span.worker, 0) + 1
        if busy:
            self.metrics.gauge("pool.workers", len(busy))
            for lane, seconds in sorted(busy.items()):
                self.metrics.gauge(f"pool.worker.{lane}.busy_seconds",
                                   round(seconds, 6))
                self.metrics.gauge(f"pool.worker.{lane}.idle_seconds",
                                   round(max(wall - seconds, 0.0), 6))
                if stolen.get(lane):
                    self.metrics.gauge(f"pool.worker.{lane}.steals",
                                       stolen[lane])

        from repro import obs as _obs

        _obs.deactivate(self)
        return self

    def records(self) -> list[dict]:
        """All span records in deterministic merge order.

        Spans are sorted by (kind rank, span id, attempt) — never by
        completion time — so a parallel sweep and a serial sweep of the
        same matrix snapshot the same sequence of cell spans.
        """
        ordered = sorted(
            self.spans,
            key=lambda s: (_KIND_RANK.get(s.name, len(SPAN_KINDS)),
                           s.sid, s.attempt, s.t0, s.dur),
        )
        return [span.record() for span in ordered]

    @property
    def sweep_id(self) -> str:
        """Deterministic directory name: label slug + content digest.

        The digest covers the identity-bearing spans (cells, cache gets,
        trace warms), so re-running an identical sweep lands in the same
        ``runs/<id>/`` directory — the manifest run-id idea, one level
        up.
        """
        identity = sorted(
            {span.sid for span in self.spans if span.name == "cell"}
        ) or sorted(
            {span.sid for span in self.spans
             if span.name in ("cache_get", "trace_warm")}
        ) or sorted({span.sid for span in self.spans})
        digest = hashlib.sha1("\x00".join(identity).encode()).hexdigest()
        return f"{_slug(self.label)}__{digest[:10]}"

    def write(self, runs_dir="runs") -> Path:
        """Snapshot to ``<runs_dir>/<sweep_id>/spans.jsonl`` +
        ``metrics.json``; returns the run directory."""
        self.finish()
        out = Path(runs_dir) / self.sweep_id
        out.mkdir(parents=True, exist_ok=True)
        with open(out / "spans.jsonl", "w", encoding="utf-8") as fh:
            for record in self.records():
                fh.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        write_metrics(self.metrics.snapshot(), out / "metrics.json")
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FabricObs({self.label!r}, {len(self.spans)} spans)"


def read_spans(path) -> list[dict]:
    """Load a ``spans.jsonl`` file back as a list of records (torn final
    lines are skipped, mirroring the journal loader)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
    return records
