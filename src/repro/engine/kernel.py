"""Specializing replay kernels: partial evaluation of the step loop.

The generic replay paths in :mod:`repro.engine.ooo` carry a branch for
every optional feature — instruction-stream feed, per-access observers,
prefetch-request hooks, fill notifications, the telemetry sampler, the
choice of branch predictor — and re-derive per-record facts (line index,
``mPC``, dispatch class, the static predictor's outcome) on every
retired instruction of every matrix cell.

This module partial-evaluates that loop.  A core's configuration is
summarized as a small tuple of feature flags (:func:`kernel_flags`);
for each distinct tuple we generate the *source* of a ``run_fast(core)``
function with the dead branches simply absent, ``exec``-compile it once
per process, and cache it (the same technique :mod:`dataclasses` uses
for ``__init__``).  The trace-invariant facts come precomputed from the
compiled trace's derived columns (:mod:`repro.isa.trace`), built once
per workload and persisted by the trace cache.

When the hierarchy carries no credit tracker and no telemetry hub (the
``leanmem`` flag — every benchmark and experiment-matrix cell), the
kernel additionally inlines the L1 *hit* leg of
``Hierarchy.demand_access``: the set-dict probe, LRU touch, shadow-tag
update, and hit accounting run as straight-line code, and the hierarchy
is only called on a miss (``Hierarchy._demand_miss``).  Hit-counter
updates are accumulated in locals and written back once at the end —
nothing reads them mid-run without telemetry attached.

Bit-identity is the contract: a specialized kernel must retire every
instruction with exactly the timing of the generic loop — only wall
clock may change, never a number.  ``tests/test_kernels.py`` pins this
registry-wide, and ``repro bench`` re-checks it in-run against the
``REPRO_KERNEL=generic`` escape hatch (which disables specialization
entirely, e.g. to bisect a suspected kernel bug).

Kernel selection is automatic (``OoOCore.run``): any core replaying a
:class:`~repro.isa.trace.CompiledTrace` gets a specialized kernel; the
object-trace path and the escape hatch fall back to the generic
per-step loop.  The chosen variant name is carried on
``SimulationResult.kernel`` so benchmarks and the fault journal can
attribute timings to a kernel.
"""

from __future__ import annotations

import os

from repro.core.base import AccessEvent
from repro.engine.branch import StaticPredictor
from repro.isa.trace import CompiledTrace

KERNEL_ENV = "REPRO_KERNEL"
GENERIC = "generic"
SCALAR = "scalar"
"""``REPRO_KERNEL=scalar`` disables only the vectorized batch tier
(:mod:`repro.engine.batch`), keeping the scalar specialized kernels —
the comparator ``repro bench`` measures ``batch.speedup_vs_scalar``
against.  ``REPRO_KERNEL=generic`` still disables all specialization."""

_KERNELS: dict[tuple, object] = {}

_kernel_counters: dict[str, int] = {}


def kernel_counters() -> dict:
    """Per-variant selection/compile counts for this process.

    ``selected.<variant>`` increments on every :func:`get_kernel` call,
    ``compiled.<variant>`` on the first (the exec-compile).  Mirrored
    into the current fabric obs (when one is active) so kernel-variant
    usage shows up in a sweep's ``metrics.json``.
    """
    return dict(_kernel_counters)


def reset_kernel_counters() -> None:
    _kernel_counters.clear()


def _count(event: str) -> None:
    _kernel_counters[event] = _kernel_counters.get(event, 0) + 1
    from repro.obs import current

    obs = current()
    if obs is not None:
        obs.metrics.count(f"kernel.{event}")


def kernel_flags(core) -> tuple | None:
    """The feature-flag tuple for ``core``, or ``None`` for generic.

    Flags (in order): instruction-stream feed, access observer, access
    hook (request generator), fill hook, sampler attached, static branch
    predictor, lean memory path (no tracker / no telemetry on the
    hierarchy).  ``None`` means the generic step loop must run: object
    trace, or the ``REPRO_KERNEL=generic`` escape hatch.
    """
    if os.environ.get(KERNEL_ENV) == GENERIC:
        return None
    if not isinstance(core.trace, CompiledTrace):
        return None
    hierarchy = core.hierarchy
    return (
        core._observe_instruction is not None,
        core._observe_access is not None,
        core._on_access is not None,
        core._on_fill is not None,
        core._sampler is not None,
        type(core._branch_predictor) is StaticPredictor,
        hierarchy.tracker is None and hierarchy.telemetry is None,
    )


def variant_name(flags: tuple) -> str:
    """Human-readable kernel name, e.g. ``fast+observe+issue+staticbp``."""
    instr, oa, ona, of, samp, sbp, lean = flags
    parts = ["fast"]
    if instr:
        parts.append("instr")
    if oa:
        parts.append("observe")
    if ona:
        parts.append("issue")
    if of:
        parts.append("fill")
    if samp:
        parts.append("sample")
    if lean:
        parts.append("leanmem")
    parts.append("staticbp" if sbp else "dynbp")
    return "+".join(parts)


def get_kernel(flags: tuple):
    """The compiled ``run_fast`` for ``flags`` (generated on first use)."""
    variant = variant_name(flags)
    _count(f"selected.{variant}")
    kernel = _KERNELS.get(flags)
    if kernel is None:
        _count(f"compiled.{variant}")
        source = kernel_source(flags)
        namespace = {"AccessEvent": AccessEvent}
        exec(compile(source, f"<kernel {variant}>", "exec"),
             namespace)
        kernel = namespace["run_fast"]
        kernel.__kernel_source__ = source
        _KERNELS[flags] = kernel
    return kernel


# ----------------------------------------------------------------------
# Source generation.  Every emitted line mirrors a line of the generic
# loops in engine/ooo.py (and, for leanmem, of Cache.lookup /
# ShadowTagStore.access / the demand_access hit leg); the specialization
# only *removes* branches whose condition is decided by the flags, it
# never reorders effects.

def _hook_lines(flags: tuple, is_load: bool, indent: int, *,
                served: str, component: str, hit: str, primary: str,
                level: str, latency: str, value: str, dst: str) -> list[str]:
    """The post-access hook block, parameterized over where the access
    outcome lives (an ``AccessResult`` or the inlined hit-path locals).

    ``served`` / ``primary`` / ... are source expressions; ``primary``
    may be the literal ``"True"``/``"False"`` when the branch outcome is
    statically known, in which case the guard is folded away.
    """
    instr, oa, ona, of, samp, sbp, lean = flags
    pad = " " * indent
    lines = []
    if oa or ona:
        lines += [
            pad + "event = AccessEvent(",
            pad + "    cycle=issue, pc=pc, mpc=d_mpc[index],",
            pad + f"    addr=addr, line=line, is_load={is_load},",
            pad + f"    hit={hit},",
            pad + f"    primary_miss={primary},",
            pad + f"    latency={latency}, value={value}, dst={dst},",
            pad + f"    served_by_prefetch={served},",
            pad + f"    serving_component={component})",
            pad + f"if {served}:",
            pad + f"    on_prefetch_hit(line, {level})",
        ]
        if oa:
            lines.append(pad + "observe_access(event)")
        if ona:
            lines += [
                pad + "requests = on_access(event)",
                pad + "if requests:",
                pad + "    for request in requests:",
                pad + "        issued = hier_prefetch(",
                pad + "            request.line, issue,",
                pad + "            target_level=request.target_level,",
                pad + "            component=request.component,",
                pad + "            pc=pc)",
            ]
            if of:
                lines += [
                    pad + "        if issued:",
                    pad + "            on_fill(request.line,",
                    pad + "                    request.target_level,",
                    pad + "                    prefetched=True)",
                ]
    else:
        lines += [
            pad + f"if {served}:",
            pad + f"    on_prefetch_hit(line, {level})",
        ]
    if of:
        if primary == "True":
            lines.append(pad + "on_fill(line, 1)")
        elif primary != "False":
            lines += [
                pad + f"if {primary}:",
                pad + "    on_fill(line, 1)",
            ]
    return lines


def _shadow_lines(indent: int, want_hit: bool) -> list[str]:
    """Inlined ``ShadowTagStore.access`` (demand accesses always update
    the alternative-reality tags).  The hit flag only matters on the
    miss path, where it decides pollution attribution."""
    pad = " " * indent
    if want_hit:
        return [
            pad + "sh_set = sh_sets[line & sh_mask]",
            pad + "if line in sh_set:",
            pad + "    del sh_set[line]",
            pad + "    sh_hit = True",
            pad + "else:",
            pad + "    sh_hit = False",
            pad + "    if len(sh_set) >= sh_ways:",
            pad + "        del sh_set[next(iter(sh_set))]",
            pad + "sh_set[line] = None",
        ]
    return [
        pad + "sh_set = sh_sets[line & sh_mask]",
        pad + "if line in sh_set:",
        pad + "    del sh_set[line]",
        pad + "elif len(sh_set) >= sh_ways:",
        pad + "    del sh_set[next(iter(sh_set))]",
        pad + "sh_set[line] = None",
    ]


def _lean_memory_lines(flags: tuple, is_load: bool) -> list[str]:
    """The memory-access portion of a LOAD/STORE dispatch arm with the
    L1 hit leg of ``demand_access`` inlined (leanmem kernels only)."""
    instr, oa, ona, of, samp, sbp, lean = flags
    hooks = oa or ona
    lines = [
        "            pc = c_pc[index]",
    ]
    if hooks:
        lines.append("            addr = c_addr[index]")
    lines += [
        "            line = d_line[index]",
        "            l1_acc += 1",
        "            cl = l1_sets[line & l1_mask].get(line)",
        "            if cl is not None:",
        "                uc = l1d._use_counter + 1",
        "                l1d._use_counter = uc",
        "                cl.last_use = uc",
    ]
    if not is_load:
        lines.append("                cl.dirty = True")
    lines += [
        "                first_use = cl.prefetched and not cl.used",
        "                if first_use:",
        "                    cl.used = True",
        *_shadow_lines(16, want_hit=False),
        "                l1_hits += 1",
        "                ready = cl.fill_time",
        "                if first_use:",
        "                    l1_useful += 1",
        "                    if ready > issue:",
        "                        l1_late += 1",
        "                elif ready > issue and not cl.prefetched:",
        "                    l1_merges += 1",
    ]
    if is_load:
        lines += [
            "                if ready < issue:",
            "                    ready = issue",
            "                complete = ready + l1_latency",
            "                latency = complete - issue",
            "                loads += 1",
            "                load_latency_total += latency",
        ]
    else:
        lines.append("                stores += 1")
    lines += _hook_lines(
        flags, is_load, 16,
        served="first_use", component="cl.component",
        hit="True", primary="False", level="1",
        latency="latency" if is_load else "0",
        value="c_value[index]" if is_load else "0",
        dst="c_dst[index]" if is_load else "-1",
    )
    lines += [
        "            else:",
        *_shadow_lines(16, want_hit=True),
        f"                result = demand_miss(line, issue, "
        f"{'False' if is_load else 'True'}, sh_hit, pc)",
    ]
    if is_load:
        lines += [
            "                complete = result.ready_time",
            "                latency = complete - issue",
            "                loads += 1",
            "                load_latency_total += latency",
            "                miss_pcs[pc] += 1",
            "                miss_latency_by_pc[pc] += latency",
        ]
    else:
        lines.append("                stores += 1")
    lines += _hook_lines(
        flags, is_load, 16,
        served="result.served_by_prefetch",
        component="result.prefetch_component",
        hit="False", primary="True", level="result.hit_level",
        latency="latency" if is_load else "0",
        value="c_value[index]" if is_load else "0",
        dst="c_dst[index]" if is_load else "-1",
    )
    if is_load:
        lines.append("            reg_ready[c_dst[index]] = complete")
    else:
        lines.append("            complete = issue + 1")
    return lines


def _call_memory_lines(flags: tuple, is_load: bool) -> list[str]:
    """The memory-access portion of a LOAD/STORE dispatch arm that calls
    ``demand_access`` (kernels with a tracker or telemetry attached)."""
    lines = [
        "            pc = c_pc[index]",
        "            addr = c_addr[index]",
        f"            result = demand_access(addr, issue, "
        f"is_write={not is_load},",
        "                                   pc=pc)",
    ]
    if is_load:
        lines += [
            "            complete = result.ready_time",
            "            latency = complete - issue",
            "            loads += 1",
            "            load_latency_total += latency",
            "            if result.primary_miss:",
            "                miss_pcs[pc] += 1",
            "                miss_latency_by_pc[pc] += latency",
        ]
    else:
        lines.append("            stores += 1")
    lines.append("            line = d_line[index]")
    lines += _hook_lines(
        flags, is_load, 12,
        served="result.served_by_prefetch",
        component="result.prefetch_component",
        hit="result.l1_hit", primary="result.primary_miss",
        level="result.hit_level",
        latency="latency" if is_load else "0",
        value="c_value[index]" if is_load else "0",
        dst="c_dst[index]" if is_load else "-1",
    )
    if is_load:
        lines.append("            reg_ready[c_dst[index]] = complete")
    else:
        lines.append("            complete = issue + 1")
    return lines


def kernel_source(flags: tuple) -> str:
    """Generate the ``run_fast(core)`` source for one flag tuple."""
    instr, oa, ona, of, samp, sbp, lean = flags
    memory_lines = _lean_memory_lines if lean else _call_memory_lines
    head = [
        "def run_fast(core):",
        "    trace = core.trace",
        "    stats = core.stats",
        "    index = core._index",
        "    n = core._num_records",
        "    if index >= n:",
        "        return stats",
        "    width = core._width",
        "    alu_latency = core._alu_latency",
        "    branch_penalty = core._branch_penalty",
        "    rob_size = core._rob_size",
        "    commit_ring = core._commit_ring",
        "    reg_ready = core._reg_ready",
        "    fetch_cycle = core._fetch_cycle",
        "    fetch_slot = core._fetch_slot",
        "    last_commit = core._last_commit_time",
        "    commits_at_time = core._commits_at_time",
        "    (c_pc, c_opc, c_addr, c_value, c_dst, c_src1, c_src2,",
        "     c_taken, c_target, c_ras) = trace.columns",
        "    d_line, d_mpc, d_disp, d_bp = trace.derived_columns()",
        "    miss_pcs = stats.miss_pcs",
        "    miss_latency_by_pc = stats.miss_latency_by_pc",
        "    on_prefetch_hit = core.prefetcher.on_prefetch_hit",
        "    loads = 0",
        "    stores = 0",
        "    branches = 0",
        "    mispredicts = 0",
        "    load_latency_total = 0",
        "    start_index = index",
    ]
    if lean:
        head += [
            "    hierarchy = core.hierarchy",
            "    l1d = hierarchy.l1d",
            "    l1_stats = l1d.stats",
            "    l1_sets = l1d._sets",
            "    l1_mask = l1d._set_mask",
            "    l1_latency = l1d.hit_latency",
            "    shadow = hierarchy.shadow_l1",
            "    sh_sets = shadow._sets",
            "    sh_mask = shadow._set_mask",
            "    sh_ways = shadow.ways",
            "    demand_miss = hierarchy._demand_miss",
            "    l1_acc = 0",
            "    l1_hits = 0",
            "    l1_useful = 0",
            "    l1_late = 0",
            "    l1_merges = 0",
        ]
    else:
        head.append("    demand_access = core.hierarchy.demand_access")
    if instr:
        head += [
            "    observe_instruction = core._observe_instruction",
            "    records = trace.records",
        ]
    if oa:
        head.append("    observe_access = core._observe_access")
    if ona:
        head += [
            "    on_access = core._on_access",
            "    hier_prefetch = core.hierarchy.prefetch",
        ]
    if of:
        head.append("    on_fill = core._on_fill")
    if samp:
        head.append("    sampler_tick = core._sampler.on_instruction")
    if not sbp:
        head += [
            "    predictor = core._branch_predictor",
            "    predict = predictor.predict",
            "    update = predictor.update",
        ]

    body = [
        "    while index < n:",
        "        if fetch_slot >= width:",
        "            fetch_cycle += 1",
        "            fetch_slot = 0",
        "        fetch_slot += 1",
        "        rob_slot = index % rob_size",
        "        rob_free = commit_ring[rob_slot]",
        "        if rob_free > fetch_cycle:",
        "            dispatch = rob_free",
        "            fetch_cycle = rob_free",
        "            fetch_slot = 1",
        "        else:",
        "            dispatch = fetch_cycle",
    ]
    if instr:
        body.append(
            "        observe_instruction(records[index], dispatch)")
    body += [
        "        disp = d_disp[index]",
        "        if disp == 2:  # ALU",
        "            issue = dispatch",
        "            src = c_src1[index]",
        "            if src >= 0 and reg_ready[src] > issue:",
        "                issue = reg_ready[src]",
        "            src = c_src2[index]",
        "            if src >= 0 and reg_ready[src] > issue:",
        "                issue = reg_ready[src]",
        "            complete = issue + alu_latency",
        "            dst = c_dst[index]",
        "            if dst >= 0:",
        "                reg_ready[dst] = complete",
        "        elif disp == 0:  # LOAD",
        "            issue = dispatch",
        "            src = c_src1[index]",
        "            if src >= 0 and reg_ready[src] > issue:",
        "                issue = reg_ready[src]",
        *memory_lines(flags, is_load=True),
        "        elif disp == 3:  # conditional branch",
        "            issue = dispatch",
        "            src = c_src1[index]",
        "            if reg_ready[src] > issue:",
        "                issue = reg_ready[src]",
        "            src = c_src2[index]",
        "            if src >= 0 and reg_ready[src] > issue:",
        "                issue = reg_ready[src]",
        "            complete = issue + 1",
        "            branches += 1",
    ]
    if sbp:
        body += [
            "            if d_bp[index]:",
            "                mispredicts += 1",
            "                fetch_cycle = complete + branch_penalty",
            "                fetch_slot = 0",
        ]
    else:
        body += [
            "            pc = c_pc[index]",
            "            target_pc = c_target[index]",
            "            taken = c_taken[index]",
            "            predicted_taken = predict(pc, target_pc)",
            "            update(pc, target_pc, taken)",
            "            if predicted_taken != taken:",
            "                mispredicts += 1",
            "                fetch_cycle = complete + branch_penalty",
            "                fetch_slot = 0",
        ]
    body += [
        "        elif disp == 1:  # STORE",
        "            issue = dispatch",
        "            src = c_src1[index]",
        "            if src >= 0 and reg_ready[src] > issue:",
        "                issue = reg_ready[src]",
        "            data = c_src2[index]",
        "            if data >= 0 and reg_ready[data] > issue:",
        "                issue = reg_ready[data]",
        *memory_lines(flags, is_load=False),
        "        elif disp == 4:  # unconditional branch",
        "            issue = dispatch",
        "            src = c_src2[index]",
        "            if src >= 0 and reg_ready[src] > issue:",
        "                issue = reg_ready[src]",
        "            complete = issue + 1",
        "            branches += 1",
        "        else:  # CALL / RET / OTHER: BTB/RAS-predicted, 1 cycle",
        "            complete = dispatch + 1",
        "        if complete > last_commit:",
        "            last_commit = complete",
        "            commits_at_time = 1",
        "        else:",
        "            commits_at_time += 1",
        "            if commits_at_time > width:",
        "                last_commit += 1",
        "                commits_at_time = 1",
        "        commit_ring[rob_slot] = last_commit",
        "        index += 1",
    ]
    if samp:
        body += [
            "        stats.instructions += 1",
            "        stats.cycles = last_commit",
            "        sampler_tick()",
        ]

    tail = [
        "    core._index = index",
        "    core._fetch_cycle = fetch_cycle",
        "    core._fetch_slot = fetch_slot",
        "    core._last_commit_time = last_commit",
        "    core._commits_at_time = commits_at_time",
        "    stats.loads += loads",
        "    stats.stores += stores",
        "    stats.branches += branches",
        "    stats.mispredicts += mispredicts",
        "    stats.load_latency_total += load_latency_total",
    ]
    if lean:
        tail += [
            "    l1_stats.demand_accesses += l1_acc",
            "    l1_stats.demand_hits += l1_hits",
            "    l1_stats.useful_prefetches += l1_useful",
            "    l1_stats.late_prefetch_hits += l1_late",
            "    l1_stats.mshr_merges += l1_merges",
        ]
    if not samp:
        tail += [
            "    stats.instructions += index - start_index",
            "    stats.cycles = last_commit",
        ]
    tail.append("    return stats")
    return "\n".join(head + body + tail) + "\n"
