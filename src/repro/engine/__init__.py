"""Timing substrate: system configuration, the simplified out-of-order
core model, and single-/multi-core system harnesses.

Submodules are imported lazily so that low-level packages (e.g.
:mod:`repro.memory`, which needs only :mod:`repro.engine.config`) do not
pull in the whole engine.
"""

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "MulticoreResult",
    "SimulationResult",
    "SystemConfig",
    "simulate",
    "simulate_multicore",
]


def __getattr__(name):
    if name in ("CacheConfig", "CoreConfig", "SystemConfig"):
        from repro.engine import config

        return getattr(config, name)
    if name in ("SimulationResult", "simulate"):
        from repro.engine import system

        return getattr(system, name)
    if name in ("MulticoreResult", "simulate_multicore"):
        from repro.engine import multicore

        return getattr(multicore, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
