"""System configuration mirroring Table I of the paper.

All latencies are in core cycles at 3 GHz (1 ns = 3 cycles):

* Private L1: split I/D, 64 KB, 4-way, 64 B blocks, 1 ns, 32 MSHRs, LRU
* Private L2: 256 KB, 8-way, 3 ns, 32 MSHRs, LRU
* Shared L3: 2 MB/core, 16-way, 12 ns, LRU
* Core: OoO, 4-wide, 3.0 GHz, 192 ROB, 96 LSQ, 15-cycle branch penalty
* Main memory: DDR3-1600, 2 channels, 2 ranks/channel, 8 banks/rank
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.memory.dram import DramConfig, DropPolicy

CORE_FREQUENCY_GHZ = 3.0
CYCLES_PER_NS = 3


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table I, row 1).

    ``branch_predictor`` is ``"static"`` (backward-taken/forward-not-
    taken, the default) or ``"gshare"`` (gshare + loop predictor, closer
    to Table I's L-Tag + 256-entry loop predictor).
    """

    width: int = 4
    rob_entries: int = 192
    lsq_entries: int = 96
    branch_miss_penalty: int = 15
    int_alu_latency: int = 1
    mul_latency: int = 3
    branch_predictor: str = "static"


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    ways: int
    latency: int
    line_bytes: int = 64
    mshrs: int = 32


@dataclass(frozen=True)
class SystemConfig:
    """Full single-core (or per-core) system configuration."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 4, latency=3)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * 1024, 8, latency=9)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 16, latency=36)
    )
    dram: DramConfig = field(default_factory=DramConfig)

    def scaled_down(self, factor: int = 8) -> "SystemConfig":
        """A proportionally smaller hierarchy.

        The reproduction's traces are ~100x shorter than the paper's
        simpoints; a full-size 2 MB L3 would never warm up and no workload
        would stress capacity.  Scaling all cache sizes down by ``factor``
        (default 8) preserves the *ratio* of working-set to cache size that
        the paper's workloads exhibit, which is what the prefetcher
        comparisons depend on.
        """
        def shrink(cache: CacheConfig) -> CacheConfig:
            return replace(cache, size_bytes=max(
                cache.size_bytes // factor,
                cache.ways * cache.line_bytes,
            ))

        return replace(
            self, l1d=shrink(self.l1d), l2=shrink(self.l2), l3=shrink(self.l3)
        )

    def with_drop_policy(self, policy: DropPolicy) -> "SystemConfig":
        """Same system with a different memory-controller drop policy."""
        return replace(self, dram=replace(self.dram, drop_policy=policy))

    def with_l3_size(self, size_bytes: int) -> "SystemConfig":
        return replace(self, l3=replace(self.l3, size_bytes=size_bytes))


DEFAULT_CONFIG = SystemConfig()
"""The Table I configuration."""

EXPERIMENT_CONFIG = SystemConfig().scaled_down(8)
"""The configuration used by the experiment harness (scaled caches to
match the shortened traces; see DESIGN.md substitutions)."""
