"""Batch replay tier: bulk column scans for hook-free traces.

The third kernel tier (generic loop -> specialized scalar kernels ->
this module), applied to the fully hookless configuration that
dominates the ``none``/baseline matrix cells: no instruction feed, no
access observers, no prefetch hooks, no sampler, static branch
predictor, lean memory path.  Those flags imply **demand-only**
traffic, and demand-only traffic makes the *entire hierarchy's
structural behaviour* a pure function of the access sequence: which
accesses hit at each level, which line every miss evicts, whether each
victim is dirty, which DRAM row each request opens, and every shadow-tag
outcome are all decided by LRU geometry and access order alone — only
the *latencies* (MSHR stalls, DRAM queue stalls, bank/bus contention)
depend on timing.

So the tier splits the work the way the paper splits prefetching:

* **Plan (pay once per trace x geometry)** — :func:`_build_plan` fuses
  the derived columns into per-instruction dispatch classes and
  effective operands with vectorized numpy scans over the compiled
  trace's canonical arrays, then walks only the memory positions (the
  trace's precomputed segment events) through dict-based models of L1,
  L2, L3, the L2 shadow tags, and the DRAM row buffers.  The walk
  classifies every access (L1 hit / L2 hit / L3 hit / DRAM), links each
  hit to the fill that produced its line, precomputes every victim and
  its dirtiness, every writeback's DRAM row class, and every level's
  hit/miss/eviction/writeback totals, per-line footprints, and
  pollution counts.  The plan is memoized on ``CompiledTrace._plans``
  keyed by the full structural geometry (cache shapes, ALU latency,
  DRAM mapping and row timings).
* **Replay (execute cheaply every cell)** — :func:`_run_batch` retires
  instructions through a six-way class dispatch with no dict probes, no
  per-access object allocation, and no hierarchy calls at all.  The
  miss leg is the batch sibling of ``Hierarchy._demand_miss``: it
  re-runs only the *timing* arithmetic — the exact ``_MshrFile``
  acquire/register algebra at L1 and L2, the DRAM channel-queue
  drain/stall and bank/bus bookkeeping of ``Dram.read``/``write`` —
  against flat plan arrays, keeping per-fill ready times in plain lists
  (``l2_ready``/``l3_ready``) indexed by allocation ordinal instead of
  ``CacheLine`` objects.  Fills to a resident line only ever *lower*
  its ready time (``Cache.fill`` semantics), so a min-update per fill
  reproduces ``fill_time`` exactly.

Bit-identity is the contract, exactly as for the scalar kernels: the
plan reproduces every structural decision of
:class:`~repro.memory.cache.Cache` (one use-counter bump per lookup-hit
or fill, first-minimum LRU victim, dirty-on-store, no last-use touch on
fill-to-resident), :class:`~repro.memory.shadow.ShadowTagStore`, and
:class:`~repro.memory.dram.Dram`'s row-buffer transitions; the replay
loop reproduces the generated scalar kernel's issue/commit arithmetic
and the hierarchy's timing algebra line for line.
``tests/test_kernels.py`` plus the bench's in-run ``batch`` parity
section pin it.  ``REPRO_KERNEL=scalar`` disables only this tier
(keeping the scalar specialized kernels) — the comparator the bench's
``batch.speedup_vs_scalar`` measures against — while
``REPRO_KERNEL=generic`` still disables all specialization.

Eligibility is deliberately conservative: any deviation — warm core or
hierarchy state, subclassed hierarchy/cache/shadow/MSHR/DRAM
components, DRAM telemetry attached, missing numpy — falls back to the
scalar tier silently (the variant name on ``SimulationResult.kernel``
records which tier actually ran).
"""

from __future__ import annotations

import os
from collections import Counter

from repro.isa.trace import (
    DISP_ALU,
    DISP_BR_COND,
    DISP_BR_UNCOND,
    DISP_LOAD,
    DISP_OTHER,
    DISP_STORE,
    CompiledTrace,
)

BATCH_FLAGS = (False, False, False, False, False, True, True)
"""The :func:`repro.engine.kernel.kernel_flags` tuple this tier serves:
``fast+leanmem+staticbp`` with every hook absent."""

BATCH_VARIANT = "batch+leanmem+staticbp"

_FAR = 1 << 62
"""Empty-pending sentinel (mirrors ``_MshrFile._NO_PENDING`` and
``Dram._NO_PENDING``), doubling as the not-yet-filled ready-time
sentinel: the first min-update of a fresh allocation assigns it."""


class BatchPlan:
    """Precomputed replay schedule for one (trace, geometry) pair.

    The ``cls``/``src1``/``src2``/``dst``/``aux`` lists are
    per-instruction and are consumed zipped, one tuple per retired
    instruction.  ``aux`` is class-overloaded: the completion latency
    for register-only instructions, the producing L1-miss ordinal for
    L1 hits (indexing ``fill_times`` at replay), the miss ordinal
    itself for L1 misses (indexing the ``m_*`` schedules).  All plain
    lists — the replay loop never touches numpy.

    Per L1-miss schedules (index = miss ordinal):

    ``m_path``
        0 = L2 hit, 1 = L3 hit, 2 = DRAM read.
    ``m_a``
        Path-overloaded: the L2 allocation ordinal whose ready time the
        L2 hit reads, the L3 allocation ordinal for an L3 hit, or the
        DRAM read ordinal (indexing ``r_*``).
    ``m_l2fill``
        Allocation ordinal of the demand fill into L2 (-1 on an L2
        hit — no fill happens).
    ``m_wb2``
        L2 allocation ordinal min-updated by this miss's dirty
        L1-victim writeback, or -1 (clean or no victim).
    ``m_nw`` / ``m_nc3``
        How many entries of the flat ``w_*`` (DRAM writeback) and
        ``c3_inst`` (cascaded L3 ready min-update) streams this miss
        consumes; misses replay strictly in ordinal order, so the
        replay loop walks both streams with cursors.

    Flat DRAM read schedule (index = read ordinal): ``r_access`` (the
    precomputed row-class access latency), ``r_bank``, ``r_ch``, and
    ``r_l3inst`` (the L3 allocation the completing fill creates).  Flat
    writeback schedule: ``w_access``/``w_bank``/``w_ch``, in exact
    issue order (demand-L3-victim, then L2-fill-cascade victim, then
    L1-writeback-cascade victim).
    """

    __slots__ = (
        "cls", "src1", "src2", "dst", "aux", "miss_pc",
        "m_path", "m_a", "m_l2fill", "m_wb2", "m_nw", "m_nc3",
        "r_access", "r_bank", "r_ch", "r_l3inst",
        "w_access", "w_bank", "w_ch", "c3_inst",
        "n_mem", "n_hits", "n_miss", "n_l2_inst", "n_l3_inst",
        "evictions", "writebacks",
        "loads", "stores", "branches", "mispredicts",
        "miss_pcs", "miss_lines",
        "l2_hits", "l2_misses", "l2_evictions", "l2_writebacks",
        "l3_hits", "l3_misses", "l3_evictions", "l3_writebacks",
        "dram_writes", "row_hits", "row_empty", "row_conflicts",
        "pollution_l2", "miss_lines_l2",
    )


# Per-instruction dispatch classes.  "Simple" covers every instruction
# that only reads/writes the register scoreboard: ALU ops, correctly
# predicted conditional branches, unconditional branches, CALL/RET/OTHER.
_CLS_SIMPLE = 0
_CLS_LOAD_HIT = 1
_CLS_STORE_HIT = 2
_CLS_LOAD_MISS = 3
_CLS_STORE_MISS = 4
_CLS_BP_MISS = 5


def plan_key(core) -> tuple:
    """The structural geometry the plan depends on.

    Latencies, burst, queue capacity, and MSHR counts are *timing*
    knobs — the replay loop reads them fresh from the hierarchy on
    every run — so they stay out of the key.
    """
    hierarchy = core.hierarchy
    l1, l2, l3 = hierarchy.l1d, hierarchy.l2, hierarchy.l3
    cfg = hierarchy.dram.config
    return (
        l1.num_sets, l1.ways, core._alu_latency,
        l2.num_sets, l2.ways, l3.num_sets, l3.ways,
        cfg.channels, cfg.ranks_per_channel, cfg.banks_per_rank,
        cfg.lines_per_row, cfg.t_rcd, cfg.t_rp, cfg.t_cas,
    )


def _build_plan(trace: CompiledTrace, key: tuple) -> BatchPlan:
    import numpy as np

    (l1_num_sets, l1_ways, alu_latency,
     l2_num_sets, l2_ways, l3_num_sets, l3_ways,
     channels, ranks_per_channel, banks_per_rank,
     lines_per_row, t_rcd, t_rp, t_cas) = key

    (pc_a, _opc, _addr, _value, dst_a, src1_a, src2_a,
     _taken, _target, _ras) = trace.array_columns()
    line_a, _mpc, disp_a, bp_a = trace.derived_arrays()
    n = len(disp_a)

    # Effective operands per dispatch arm, exactly as the scalar kernel
    # reads them: ALU/store/cond-branch check src1+src2, loads only
    # src1, unconditional branches only src2, OTHER nothing; only ALU
    # (guarded) and loads write a destination.
    b_src1 = np.where(disp_a == DISP_BR_UNCOND, src2_a, src1_a)
    b_src1 = np.where(disp_a == DISP_OTHER, -1, b_src1)
    no_src2 = ((disp_a == DISP_LOAD) | (disp_a == DISP_BR_UNCOND)
               | (disp_a == DISP_OTHER))
    b_src2 = np.where(no_src2, -1, src2_a)
    b_dst = np.where((disp_a == DISP_ALU) | (disp_a == DISP_LOAD),
                     dst_a, -1)
    b_lat = np.where(disp_a == DISP_ALU, alu_latency, 1)

    cls = np.zeros(n, dtype=np.int64)
    cls[(disp_a == DISP_BR_COND) & (bp_a != 0)] = _CLS_BP_MISS

    # The memory accesses are the memory-typed subset of the trace's
    # precomputed segment events.
    events = trace.segment_events()
    mem_pos = events[disp_a[events] <= DISP_STORE]
    is_store = disp_a[mem_pos] == DISP_STORE

    # ------------------------------------------------------------------
    # Hierarchy walk over memory positions only.  Mirrors
    # Cache.lookup/fill at every level under demand-only traffic:
    # exactly one use-counter bump per lookup-hit or fill (lookup
    # misses bump nothing, fills to a resident line bump the counter
    # but never touch last_use), first-minimum last_use victim (unique
    # minima — the counters are strictly increasing), dirty set by
    # store hits, allocate-on-store, or writeback fills.
    # Entry: [allocation ordinal, dirty, last_use, line_addr].
    # ------------------------------------------------------------------
    lines = line_a[mem_pos].tolist()
    store_flags = is_store.tolist()
    mem_pc = pc_a[mem_pos].tolist()
    l1_mask = l1_num_sets - 1
    l2_mask = l2_num_sets - 1
    l3_mask = l3_num_sets - 1
    l1_sets: list[dict] = [dict() for _ in range(l1_num_sets)]
    l2_sets: list[dict] = [dict() for _ in range(l2_num_sets)]
    l3_sets: list[dict] = [dict() for _ in range(l3_num_sets)]
    # Shadow L2 has L2's geometry.  The shadow L1 needs no model at
    # all: under demand-only traffic it holds exactly what the real L1
    # holds, so shadow_l1_hit is always False (pollution_misses_l1
    # stays 0) and every L1 miss reaches the shadow L2.
    shadow_sets: list[dict] = [dict() for _ in range(l2_num_sets)]
    banks_per_channel = ranks_per_channel * banks_per_rank
    rows_div = banks_per_channel * lines_per_row
    bank_row: list = [None] * (channels * banks_per_channel)

    hit_flags = []
    mem_aux: list[int] = []
    miss_pc: list[int] = []
    m_path: list[int] = []
    m_a: list[int] = []
    m_l2fill: list[int] = []
    m_wb2: list[int] = []
    m_nw: list[int] = []
    m_nc3: list[int] = []
    r_access: list[int] = []
    r_bank: list[int] = []
    r_ch: list[int] = []
    r_l3inst: list[int] = []
    w_access: list[int] = []
    w_bank: list[int] = []
    w_ch: list[int] = []
    c3_inst: list[int] = []
    miss_pcs: Counter = Counter()
    miss_lines: Counter = Counter()
    miss_lines_l2: Counter = Counter()
    use = 0
    l2_use = 0
    l3_use = 0
    l2_next = 0
    l3_next = 0
    evictions = 0
    writebacks = 0
    l2_hits = 0
    l2_misses = 0
    l2_evictions = 0
    l2_writebacks = 0
    l3_hits = 0
    l3_misses = 0
    l3_evictions = 0
    l3_writebacks = 0
    row_hits = 0
    row_empty = 0
    row_conflicts = 0
    pollution_l2 = 0
    n_hits = 0
    k = 0

    def emit_write(wline: int) -> None:
        # Dram.write row-class transition (write access constants have
        # no t_cas on the empty/conflict legs).
        nonlocal row_hits, row_empty, row_conflicts
        ch = wline % channels
        rest = wline // channels
        bank = ch * banks_per_channel + rest % banks_per_channel
        row = rest // rows_div
        open_row = bank_row[bank]
        if open_row == row:
            w_access.append(t_cas)
            row_hits += 1
        elif open_row is None:
            w_access.append(t_rcd)
            row_empty += 1
        else:
            w_access.append(t_rp + t_rcd)
            row_conflicts += 1
        bank_row[bank] = row
        w_bank.append(bank)
        w_ch.append(ch)

    def fill_l3_writeback(wline: int) -> None:
        # _fill_l3(line, fill_time, dirty=True) from a writeback; the
        # replay loop applies the recorded min-update at the producing
        # miss's fill time (Cache.fill only ever lowers fill_time).
        nonlocal l3_use, l3_next, l3_evictions, l3_writebacks
        l3_use += 1
        target = l3_sets[wline & l3_mask]
        entry = target.get(wline)
        if entry is not None:
            entry[1] = True
            c3_inst.append(entry[0])
            return
        if len(target) >= l3_ways:
            victim = None
            for candidate in target.values():
                if victim is None or candidate[2] < victim[2]:
                    victim = candidate
            del target[victim[3]]
            l3_evictions += 1
            if victim[1]:
                l3_writebacks += 1
                emit_write(victim[3])
        inst = l3_next
        l3_next += 1
        target[wline] = [inst, True, l3_use, wline]
        c3_inst.append(inst)

    def fill_l2_writeback(wline: int) -> int:
        # The L1 dirty-victim writeback: _fill_l2(line, fill, dirty=True).
        nonlocal l2_use, l2_next, l2_evictions, l2_writebacks
        l2_use += 1
        target = l2_sets[wline & l2_mask]
        entry = target.get(wline)
        if entry is not None:
            entry[1] = True
            return entry[0]
        if len(target) >= l2_ways:
            victim = None
            for candidate in target.values():
                if victim is None or candidate[2] < victim[2]:
                    victim = candidate
            del target[victim[3]]
            l2_evictions += 1
            if victim[1]:
                l2_writebacks += 1
                fill_l3_writeback(victim[3])
        inst = l2_next
        l2_next += 1
        target[wline] = [inst, True, l2_use, wline]
        return inst

    for line, is_wr, pc in zip(lines, store_flags, mem_pc):
        use += 1
        target_set = l1_sets[line & l1_mask]
        entry = target_set.get(line)
        if entry is not None:
            entry[2] = use
            if is_wr:
                entry[1] = True
            hit_flags.append(True)
            mem_aux.append(entry[0])
            n_hits += 1
            continue
        # --- L1 miss: the structural half of Hierarchy._demand_miss.
        hit_flags.append(False)
        mem_aux.append(k)
        miss_pc.append(pc)
        miss_lines[line] += 1
        if not is_wr:
            miss_pcs[pc] += 1
        nw0 = len(w_access)
        nc0 = len(c3_inst)
        # Shadow L2 access (every L1 miss reaches it, see above).
        s2 = shadow_sets[line & l2_mask]
        sl2_hit = line in s2
        if sl2_hit:
            del s2[line]
        elif len(s2) >= l2_ways:
            s2.pop(next(iter(s2)))
        s2[line] = None
        # L2 lookup.
        l2set = l2_sets[line & l2_mask]
        entry2 = l2set.get(line)
        if entry2 is not None:
            l2_use += 1
            entry2[2] = l2_use
            l2_hits += 1
            m_path.append(0)
            m_a.append(entry2[0])
            m_l2fill.append(-1)
        else:
            l2_misses += 1
            miss_lines_l2[line] += 1
            if sl2_hit:
                pollution_l2 += 1
            # L3 leg.
            l3set = l3_sets[line & l3_mask]
            entry3 = l3set.get(line)
            if entry3 is not None:
                l3_use += 1
                entry3[2] = l3_use
                l3_hits += 1
                m_path.append(1)
                m_a.append(entry3[0])
            else:
                l3_misses += 1
                m_path.append(2)
                m_a.append(len(r_access))
                # Dram.read row-class transition.
                ch = line % channels
                rest = line // channels
                bank = ch * banks_per_channel + rest % banks_per_channel
                row = rest // rows_div
                open_row = bank_row[bank]
                if open_row == row:
                    r_access.append(t_cas)
                    row_hits += 1
                elif open_row is None:
                    r_access.append(t_rcd + t_cas)
                    row_empty += 1
                else:
                    r_access.append(t_rp + t_rcd + t_cas)
                    row_conflicts += 1
                bank_row[bank] = row
                r_bank.append(bank)
                r_ch.append(ch)
                # Demand fill into L3 (fresh — the lookup just missed).
                l3_use += 1
                if len(l3set) >= l3_ways:
                    victim = None
                    for candidate in l3set.values():
                        if victim is None or candidate[2] < victim[2]:
                            victim = candidate
                    del l3set[victim[3]]
                    l3_evictions += 1
                    if victim[1]:
                        l3_writebacks += 1
                        emit_write(victim[3])
                inst3 = l3_next
                l3_next += 1
                l3set[line] = [inst3, False, l3_use, line]
                r_l3inst.append(inst3)
            # Demand fill into L2 (fresh).
            l2_use += 1
            if len(l2set) >= l2_ways:
                victim = None
                for candidate in l2set.values():
                    if victim is None or candidate[2] < victim[2]:
                        victim = candidate
                del l2set[victim[3]]
                l2_evictions += 1
                if victim[1]:
                    l2_writebacks += 1
                    fill_l3_writeback(victim[3])
            inst2 = l2_next
            l2_next += 1
            l2set[line] = [inst2, False, l2_use, line]
            m_l2fill.append(inst2)
        # L1 fill: victim scan, then the dirty-victim writeback into L2
        # (scalar order: _access_l2 first, then _fill_l1's writeback).
        if len(target_set) >= l1_ways:
            victim = None
            for candidate in target_set.values():
                if victim is None or candidate[2] < victim[2]:
                    victim = candidate
            del target_set[victim[3]]
            evictions += 1
            if victim[1]:
                writebacks += 1
                m_wb2.append(fill_l2_writeback(victim[3]))
            else:
                m_wb2.append(-1)
        else:
            m_wb2.append(-1)
        target_set[line] = [k, bool(is_wr), use, line]
        m_nw.append(len(w_access) - nw0)
        m_nc3.append(len(c3_inst) - nc0)
        k += 1

    b_aux = b_lat.astype(np.int64)
    if len(mem_pos):
        hits = np.asarray(hit_flags, dtype=np.bool_)
        cls[mem_pos] = np.where(
            hits,
            np.where(is_store, _CLS_STORE_HIT, _CLS_LOAD_HIT),
            np.where(is_store, _CLS_STORE_MISS, _CLS_LOAD_MISS),
        )
        b_aux[mem_pos] = np.asarray(mem_aux, dtype=np.int64)

    plan = BatchPlan()
    plan.cls = cls.tolist()
    plan.src1 = b_src1.tolist()
    plan.src2 = b_src2.tolist()
    plan.dst = b_dst.tolist()
    plan.aux = b_aux.tolist()
    plan.miss_pc = miss_pc
    plan.m_path = m_path
    plan.m_a = m_a
    plan.m_l2fill = m_l2fill
    plan.m_wb2 = m_wb2
    plan.m_nw = m_nw
    plan.m_nc3 = m_nc3
    plan.r_access = r_access
    plan.r_bank = r_bank
    plan.r_ch = r_ch
    plan.r_l3inst = r_l3inst
    plan.w_access = w_access
    plan.w_bank = w_bank
    plan.w_ch = w_ch
    plan.c3_inst = c3_inst
    plan.n_mem = len(lines)
    plan.n_hits = n_hits
    plan.n_miss = k
    plan.n_l2_inst = l2_next
    plan.n_l3_inst = l3_next
    plan.evictions = evictions
    plan.writebacks = writebacks
    plan.loads = int(np.count_nonzero(disp_a == DISP_LOAD))
    plan.stores = int(np.count_nonzero(disp_a == DISP_STORE))
    plan.branches = int(np.count_nonzero(
        (disp_a == DISP_BR_COND) | (disp_a == DISP_BR_UNCOND)))
    plan.mispredicts = int(np.count_nonzero(
        (disp_a == DISP_BR_COND) & (bp_a != 0)))
    plan.miss_pcs = miss_pcs
    plan.miss_lines = miss_lines
    plan.l2_hits = l2_hits
    plan.l2_misses = l2_misses
    plan.l2_evictions = l2_evictions
    plan.l2_writebacks = l2_writebacks
    plan.l3_hits = l3_hits
    plan.l3_misses = l3_misses
    plan.l3_evictions = l3_evictions
    plan.l3_writebacks = l3_writebacks
    plan.dram_writes = len(w_access)
    plan.row_hits = row_hits
    plan.row_empty = row_empty
    plan.row_conflicts = row_conflicts
    plan.pollution_l2 = pollution_l2
    plan.miss_lines_l2 = miss_lines_l2
    return plan


def _get_plan(trace: CompiledTrace, key: tuple) -> BatchPlan:
    plan = trace._plans.get(key)
    if plan is None:
        from repro.engine.kernel import _count

        _count(f"compiled.{BATCH_VARIANT}")
        plan = _build_plan(trace, key)
        trace._plans[key] = plan
    return plan


def maybe_run_batch(core, flags: tuple):
    """Run ``core`` through the batch tier, or return ``None`` to let
    the scalar specialized kernel handle it.

    Eligibility: exactly the hookless flag tuple, ``REPRO_KERNEL`` not
    set to ``scalar`` (nor ``generic`` — that path never gets here), a
    cold core on a cold stock :class:`~repro.memory.hierarchy.Hierarchy`
    (stock caches/shadow tags/MSHRs/DRAM, no DRAM telemetry, nothing
    resident, no prior traffic), and numpy importable.
    """
    if flags != BATCH_FLAGS:
        return None
    from repro.engine.kernel import GENERIC, KERNEL_ENV, SCALAR, _count

    if os.environ.get(KERNEL_ENV) in (GENERIC, SCALAR):
        return None
    trace = core.trace
    if not isinstance(trace, CompiledTrace):
        return None
    if (core._index or core._fetch_cycle or core._fetch_slot
            or core._last_commit_time or core._commits_at_time):
        return None
    from repro.memory.cache import Cache
    from repro.memory.dram import Dram
    from repro.memory.hierarchy import Hierarchy, _MshrFile
    from repro.memory.shadow import ShadowTagStore

    hierarchy = core.hierarchy
    if type(hierarchy) is not Hierarchy:
        return None
    l1 = hierarchy.l1d
    if (type(l1) is not Cache or type(hierarchy.l2) is not Cache
            or type(hierarchy.l3) is not Cache
            or type(hierarchy.shadow_l1) is not ShadowTagStore
            or type(hierarchy.shadow_l2) is not ShadowTagStore
            or type(hierarchy._l1_mshrs) is not _MshrFile
            or type(hierarchy._l2_mshrs) is not _MshrFile):
        return None
    dram = hierarchy.dram
    if type(dram) is not Dram or dram.telemetry is not None:
        return None
    dram_stats = dram.stats
    if (l1._use_counter or hierarchy.l2._use_counter
            or hierarchy.l3._use_counter
            or dram_stats.reads or dram_stats.writes
            or hierarchy.prefetch_stats.issued
            or hierarchy._l1_mshrs._pending
            or hierarchy._l2_mshrs._pending
            or hierarchy.pollution_misses_l1
            or hierarchy.pollution_misses_l2):
        return None
    try:
        import numpy  # noqa: F401
    except ImportError:
        return None
    plan = _get_plan(trace, plan_key(core))
    _count(f"selected.{BATCH_VARIANT}")
    core.kernel_variant = BATCH_VARIANT
    return _run_batch(core, plan)


def _run_batch(core, plan: BatchPlan):
    """Retire the whole trace against ``plan``.

    Every line of the issue/commit arithmetic mirrors the generated
    scalar kernel (see ``repro.engine.kernel.kernel_source``); the
    ``miss_fill`` closure mirrors the *timing* algebra of
    ``Hierarchy._demand_miss`` -> ``_access_l2`` -> ``_access_l3`` ->
    ``Dram.read``/``write`` with every structural decision read from
    the plan.  Deferring a miss's writebacks and cascaded ready-time
    min-updates to after its demand leg is exact: writes never touch
    the channel queues, min-updates never raise a ready time, and no
    other DRAM/MSHR operation runs between their true position and the
    end of the miss.
    """
    stats = core.stats
    hierarchy = core.hierarchy
    l1_stats = hierarchy.l1d.stats
    l1_latency = hierarchy.l1d.hit_latency
    l2_lat = hierarchy.l2.hit_latency
    l3_lat = hierarchy.l3.hit_latency
    dram = hierarchy.dram
    cfg = dram.config
    burst = cfg.burst
    q_cap = cfg.queue_capacity
    l1_cap = hierarchy._l1_mshrs.capacity
    l2_cap = hierarchy._l2_mshrs.capacity
    miss_latency_by_pc = stats.miss_latency_by_pc

    width = core._width
    branch_penalty = core._branch_penalty
    rob_size = core._rob_size
    commit_ring = core._commit_ring
    reg_ready = core._reg_ready

    miss_pc = plan.miss_pc
    m_path = plan.m_path
    m_a = plan.m_a
    m_l2fill = plan.m_l2fill
    m_wb2 = plan.m_wb2
    m_nw = plan.m_nw
    m_nc3 = plan.m_nc3
    r_access = plan.r_access
    r_bank = plan.r_bank
    r_ch = plan.r_ch
    r_l3inst = plan.r_l3inst
    w_access = plan.w_access
    w_bank = plan.w_bank
    w_ch = plan.w_ch
    c3_inst = plan.c3_inst

    far = _FAR
    # fill_times[k] is the fill completion of L1-miss ordinal k — what
    # Cache.lookup would have read back as the L1 line's ``fill_time``
    # on a later hit (fills record it; hits never change it).  The
    # l2/l3 arrays are the same thing per *allocation* at those levels,
    # min-updated on every fill (sentinel-initialized, so a fresh
    # allocation's first update is an assignment).
    fill_times = [0] * plan.n_miss
    l2_ready = [far] * plan.n_l2_inst
    l3_ready = [far] * plan.n_l3_inst
    bank_ready = [0] * (cfg.channels * cfg.ranks_per_channel
                        * cfg.banks_per_rank)
    bus_free = [0] * cfg.channels
    queues: list[list[int]] = [[] for _ in range(cfg.channels)]
    q_min = [far] * cfg.channels
    l1_pending: list[int] = []
    l1_min = far
    l2_pending: list[int] = []
    l2_min = far
    w_cursor = 0
    c3_cursor = 0
    queue_stalls = 0

    def miss_fill(aux: int, now: int) -> int:
        nonlocal l1_min, l2_min, w_cursor, c3_cursor, queue_stalls
        # L1 MSHR acquire (exact _MshrFile.acquire_demand algebra).
        if l1_min <= now:
            l1_pending[:] = [x for x in l1_pending if x > now]
            l1_min = min(l1_pending, default=far)
        if len(l1_pending) >= l1_cap:
            now = min(l1_pending)
            l1_pending[:] = [x for x in l1_pending if x > now]
            l1_min = min(l1_pending, default=far)
        t = now + l1_latency
        path = m_path[aux]
        if path == 0:
            # L2 hit: ready = max(line fill time, arrival) + latency.
            ready = l2_ready[m_a[aux]]
            fill = (ready if ready > t else t) + l2_lat
        else:
            # L2 MSHR acquire.
            if l2_min <= t:
                l2_pending[:] = [x for x in l2_pending if x > t]
                l2_min = min(l2_pending, default=far)
            if len(l2_pending) >= l2_cap:
                t = min(l2_pending)
                l2_pending[:] = [x for x in l2_pending if x > t]
                l2_min = min(l2_pending, default=far)
            t2 = t + l2_lat
            if path == 1:
                ready = l3_ready[m_a[aux]]
                fill = (ready if ready > t2 else t2) + l3_lat
            else:
                # DRAM read (exact Dram._admit/read algebra).
                d = m_a[aux]
                t3 = t2 + l3_lat
                ch = r_ch[d]
                q = queues[ch]
                if q_min[ch] <= t3:
                    q[:] = [x for x in q if x > t3]
                    q_min[ch] = min(q, default=far)
                if len(q) >= q_cap:
                    start = min(q)
                    queue_stalls += 1
                    q[:] = [x for x in q if x > start]
                    q_min[ch] = min(q, default=far)
                else:
                    start = t3
                bank = r_bank[d]
                ready = bank_ready[bank]
                if ready > start:
                    start = ready
                data_start = start + r_access[d]
                ready = bus_free[ch]
                if ready > data_start:
                    data_start = ready
                fill = data_start + burst
                bank_ready[bank] = data_start
                bus_free[ch] = fill
                q.append(fill)
                if fill < q_min[ch]:
                    q_min[ch] = fill
                inst = r_l3inst[d]
                if fill < l3_ready[inst]:
                    l3_ready[inst] = fill
            # Demand fill into L2 + L2 MSHR register.
            inst = m_l2fill[aux]
            if fill < l2_ready[inst]:
                l2_ready[inst] = fill
            l2_pending.append(fill)
            if fill < l2_min:
                l2_min = fill
        # Deferred writebacks (DRAM bank/bus only; queues untouched).
        nw = m_nw[aux]
        if nw:
            stop = w_cursor + nw
            for i in range(w_cursor, stop):
                bank = w_bank[i]
                start = bank_ready[bank]
                if start < fill:
                    start = fill
                data_start = start + w_access[i]
                ch = w_ch[i]
                ready = bus_free[ch]
                if ready > data_start:
                    data_start = ready
                bank_ready[bank] = data_start
                bus_free[ch] = data_start + burst
            w_cursor = stop
        # L1 dirty-victim writeback into L2, cascaded L3 min-updates.
        inst = m_wb2[aux]
        if inst >= 0 and fill < l2_ready[inst]:
            l2_ready[inst] = fill
        nc = m_nc3[aux]
        if nc:
            stop = c3_cursor + nc
            for i in range(c3_cursor, stop):
                inst = c3_inst[i]
                if fill < l3_ready[inst]:
                    l3_ready[inst] = fill
            c3_cursor = stop
        # L1 MSHR register.
        l1_pending.append(fill)
        if fill < l1_min:
            l1_min = fill
        return fill

    n = len(plan.cls)
    fetch_cycle = 0
    fetch_slot = 0
    last_commit = 0
    commits_at_time = 0
    load_latency_total = 0
    merges = 0
    rob_slot = rob_size - 1
    for cls, s1, s2, dst, aux in zip(plan.cls, plan.src1, plan.src2,
                                     plan.dst, plan.aux):
        if fetch_slot >= width:
            fetch_cycle += 1
            fetch_slot = 0
        fetch_slot += 1
        rob_slot += 1
        if rob_slot == rob_size:
            rob_slot = 0
        rob_free = commit_ring[rob_slot]
        if rob_free > fetch_cycle:
            dispatch = rob_free
            fetch_cycle = rob_free
            fetch_slot = 1
        else:
            dispatch = fetch_cycle
        if cls == 0:  # register-only: ALU / predicted branch / other
            issue = dispatch
            if s1 >= 0:
                ready = reg_ready[s1]
                if ready > issue:
                    issue = ready
            if s2 >= 0:
                ready = reg_ready[s2]
                if ready > issue:
                    issue = ready
            complete = issue + aux
            if dst >= 0:
                reg_ready[dst] = complete
        elif cls == 1:  # load, L1 hit
            issue = dispatch
            if s1 >= 0:
                ready = reg_ready[s1]
                if ready > issue:
                    issue = ready
            ready = fill_times[aux]
            if ready > issue:
                merges += 1
            else:
                ready = issue
            complete = ready + l1_latency
            load_latency_total += complete - issue
            reg_ready[dst] = complete
        elif cls == 2:  # store, L1 hit
            issue = dispatch
            if s1 >= 0:
                ready = reg_ready[s1]
                if ready > issue:
                    issue = ready
            if s2 >= 0:
                ready = reg_ready[s2]
                if ready > issue:
                    issue = ready
            if fill_times[aux] > issue:
                merges += 1
            complete = issue + 1
        elif cls == 3:  # load, L1 miss
            issue = dispatch
            if s1 >= 0:
                ready = reg_ready[s1]
                if ready > issue:
                    issue = ready
            fill_time = miss_fill(aux, issue)
            fill_times[aux] = fill_time
            latency = fill_time - issue
            load_latency_total += latency
            miss_latency_by_pc[miss_pc[aux]] += latency
            complete = fill_time
            reg_ready[dst] = complete
        elif cls == 4:  # store, L1 miss (completes at issue + 1)
            issue = dispatch
            if s1 >= 0:
                ready = reg_ready[s1]
                if ready > issue:
                    issue = ready
            if s2 >= 0:
                ready = reg_ready[s2]
                if ready > issue:
                    issue = ready
            fill_times[aux] = miss_fill(aux, issue)
            complete = issue + 1
        else:  # cls == 5: statically mispredicted conditional branch
            issue = dispatch
            if s1 >= 0:
                ready = reg_ready[s1]
                if ready > issue:
                    issue = ready
            if s2 >= 0:
                ready = reg_ready[s2]
                if ready > issue:
                    issue = ready
            complete = issue + 1
            fetch_cycle = complete + branch_penalty
            fetch_slot = 0
        if complete > last_commit:
            last_commit = complete
            commits_at_time = 1
        else:
            commits_at_time += 1
            if commits_at_time > width:
                last_commit += 1
                commits_at_time = 1
        commit_ring[rob_slot] = last_commit

    core._index = n
    core._fetch_cycle = fetch_cycle
    core._fetch_slot = fetch_slot
    core._last_commit_time = last_commit
    core._commits_at_time = commits_at_time
    stats.instructions += n
    stats.cycles = last_commit
    stats.loads += plan.loads
    stats.stores += plan.stores
    stats.branches += plan.branches
    stats.mispredicts += plan.mispredicts
    stats.load_latency_total += load_latency_total
    stats.miss_pcs.update(plan.miss_pcs)
    l1_stats.demand_accesses += plan.n_mem
    l1_stats.demand_hits += plan.n_hits
    l1_stats.demand_misses += plan.n_miss
    l1_stats.mshr_merges += merges
    l1_stats.evictions += plan.evictions
    l1_stats.writebacks += plan.writebacks
    l2_stats = hierarchy.l2.stats
    l2_stats.demand_accesses += plan.n_miss
    l2_stats.demand_hits += plan.l2_hits
    l2_stats.demand_misses += plan.l2_misses
    l2_stats.evictions += plan.l2_evictions
    l2_stats.writebacks += plan.l2_writebacks
    l3_stats = hierarchy.l3.stats
    l3_stats.demand_accesses += plan.l2_misses
    l3_stats.demand_hits += plan.l3_hits
    l3_stats.demand_misses += plan.l3_misses
    l3_stats.evictions += plan.l3_evictions
    l3_stats.writebacks += plan.l3_writebacks
    dram_stats = dram.stats
    dram_stats.reads += plan.l3_misses
    dram_stats.writes += plan.dram_writes
    dram_stats.row_hits += plan.row_hits
    dram_stats.row_empty += plan.row_empty
    dram_stats.row_conflicts += plan.row_conflicts
    dram_stats.demand_queue_stalls += queue_stalls
    hierarchy.pollution_misses_l2 += plan.pollution_l2
    if hierarchy.collect_footprint:
        hierarchy.miss_lines_l1.update(plan.miss_lines)
        hierarchy.miss_lines_l2.update(plan.miss_lines_l2)
    return stats
